"""A miniature JIT middle-end built on the library's pass-pipeline API.

This is the scenario that motivates the paper: a just-in-time compiler that
(1) builds SSA from the incoming (non-SSA) code, (2) runs the cheap SSA
optimizations that break conventionality (copy folding, value numbering),
(3) applies calling-convention constraints, and (4) must get *out* of SSA
quickly and with little memory before register allocation.

All four steps are one declarative :class:`repro.Pipeline` run: the front
half and the paper's four out-of-SSA phases execute as passes over a shared
analysis cache, and the result reports per-pass wall-clock times.

Run with:  python examples/jit_pipeline.py
"""

from repro.bench.metrics import copy_counts
from repro.interp import run_function
from repro.ir import format_function, parse_function
from repro.pipeline import Pipeline
from repro.regalloc import allocate_registers
from repro.regalloc.linear_scan import verify_allocation
from repro.utils import AllocationTracker


SOURCE = """
function dot3(ax, ay) {
  entry:
    bx = mul ay, 2
    by = sub ax, 1
    acc = const 0
    i = const 0
    n = const 3
    jump header
  header:
    c = cmp_lt i, n
    br c, body, done
  body:
    px = mul ax, bx
    py = mul ay, by
    t = add px, py
    acc = add acc, t
    swp = copy ax
    ax = copy ay
    ay = copy swp
    scaled = call scale(acc, i)
    acc2 = add acc, scaled
    acc = copy acc2
    i = add i, 1
    jump header
  done:
    print acc
    ret acc
}
"""


def main() -> None:
    function = parse_function(SOURCE)
    print("=== incoming (non-SSA) code ===")
    print(format_function(function))
    reference = run_function(parse_function(SOURCE), [3, 4])

    # Steps 1-4 as one pipeline: SSA construction, the SSA optimizations that
    # make the form non-conventional, register renaming constraints for the
    # call, then out of SSA with the JIT-friendly engine (no interference
    # graph, no liveness sets, linear congruence-class checks).
    tracker = AllocationTracker()
    pipeline = Pipeline.for_engine(
        "us_i_linear_intercheck_livecheck",
        construct_ssa=True, optimize=True, abi=True,
    )
    print("=== pipeline ===")
    print(pipeline.describe())
    result = pipeline.run(function, tracker=tracker)
    print()
    print("=== final code ===")
    print(format_function(function))

    counts = copy_counts(function)
    print("φ-copies inserted            :", result.stats.inserted_phi_copies)
    print("affinities considered        :", result.stats.affinities)
    print("copies coalesced             :", result.stats.coalesced)
    print("copies remaining (moves)     :", counts.static_copies)
    print("constant materialisations    :", counts.constant_moves)
    print("translation time             : %.3f ms" % (result.stats.elapsed_seconds * 1e3))
    print("analysis memory (peak bytes) :", tracker.peak())
    print("per-pass times (ms)          :", ", ".join(
        "%s %.3f" % (name, seconds * 1e3) for name, seconds in result.pass_seconds.items()
    ))

    after = run_function(function, [3, 4])
    assert after.observable() == reference.observable()
    print("\nbehaviour preserved ✔  return =", after.return_value)

    # 5. Linear-scan register allocation (the stage that follows in a JIT).
    allocation = allocate_registers(function, registers=("R0", "R1", "R2", "R3", "R4", "R5"))
    verify_allocation(allocation)
    print("\n=== linear-scan register allocation ===")
    print("registers used:", ", ".join(allocation.used_registers()))
    print("spilled values:", allocation.spill_count)
    for var in sorted(function.variables(), key=lambda v: v.name)[:10]:
        location = allocation.location_of(var)
        if location is not None:
            print(f"  {var.name:12s} -> {location}")


if __name__ == "__main__":
    main()
