"""Walk through the paper's Figures 1 and 2: the two correctness pitfalls.

* Figure 1 — the copy for a φ-argument must be inserted *before* the branch
  at the end of the predecessor block, so liveness at the copy point must
  include the branch's own uses (live-out sets alone are not enough).
* Figure 2 — a branch-with-decrement defines the φ-argument in the terminator
  itself; no copy placement can split that live range, so the edge has to be
  split (or the counter kept out of SSA).

Run with:  python examples/paper_figures.py
"""

from repro.gallery import figure1_branch_use, figure2_branch_with_decrement
from repro.interp import run_function
from repro.ir import format_function
from repro.outofssa import IsolationError, destruct_ssa, insert_phi_copies
from repro.outofssa.driver import DEFAULT_ENGINE
from repro.ssa import is_conventional


def figure1() -> None:
    print("=" * 72)
    print("Figure 1 — copies must be inserted before a branch that uses a variable")
    print("=" * 72)
    function = figure1_branch_use()
    print(format_function(function))
    print("conventional SSA?", is_conventional(figure1_branch_use()))

    isolated = figure1_branch_use()
    insert_phi_copies(isolated)
    print("\nAfter Method I isolation (note the parallel copy *before* 'br u, ...'):\n")
    print(format_function(isolated))

    for c in (0, 1):
        expected = run_function(figure1_branch_use(), [c])
        translated = figure1_branch_use()
        destruct_ssa(translated, DEFAULT_ENGINE)
        actual = run_function(translated, [c])
        assert actual.observable() == expected.observable()
        print(f"c={c}: behaviour preserved ✔  (return {actual.return_value})")
    print()


def figure2() -> None:
    print("=" * 72)
    print("Figure 2 — branch-with-decrement: copy insertion alone is impossible")
    print("=" * 72)
    function = figure2_branch_with_decrement()
    print(format_function(function))

    try:
        insert_phi_copies(figure2_branch_with_decrement(), on_branch_def="error")
    except IsolationError as error:
        print("copy insertion alone fails:", error)

    translated = figure2_branch_with_decrement()
    result = destruct_ssa(translated, DEFAULT_ENGINE)
    print(f"\nWith edge splitting ({result.stats.split_blocks} edge split):\n")
    print(format_function(translated))
    expected = run_function(figure2_branch_with_decrement(), [4])
    actual = run_function(translated, [4])
    assert actual.observable() == expected.observable()
    print("behaviour preserved ✔  (return", actual.return_value, ")")


def main() -> None:
    figure1()
    figure2()


if __name__ == "__main__":
    main()
