"""Reproduce the paper's Figures 6 and 7 (speed and memory) on a small workload.

Runs the seven engine configurations — Sreedhar III, Us III, the InterCheck /
LiveCheck / Linear variants, and Us I — over a slice of the synthetic suite
and prints translation times and analysis-memory footprints, both normalised
to the Sreedhar III baseline.

Run with:  python examples/engine_comparison.py [--scale 0.4]
"""

import argparse

from repro.bench.harness import headline_summary, run_figure6, run_figure7
from repro.bench.reporting import format_figure6, format_figure7
from repro.bench.suite import build_suite


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.4)
    parser.add_argument("--benchmarks", type=str, default="164.gzip,176.gcc,254.gap,300.twolf")
    args = parser.parse_args()
    names = [name.strip() for name in args.benchmarks.split(",") if name.strip()]

    print(f"generating {len(names)} synthetic benchmarks at scale {args.scale} ...")
    suite = build_suite(scale=args.scale, benchmarks=names)

    print("\nFigure 6 — time to go out of SSA (ratio vs Sreedhar III)\n")
    print(format_figure6(run_figure6(suite)))

    print("\nFigure 7 — analysis memory footprint (ratio vs Sreedhar III)\n")
    print(format_figure7(run_figure7(suite)))

    summary = headline_summary(suite)
    print("\nHeadline (paper: ~2x faster, ~10x less memory, comparable quality):")
    print(f"  speed-up            : {summary.speedup_vs_sreedhar:.2f}x")
    print(f"  memory reduction    : {summary.memory_reduction_vs_sreedhar:.1f}x")
    print(f"  copies vs Sreedhar  : {summary.copies_ratio_vs_sreedhar:.3f}")


if __name__ == "__main__":
    main()
