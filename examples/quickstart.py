"""Quickstart: build an SSA function, translate it out of SSA, check behaviour.

Run with:  python examples/quickstart.py
"""

from repro.gallery import figure4_lost_copy_problem
from repro.interp import run_function
from repro.ir import format_function
from repro.outofssa import destruct_ssa
from repro.outofssa.driver import DEFAULT_ENGINE
from repro.ssa import is_conventional


def main() -> None:
    # The classic "lost copy" program: a φ whose result is live out of the loop.
    function = figure4_lost_copy_problem()
    print("=== SSA input (not conventional: the phi-web overlaps) ===")
    print(format_function(function))
    print("conventional SSA?", is_conventional(figure4_lost_copy_problem()))

    # What does it compute?  (Return value and print trace.)
    before = run_function(figure4_lost_copy_problem(), [5])
    print("\ninterpreting the SSA program  : return", before.return_value, "trace", before.trace)

    # Translate out of SSA with the paper's recommended engine:
    # Us I + Linear + InterCheck + LiveCheck.
    result = destruct_ssa(function, DEFAULT_ENGINE)
    print("\n=== after out-of-SSA translation ===")
    print(format_function(function))
    print("engine          :", result.config.label, f"({result.config.describe()})")
    print("copies inserted :", result.stats.inserted_phi_copies)
    print("copies coalesced:", result.stats.coalesced)
    print("copies remaining:", result.stats.remaining_copies)

    after = run_function(function, [5])
    print("\ninterpreting the translated program: return", after.return_value, "trace", after.trace)
    assert after.observable() == before.observable(), "translation must preserve behaviour"
    print("behaviour preserved ✔")


if __name__ == "__main__":
    main()
