"""Reproduce (a small slice of) the paper's Figure 5 from the command line.

Compares the seven coalescing strategies — Intersect, Sreedhar I, Chaitin,
Value, Sreedhar III, Value + IS, Sharing — on a few synthetic benchmarks and
prints the remaining-copy ratios, normalised to Intersect, exactly like the
paper's Figure 5.  Use ``--scale`` and ``--benchmarks`` to grow the workload.

Run with:  python examples/coalescing_quality.py [--scale 0.5] [--benchmarks 164.gzip,176.gcc]
"""

import argparse

from repro.bench.harness import run_figure5
from repro.bench.reporting import format_figure5
from repro.bench.suite import SUITE, build_suite


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.4,
                        help="workload scale factor (1.0 = full synthetic suite)")
    parser.add_argument("--benchmarks", type=str, default="164.gzip,176.gcc,254.gap",
                        help="comma-separated benchmark names, or 'all'")
    args = parser.parse_args()

    if args.benchmarks.strip() == "all":
        names = [spec.name for spec in SUITE]
    else:
        names = [name.strip() for name in args.benchmarks.split(",") if name.strip()]

    print(f"generating {len(names)} synthetic benchmarks at scale {args.scale} ...")
    suite = build_suite(scale=args.scale, benchmarks=names)
    rows = run_figure5(suite)
    print()
    print("Figure 5 — remaining copies after coalescing, normalised to 'Intersect'")
    print("(absolute static copy counts in parentheses)")
    print()
    print(format_figure5(rows))


if __name__ == "__main__":
    main()
