"""The lost-copy and swap problems: why naive φ-elimination is wrong.

Reproduces the discussion of the paper's §II (Figures 3 and 4): the naive
Cytron-style replacement of φ-functions by copies in the predecessor blocks
miscompiles both programs, while the coalescing-based translation handles them
with the minimum number of copies (one surviving copy for the lost-copy
program, a three-copy swap for the swap program).

Run with:  python examples/lost_copy_and_swap.py
"""

from repro.bench.metrics import copy_counts
from repro.gallery import figure3_swap_problem, figure4_lost_copy_problem
from repro.interp import run_function
from repro.ir import format_function
from repro.outofssa import destruct_ssa, naive_destruction
from repro.outofssa.driver import DEFAULT_ENGINE


def show(title: str, maker, args) -> None:
    print("=" * 72)
    print(title)
    print("=" * 72)
    reference = run_function(maker(), args)
    print("expected behaviour:", reference.return_value, reference.trace)

    # Naive translation: copies at the end of each predecessor, no isolation.
    broken = naive_destruction(maker())
    broken_result = run_function(broken, args)
    print("naive translation :", broken_result.return_value, broken_result.trace,
          "  <-- WRONG" if broken_result.observable() != reference.observable() else "")

    # The paper's translation.
    function = maker()
    destruct_ssa(function, DEFAULT_ENGINE)
    fixed_result = run_function(function, args)
    status = "correct" if fixed_result.observable() == reference.observable() else "WRONG"
    print("paper's engine    :", fixed_result.return_value, fixed_result.trace, f"  ({status})")
    print("remaining copies  :", copy_counts(function).static_copies)
    print()
    print(format_function(function))
    print()


def main() -> None:
    show("Figure 4 — the lost-copy problem", figure4_lost_copy_problem, [6])
    show("Figure 3 — the swap problem", figure3_swap_problem, [4, 7, 9])


if __name__ == "__main__":
    main()
