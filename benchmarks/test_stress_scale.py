"""Stress scale — incremental liveness *and* interference on 1k–10k-block CFGs.

The ``bench``-tier companion of the incremental subsystems: the deterministic
random-CFG corpus (:mod:`repro.bench.corpus`) is solved three ways per size —
cold RPO-seeded worklist, cold SCC-seeded worklist, and the incremental
re-solve patching a warm solver over a materialization-shaped edit batch —
and the incremental interference matrix is patched from the same edit logs
and compared against cold rebuilds.  Every run checks bit-identity; the
tables land in ``benchmarks/results/stress_scale.txt`` and
``benchmarks/results/interference_stress.txt``.

Scaling knobs (shared CI runners shrink the corpus, the scheduled stress lane
uploads the tables as artifacts):

* ``REPRO_STRESS_SCALE`` — multiplies every corpus size (default 1.0);
* ``REPRO_STRESS_SPEEDUP_MIN`` — the asserted floor on the incremental
  speedups at the 5k-block point (default 5.0, the subsystems' acceptance
  bar; measured locally liveness is >10x and the matrix >20x);
* ``REPRO_VERIFY_OVERHEAD_MAX`` — the asserted ceiling on the wall-clock
  ratio of a ``verify_level=fast`` translation over an unchecked one at the
  5k-block point (default 1.15, the verifier's acceptance bar).
"""

import os

from benchmarks.conftest import write_result
from repro.bench.corpus import (
    STANDARD_SIZES,
    run_interference_stress,
    run_stress,
    scaled_specs,
)
from repro.bench.reporting import format_interference_stress, format_stress


def stress_scale() -> float:
    return float(os.environ.get("REPRO_STRESS_SCALE", "1.0"))


def test_stress_scale_table_and_speedup(results_dir):
    scale = stress_scale()
    specs = scaled_specs(STANDARD_SIZES, scale=scale)
    rows = run_stress(specs, repeats=3)  # bit-identity checked inside
    table = format_stress(rows)
    write_result(results_dir, "stress_scale.txt", table)

    # The acceptance point: on the 5k-block corpus the incremental re-solve
    # after materialization edits beats a cold full solve by >= 5x (scaled
    # runs assert at the scaled size; the claim is calibrated for >= ~2k
    # blocks, below which fixed per-call costs flatten the ratio).
    minimum = float(os.environ.get("REPRO_STRESS_SPEEDUP_MIN", "5.0"))
    by_seed = {row.spec.seed: row for row in rows}
    anchor = by_seed[5000]  # the spec seeded off the 5000-block rung
    assert anchor.speedup_incremental >= minimum, format_stress([anchor])

    # Condensation-ordered seeding must not tax the cold solve: on the flat
    # core the SCC walk reuses the arena's edge table (an int-CSR Tarjan),
    # so cold scc stays within ~1.1x of cold rpo even on the largest rung —
    # previously the object-graph Tarjan made it ~1.6x at 10k blocks.
    maximum = float(os.environ.get("REPRO_SCC_COLD_RATIO_MAX", "1.1"))
    anchor10 = by_seed[10000]  # the spec seeded off the 10000-block rung
    assert anchor10.cold_scc_seconds <= maximum * anchor10.cold_rpo_seconds, (
        format_stress([anchor10])
    )


def test_scc_seeding_never_worse_than_rpo():
    """Condensation-ordered seeding converges in <= the block evaluations of
    plain reverse-postorder seeding, at every corpus size."""
    specs = scaled_specs(STANDARD_SIZES[:2], scale=min(1.0, stress_scale()))
    for row in run_stress(specs, repeats=1):
        assert row.scc_iterations <= row.rpo_iterations, row.spec.describe()


def test_scc_seeding_strictly_beats_rpo_on_irreducible_cfgs():
    """On the irreducible stress mode (multi-entry loops: a dispatch block
    enters both at the header and inside the body) reverse post-order has no
    good visit order — there is no single header to stabilise first — so
    condensation-ordered seeding needs *strictly fewer* block evaluations,
    not just ties (the reducible corpus often converges identically)."""
    specs = scaled_specs(
        STANDARD_SIZES[:2], scale=min(1.0, stress_scale()), irreducible=0.5
    )
    for row in run_stress(specs, repeats=1):
        assert row.scc_iterations < row.rpo_iterations, row.spec.describe()


def test_interference_incremental_matrix_speedup(results_dir):
    """The incremental interference matrix: bit-identical to a cold rebuild
    after materialization-shaped edit logs (checked inside every repeat) and
    >= 5x faster than the cold rebuild at the 5k-block acceptance point."""
    scale = stress_scale()
    specs = scaled_specs([1000, 5000], scale=scale)
    rows = run_interference_stress(specs, repeats=3)  # bit-identity checked inside
    table = format_interference_stress(rows)
    write_result(results_dir, "interference_stress.txt", table)

    minimum = float(os.environ.get("REPRO_STRESS_SPEEDUP_MIN", "5.0"))
    by_seed = {row.spec.seed: row for row in rows}
    anchor = by_seed[5000]  # the spec seeded off the 5000-block rung
    assert anchor.speedup >= minimum, format_interference_stress([anchor])


def test_verify_fast_overhead(results_dir):
    """The acceptance bar on the always-on checks: ``verify_level=fast``
    costs <= 15% wall-clock over an unchecked translation at the 5k-block
    point (best-of-3, fresh function per run), and the clean corpus stays
    diagnostic-free at that scale."""
    from repro.bench.harness import run_verify_stress
    from repro.bench.reporting import format_verify_stress

    scale = stress_scale()
    specs = scaled_specs([5000], scale=scale)
    rows = run_verify_stress(specs, level="fast", repeats=3)
    table = format_verify_stress(rows)
    write_result(results_dir, "verify_overhead.txt", table)

    anchor = rows[0]
    assert anchor.diagnostics == 0, table
    maximum = float(os.environ.get("REPRO_VERIFY_OVERHEAD_MAX", "1.15"))
    assert anchor.overhead <= maximum, table
