"""Figure 5 — remaining copies per coalescing strategy.

Regenerates the paper's Figure 5: for every synthetic benchmark and every
coalescing variant (Intersect, Sreedhar I, Chaitin, Value, Sreedhar III,
Value + IS, Sharing), the number of copies remaining after out-of-SSA
translation, normalised to the Intersect strategy.  The pytest-benchmark
entries time one full quality run per variant; the plain test writes the
table and checks the orderings the paper reports.
"""

import pytest

from benchmarks.conftest import write_result
from repro.bench.harness import run_figure5
from repro.bench.metrics import copy_counts
from repro.bench.reporting import format_figure5
from repro.coalescing.variants import VARIANTS
from repro.outofssa.driver import EngineConfig, destruct_ssa


def _variant_config(name: str) -> EngineConfig:
    return EngineConfig(
        name=f"fig5_{name}", label=name, coalescing=name,
        liveness="check", use_interference_graph=False, linear_class_check=False,
    )


@pytest.mark.parametrize("variant", VARIANTS, ids=lambda v: v.name)
def test_benchmark_variant_quality_run(benchmark, small_suite, variant):
    """Time one full coalescing-quality run of a single variant (per-variant bars)."""
    functions = [fn for functions in small_suite.values() for fn in functions]
    config = _variant_config(variant.name)

    def run():
        total = 0
        for function in functions:
            copy = function.copy()
            destruct_ssa(copy, config)
            total += copy_counts(copy).static_copies
        return total

    remaining = benchmark(run)
    assert remaining >= 0


def test_figure5_table_and_orderings(benchmark, suite, results_dir):
    rows = benchmark.pedantic(run_figure5, args=(suite,), rounds=1, iterations=1)
    table = format_figure5(rows)
    write_result(results_dir, "figure5_quality.txt", table)

    sum_row = next(row for row in rows if row.benchmark == "sum")
    copies = sum_row.static_copies
    # Shape of the paper's Figure 5: interference accuracy buys copies.
    assert copies["value"] < copies["intersect"]
    assert copies["value"] <= copies["chaitin"] <= copies["intersect"]
    assert copies["sreedhar_i"] <= copies["intersect"]
    assert copies["sreedhar_iii"] <= copies["intersect"]
    assert copies["value_is"] <= copies["value"]
    assert copies["sharing"] <= copies["value_is"]
    # And the value-based family ends well below the intersection baseline.
    assert sum_row.ratios["sharing"] < 0.85
