"""Shared fixtures for the benchmark harness.

The synthetic suite is generated once per session.  Its size is controlled by
the ``REPRO_BENCH_SCALE`` environment variable (default ``0.5``): the paper's
experiments ran over all of SPEC CINT2000, which we scale down so the whole
benchmark run finishes in a couple of minutes; raising the scale grows every
generated function and the number of functions per benchmark.

Every ``test_figure*`` module also writes the regenerated table to
``benchmarks/results/`` so the numbers quoted in EXPERIMENTS.md can be
reproduced with a single ``pytest benchmarks/ --benchmark-only`` run.
"""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(__file__), "..", "src")
if os.path.abspath(_SRC) not in sys.path:
    sys.path.insert(0, os.path.abspath(_SRC))

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

_BENCH_DIR = os.path.abspath(os.path.dirname(__file__))


def pytest_collection_modifyitems(config, items):
    """Mark everything under ``benchmarks/`` as ``bench``.

    The marker (registered in ``pytest.ini``) lets the fast lane deselect the
    measurement-heavy tests with ``-m "not bench"`` while the tier-1 command
    still runs everything.
    """
    for item in items:
        if os.path.abspath(str(item.fspath)).startswith(_BENCH_DIR):
            item.add_marker(pytest.mark.bench)


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


@pytest.fixture(scope="session")
def suite():
    """The full synthetic SPEC CINT2000 stand-in suite (all 11 benchmarks)."""
    from repro.bench.suite import build_suite

    return build_suite(scale=bench_scale())


@pytest.fixture(scope="session")
def small_suite():
    """A three-benchmark subset used by the heavier per-engine measurements."""
    from repro.bench.suite import build_suite

    return build_suite(scale=bench_scale(), benchmarks=["164.gzip", "176.gcc", "254.gap"])


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: str, name: str, text: str) -> None:
    path = os.path.join(results_dir, name)
    with open(path, "w") as handle:
        handle.write(text + "\n")
