"""Figure 7 — memory footprint of the analysis structures per engine.

Regenerates the paper's Figure 7: for every engine configuration, the
"maximum" and "total" footprints of the interference graph and the liveness
structures (measured through the allocation tracker, plus the paper's
closed-form "evaluated" estimates for ordered-set and bit-set encodings),
normalised to the Sreedhar III baseline.
"""

import pytest

from benchmarks.conftest import write_result
from repro.bench.harness import run_figure7
from repro.bench.memory import footprint_of
from repro.bench.reporting import format_figure7
from repro.outofssa.driver import ENGINE_CONFIGURATIONS, destruct_ssa, engine_by_name


@pytest.mark.parametrize(
    "engine",
    [engine_by_name("sreedhar_iii"), engine_by_name("us_i"),
     engine_by_name("us_i_linear_intercheck_livecheck")],
    ids=lambda e: e.name,
)
def test_benchmark_memory_measurement_run(benchmark, small_suite, engine):
    """Time the instrumented translation run used for the memory measurement."""
    functions = [fn for functions in small_suite.values() for fn in functions]

    def run():
        total = 0
        for function in functions:
            result = destruct_ssa(function.copy(), engine)
            total += footprint_of(result).measured_total
        return total

    measured = benchmark(run)
    assert measured >= 0


def test_figure7_table_and_headline_memory(benchmark, suite, results_dir):
    rows = benchmark.pedantic(run_figure7, args=(suite,), rounds=1, iterations=1)
    table = format_figure7(rows)
    write_result(results_dir, "figure7_memory.txt", table)

    total_row = next(row for row in rows if row.metric == "total")
    fast = total_row.measured["us_i_linear_intercheck_livecheck"]
    baseline = total_row.measured["sreedhar_iii"]
    # The paper reports about an order of magnitude; require at least 4x so
    # the assertion tolerates workload-shape variation.
    assert baseline / max(fast, 1) > 4.0
    # Engines that keep the graph + liveness sets stay close to the baseline.
    assert total_row.measured["us_i"] > 0.5 * baseline
