"""Ablation — parallel-copy sequentialization (Algorithm 1) vs a naive lowering.

The paper's Algorithm 1 emits the minimum number of copies (one extra copy only
per cyclic permutation with no duplication).  The naive alternative saves every
source into a temporary first and therefore emits twice as many copies.  This
ablation compares both the emitted copy counts and the sequentialization speed
on randomly generated parallel copies.
"""

import random

import pytest

from benchmarks.conftest import write_result
from repro.ir.instructions import Copy, Variable
from repro.outofssa.parallel_copy import sequentialize_parallel_copy


def random_parallel_copies(count: int, width: int, seed: int = 7):
    rng = random.Random(seed)
    names = [f"r{i}" for i in range(width)]
    batches = []
    for _ in range(count):
        destinations = rng.sample(names, k=rng.randint(2, width))
        pairs = [(Variable(dst), Variable(rng.choice(names))) for dst in destinations]
        batches.append(pairs)
    return batches


def naive_sequentialization(pairs):
    """Save every source to a temporary, then write every destination."""
    copies = []
    temps = {}
    for index, (_dst, src) in enumerate(pairs):
        temp = Variable(f"naive_temp{index}")
        temps[index] = temp
        copies.append(Copy(temp, src))
    for index, (dst, _src) in enumerate(pairs):
        copies.append(Copy(dst, temps[index]))
    return copies


BATCHES = random_parallel_copies(count=200, width=12)


def fresh_factory():
    counter = [0]

    def fresh():
        counter[0] += 1
        return Variable(f"swap{counter[0]}")

    return fresh


@pytest.mark.parametrize("strategy", ["algorithm1", "naive"])
def test_benchmark_sequentialization(benchmark, strategy):
    if strategy == "algorithm1":
        run = lambda: sum(
            len(sequentialize_parallel_copy(pairs, fresh_factory())) for pairs in BATCHES
        )
    else:
        run = lambda: sum(len(naive_sequentialization(pairs)) for pairs in BATCHES)
    benchmark(run)


def test_algorithm1_emits_fewer_copies(benchmark, results_dir):
    def measure():
        return (
            sum(len(sequentialize_parallel_copy(pairs, fresh_factory())) for pairs in BATCHES),
            sum(len(naive_sequentialization(pairs)) for pairs in BATCHES),
        )

    optimal, naive = benchmark.pedantic(measure, rounds=1, iterations=1)
    write_result(
        results_dir,
        "ablation_sequentialization.txt",
        "copies emitted for 200 random parallel copies\n"
        f"  Algorithm 1 (paper): {optimal}\n"
        f"  naive (temp per component): {naive}\n",
    )
    assert optimal < naive
    assert optimal <= sum(len(pairs) for pairs in BATCHES) + 200  # ≤ one temp per batch
