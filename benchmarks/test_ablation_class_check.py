"""Ablation — linear vs quadratic congruence-class interference checking.

The paper's §IV-B replaces the quadratic number of variable-to-variable tests
by a linear sweep; Figure 6 shows the "Linear" configurations are consistently
faster.  This ablation isolates that design choice: the same engine (no graph,
liveness checking) is run with and without the linear check, and the number of
pairwise queries is recorded alongside the timings.
"""

import pytest

from benchmarks.conftest import write_result
from repro.outofssa.driver import EngineConfig, destruct_ssa


def _config(linear: bool) -> EngineConfig:
    return EngineConfig(
        name=f"ablation_{'linear' if linear else 'quadratic'}",
        label="ablation",
        coalescing="value",
        liveness="check",
        use_interference_graph=False,
        linear_class_check=linear,
    )


@pytest.mark.parametrize("linear", [False, True], ids=["quadratic", "linear"])
def test_benchmark_class_check(benchmark, small_suite, linear):
    functions = [fn for functions in small_suite.values() for fn in functions]
    config = _config(linear)

    def setup():
        return ([function.copy() for function in functions],), {}

    def run(copies):
        return sum(destruct_ssa(fn, config).stats.pair_queries for fn in copies)

    benchmark.pedantic(run, setup=setup, rounds=5, warmup_rounds=1)


def test_linear_check_issues_fewer_pair_queries(benchmark, small_suite, results_dir):
    functions = [fn for functions in small_suite.values() for fn in functions]

    def measure():
        counts = {}
        for linear in (False, True):
            config = _config(linear)
            counts[linear] = sum(
                destruct_ssa(fn.copy(), config).stats.pair_queries for fn in functions
            )
        return counts

    queries = benchmark.pedantic(measure, rounds=1, iterations=1)
    write_result(
        results_dir,
        "ablation_class_check.txt",
        "pairwise interference queries during coalescing\n"
        f"  quadratic class check: {queries[False]}\n"
        f"  linear class check:    {queries[True]}\n",
    )
    assert queries[True] <= queries[False]
