"""Service throughput — warm content-addressed caching vs cold translation.

The ``bench``-tier companion of the translation service (``repro serve``):
the same repeat-heavy request stream — a few hot stress-corpus functions,
re-requested round-robin, the JIT traffic profile — is served three ways:

* **cold** — caching disabled, every request parses + translates;
* **warm** — one content-addressed cache (IR digest × engine fingerprint):
  first occurrence cold, every repeat a hit;
* **sharded** — the digest-affine sharded scheduler over warm shards.

Bit-identity of all three response streams is checked inside the harness on
every run; the table lands in ``benchmarks/results/service_throughput.txt``.

Scaling knobs (shared CI runners shrink the corpus, the scheduled stress
lane uploads the table as an artifact):

* ``REPRO_SERVICE_SCALE`` — multiplies the corpus block count (default 1.0,
  i.e. the 5k-block acceptance corpus);
* ``REPRO_SERVICE_WARM_MIN`` — the asserted floor on warm-over-cold
  throughput (default 3.0, the subsystem's acceptance bar; measured locally
  the ratio tracks the stream's repeat factor, ~6x on the default stream).
"""

import os

from benchmarks.conftest import write_result
from repro.bench.harness import run_service_throughput, service_request_stream
from repro.bench.reporting import format_service_throughput


def service_scale() -> float:
    return float(os.environ.get("REPRO_SERVICE_SCALE", "1.0"))


def test_service_throughput_table_and_warm_speedup(results_dir):
    rows = run_service_throughput(
        blocks=5000,
        functions=3,
        repeat=6,
        shards=4,
        engine="us_i",
        scale=service_scale(),
    )  # response bit-identity across modes is checked inside
    table = format_service_throughput(rows)
    write_result(results_dir, "service_throughput.txt", table)

    by_mode = {row.mode: row for row in rows}
    warm = by_mode["warm"]
    # Repeat-heavy traffic: everything after each function's first visit
    # must be a cache hit.
    assert warm.hits == warm.requests - warm.unique, table

    # The acceptance bar: warm-cache throughput >= 3x cold on the
    # repeat-heavy stream (the cold baseline pays a full parse + translate
    # per request; a warm hit is a digest + two dict lookups).
    minimum = float(os.environ.get("REPRO_SERVICE_WARM_MIN", "3.0"))
    assert warm.speedup_vs_cold >= minimum, table


def test_sharded_scheduler_serves_the_stream_warm(results_dir):
    """The sharded row: same hits as the warm row (digest affinity keeps
    every repeat on the shard that translated its function), responses
    bit-identical (checked in the harness)."""
    stream = service_request_stream(
        blocks=1000, functions=4, repeat=4, scale=min(1.0, service_scale())
    )
    rows = run_service_throughput(engine="us_i", shards=2, stream=stream)
    by_mode = {row.mode.split("[")[0]: row for row in rows}
    assert by_mode["sharded"].hits == by_mode["warm"].hits
    assert by_mode["sharded"].requests == len(stream)
