"""Service throughput — warm content-addressed caching vs cold translation.

The ``bench``-tier companion of the translation service (``repro serve``):
the same repeat-heavy request stream — a few hot stress-corpus functions,
re-requested round-robin, the JIT traffic profile — is served three ways:

* **cold** — caching disabled, every request parses + translates;
* **warm** — one content-addressed cache (IR digest × engine fingerprint):
  first occurrence cold, every repeat a hit;
* **sharded** — the digest-affine sharded scheduler over warm shards.

Bit-identity of all three response streams is checked inside the harness on
every run; the table lands in ``benchmarks/results/service_throughput.txt``.

Scaling knobs (shared CI runners shrink the corpus, the scheduled stress
lane uploads the table as an artifact):

* ``REPRO_SERVICE_SCALE`` — multiplies the corpus block count (default 1.0,
  i.e. the 5k-block acceptance corpus);
* ``REPRO_SERVICE_WARM_MIN`` — the asserted floor on warm-over-cold
  throughput (default 3.0, the subsystem's acceptance bar; measured locally
  the ratio tracks the stream's repeat factor, ~6x on the default stream);
* ``REPRO_SERVICE_ASYNC_MIN`` — the asserted floor on pipelined-over-blocking
  throughput in the concurrent-clients experiment (default 1.0: 32 pipelined
  clients must at least sustain the blocking path's warm rate; measured
  locally the pipelined mode is several times faster).
"""

import os

from benchmarks.conftest import write_result
from repro.bench.harness import (
    run_service_concurrency,
    run_service_throughput,
    service_request_stream,
)
from repro.bench.reporting import (
    format_service_concurrency,
    format_service_throughput,
)


def service_scale() -> float:
    return float(os.environ.get("REPRO_SERVICE_SCALE", "1.0"))


def test_service_throughput_table_and_warm_speedup(results_dir):
    rows = run_service_throughput(
        blocks=5000,
        functions=3,
        repeat=6,
        shards=4,
        engine="us_i",
        scale=service_scale(),
    )  # response bit-identity across modes is checked inside
    table = format_service_throughput(rows)
    write_result(results_dir, "service_throughput.txt", table)

    by_mode = {row.mode: row for row in rows}
    warm = by_mode["warm"]
    # Repeat-heavy traffic: everything after each function's first visit
    # must be a cache hit.
    assert warm.hits == warm.requests - warm.unique, table

    # The acceptance bar: warm-cache throughput >= 3x cold on the
    # repeat-heavy stream (the cold baseline pays a full parse + translate
    # per request; a warm hit is a digest + two dict lookups).
    minimum = float(os.environ.get("REPRO_SERVICE_WARM_MIN", "3.0"))
    assert warm.speedup_vs_cold >= minimum, table


def test_sharded_scheduler_serves_the_stream_warm(results_dir):
    """The sharded row: same hits as the warm row (digest affinity keeps
    every repeat on the shard that translated its function), responses
    bit-identical (checked in the harness)."""
    stream = service_request_stream(
        blocks=1000, functions=4, repeat=4, scale=min(1.0, service_scale())
    )
    rows = run_service_throughput(engine="us_i", shards=2, stream=stream)
    by_mode = {row.mode.split("[")[0]: row for row in rows}
    assert by_mode["sharded"].hits == by_mode["warm"].hits
    assert by_mode["sharded"].requests == len(stream)


def test_pipelined_concurrent_clients_sustain_blocking_throughput(results_dir):
    """The async daemon under 32 pipelined clients: no per-request thread,
    every response bit-identical (checked in the harness), and at least the
    blocking path's warm requests/second.  The daemon's own metrics must
    have observed the run: non-zero latency percentiles and a non-trivial
    admission-queue high-water mark."""
    rows = run_service_concurrency(
        clients=32,
        requests_per_client=12,
        blocks=600,
        functions=4,
        engine="us_i",
        shards=4,
        scale=min(1.0, service_scale()),
    )
    table = format_service_concurrency(rows)
    write_result(results_dir, "service_async_throughput.txt", table)

    by_mode = {row.mode.split("[")[0]: row for row in rows}
    blocking, pipelined = by_mode["blocking"], by_mode["pipelined"]
    assert pipelined.clients >= 32 and pipelined.requests == blocking.requests

    # Nothing was shed: the experiment sizes the admission queue for its
    # own load, so overloaded responses here mean lost work, not policy.
    assert pipelined.overloaded == 0, table

    minimum = float(os.environ.get("REPRO_SERVICE_ASYNC_MIN", "1.0"))
    assert pipelined.requests_per_second >= blocking.requests_per_second * minimum, table

    # Live metrics observed the run.
    assert pipelined.p50_ms > 0 and pipelined.p95_ms > 0 and pipelined.p99_ms > 0, table
    assert pipelined.queue_peak >= 1, table
