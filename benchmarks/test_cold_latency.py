"""Cold-translation latency — the flat arena core vs the objects core.

The ``bench``-tier acceptance lane of the ``--core flat`` representation: the
5k- and 10k-block stress corpus functions are translated end to end (the full
``us_i`` out-of-SSA pipeline, cold analyses every run) under both IR cores,
interleaved within every repeat so machine load hits both sides.  The harness
asserts output bit-identity (IR text plus all stats counters, timing fields
excepted) on every repeat; this test asserts the headline claim — the flat
core is at least 2x faster cold at both sizes — and writes the table to
``benchmarks/results/cold_latency.txt``.

Scaling knobs (shared CI runners shrink the corpus, the scheduled stress lane
uploads the table as an artifact):

* ``REPRO_STRESS_SCALE`` — multiplies both corpus sizes (default 1.0);
* ``REPRO_COLD_SPEEDUP_MIN`` — the asserted floor on the flat-vs-objects
  cold speedup at both points (default 2.0, the representation's acceptance
  bar; measured locally ~2.3x at 5k blocks and ~3x at 10k).
"""

import os

from benchmarks.conftest import write_result
from repro.bench.corpus import scaled_specs
from repro.bench.harness import run_cold_latency
from repro.bench.reporting import format_cold_latency


def test_cold_latency_speedup_and_identity(results_dir):
    scale = float(os.environ.get("REPRO_STRESS_SCALE", "1.0"))
    specs = scaled_specs([5000, 10000], scale=scale)
    rows = run_cold_latency(specs, engine="us_i", repeats=3)  # identity checked inside
    table = format_cold_latency(rows)
    write_result(results_dir, "cold_latency.txt", table)

    minimum = float(os.environ.get("REPRO_COLD_SPEEDUP_MIN", "2.0"))
    for row in rows:
        assert row.speedup >= minimum, table
