"""Ablation — the three liveness backends in isolation.

Figure 6/7 attribute most of the speed and memory gains to dropping the
explicit liveness sets (and the interference graph).  This ablation measures
the liveness oracles in isolation: construction plus a fixed batch of
queries, and their idealised footprints — including the bit-set worklist
backend the set-based engine configurations now run on, whose footprint is
the measured counterpart of the Figure 7 bit-set formula.
"""

import pytest

from benchmarks.conftest import write_result
from repro.liveness.bitsets import BitLivenessSets
from repro.liveness.dataflow import LivenessSets
from repro.liveness.livecheck import LivenessChecker


ORACLES = {"sets": LivenessSets, "bitsets": BitLivenessSets, "check": LivenessChecker}


@pytest.mark.parametrize("kind", list(ORACLES), ids=list(ORACLES))
def test_benchmark_liveness_oracle(benchmark, small_suite, kind):
    functions = [fn for functions in small_suite.values() for fn in functions]
    oracle_class = ORACLES[kind]

    def run():
        answered = 0
        for function in functions:
            oracle = oracle_class(function)
            variables = function.variables()
            for block in function.blocks:
                for var in variables[:20]:
                    answered += oracle.is_live_out(block, var)
        return answered

    benchmark(run)


def test_liveness_footprint_comparison(benchmark, small_suite, results_dir):
    functions = [fn for functions in small_suite.values() for fn in functions]

    def measure():
        return (
            sum(LivenessSets(fn).footprint_bytes() for fn in functions),
            sum(BitLivenessSets(fn).footprint_bytes() for fn in functions),
            sum(LivenessChecker(fn).footprint_bytes() for fn in functions),
        )

    sets_bytes, bitset_bytes, check_bytes = benchmark.pedantic(measure, rounds=1, iterations=1)
    write_result(
        results_dir,
        "ablation_liveness.txt",
        "liveness structure footprints (bytes)\n"
        f"  live-in/live-out ordered sets:  {sets_bytes}\n"
        f"  live-in/live-out bit-set rows:  {bitset_bytes}\n"
        f"  liveness checking structures:   {check_bytes}\n",
    )
    assert check_bytes < sets_bytes
    assert bitset_bytes < sets_bytes
