"""The paper's headline claims, §I and §IV-D.

"Our out-of-SSA translation algorithm, without virtualization, outperforms the
speed of Method III of Sreedhar et al. by a factor of 2, reduces the memory
footprint by a factor of 10, while ensuring comparable or better copy
coalescing abilities."

This module aggregates the three experiments into one summary, records it, and
asserts the *direction* (and a conservative fraction of the magnitude) of each
claim.
"""

import os

from benchmarks.conftest import write_result
from repro.bench.harness import headline_summary


def test_headline_summary(benchmark, small_suite, results_dir):
    summary = benchmark.pedantic(
        headline_summary, args=(small_suite,), rounds=1, iterations=1
    )

    text = (
        "Headline claims (synthetic suite, see EXPERIMENTS.md)\n"
        f"  speed-up vs Sreedhar III:          {summary.speedup_vs_sreedhar:.2f}x  (paper: ~2x)\n"
        f"  memory reduction vs Sreedhar III:  {summary.memory_reduction_vs_sreedhar:.1f}x  (paper: ~10x)\n"
        f"  remaining copies (Value / Sreedhar III): {summary.copies_ratio_vs_sreedhar:.3f}  (paper: comparable or better)\n"
    )
    write_result(results_dir, "headline_claims.txt", text)

    # The Sreedhar III baseline now runs on the bit-set liveness backend (as
    # in the paper), so the honest speed gap is smaller than against the old
    # ordered-set strawman baseline — and on this three-benchmark subset it is
    # thinner (and noisier) than the full-suite margin test_figure6_speed.py
    # enforces, so this floor is directional only.  REPRO_SPEED_RATIO_MIN
    # lowers it further on shared CI runners.
    assert summary.speedup_vs_sreedhar > float(os.environ.get("REPRO_SPEED_RATIO_MIN", "1.05"))
    assert summary.memory_reduction_vs_sreedhar > 4.0
    assert summary.copies_ratio_vs_sreedhar < 1.05
