"""The paper's headline claims, §I and §IV-D.

"Our out-of-SSA translation algorithm, without virtualization, outperforms the
speed of Method III of Sreedhar et al. by a factor of 2, reduces the memory
footprint by a factor of 10, while ensuring comparable or better copy
coalescing abilities."

This module aggregates the three experiments into one summary, records it, and
asserts the *direction* (and a conservative fraction of the magnitude) of each
claim.
"""

from benchmarks.conftest import write_result
from repro.bench.harness import headline_summary


def test_headline_summary(benchmark, small_suite, results_dir):
    summary = benchmark.pedantic(
        headline_summary, args=(small_suite,), rounds=1, iterations=1
    )

    text = (
        "Headline claims (synthetic suite, see EXPERIMENTS.md)\n"
        f"  speed-up vs Sreedhar III:          {summary.speedup_vs_sreedhar:.2f}x  (paper: ~2x)\n"
        f"  memory reduction vs Sreedhar III:  {summary.memory_reduction_vs_sreedhar:.1f}x  (paper: ~10x)\n"
        f"  remaining copies (Value / Sreedhar III): {summary.copies_ratio_vs_sreedhar:.3f}  (paper: comparable or better)\n"
    )
    write_result(results_dir, "headline_claims.txt", text)

    assert summary.speedup_vs_sreedhar > 1.3
    assert summary.memory_reduction_vs_sreedhar > 4.0
    assert summary.copies_ratio_vs_sreedhar < 1.05
