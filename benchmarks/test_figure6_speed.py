"""Figure 6 — out-of-SSA translation speed per engine configuration.

One pytest-benchmark entry per engine configuration (the seven bars of the
paper's Figure 6), timing the translation of the small suite with fresh
function copies prepared outside the timed region.  The table test regenerates
the per-benchmark normalised ratios and records them.
"""

import os

import pytest

from benchmarks.conftest import write_result
from repro.bench.harness import run_figure6
from repro.bench.reporting import format_figure6
from repro.outofssa.driver import ENGINE_CONFIGURATIONS, destruct_ssa


@pytest.mark.parametrize("engine", ENGINE_CONFIGURATIONS, ids=lambda e: e.name)
def test_benchmark_engine_speed(benchmark, small_suite, engine):
    functions = [fn for functions in small_suite.values() for fn in functions]

    def setup():
        return ([function.copy() for function in functions],), {}

    def run(copies):
        for function in copies:
            destruct_ssa(function, engine)

    benchmark.pedantic(run, setup=setup, rounds=5, warmup_rounds=1)


def test_figure6_table_and_headline_speed(benchmark, suite, results_dir):
    # min-of-2 per engine: filters scheduler/GC spikes out of the ratio.
    rows = benchmark.pedantic(
        run_figure6, args=(suite,), kwargs={"repeats": 2}, rounds=1, iterations=1
    )
    table = format_figure6(rows)
    write_result(results_dir, "figure6_speed.txt", table)

    sum_row = next(row for row in rows if row.benchmark == "sum")
    fast = sum_row.seconds["us_i_linear_intercheck_livecheck"]
    baseline = sum_row.seconds["sreedhar_iii"]
    # The paper reports ~2x against its Sreedhar III implementation.  Our
    # baseline runs on the bit-set liveness backend (as the paper's did) —
    # already a harder target than the original ordered-set strawman — and
    # since the flat IR core it is harder still: the gap was dominated by
    # the interference-graph build the fast engine skips, and the flat
    # core's arena scan made exactly that build several times cheaper, so
    # the measured margin compressed from ~1.25x to ~1.05-1.2x on this
    # small-function workload.  Keep the direction strict (`fast <
    # baseline`) and require a floor below the compressed margin so the
    # assertion survives machine noise while still catching a reversal of
    # the claim; shared CI runners lower the floor further via the
    # environment (see .github/workflows/ci.yml).
    minimum_ratio = float(os.environ.get("REPRO_SPEED_RATIO_MIN", "1.02"))
    assert fast < baseline
    assert baseline / fast > minimum_ratio
