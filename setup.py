"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in fully
offline environments where the ``wheel`` package (needed for PEP 660 editable
wheels) is not available: pip falls back to the legacy ``setup.py develop``
code path.
"""

from setuptools import setup

setup()
