"""Pytest root configuration.

Makes the ``repro`` package importable directly from ``src/`` so the test and
benchmark suites run even when the package has not been pip-installed (useful
in fully offline environments).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
