"""Union-find (disjoint set union) with path compression and union by size.

Congruence classes — the sets of variables already coalesced together — are
the central bookkeeping structure of the paper's coalescing formulation.  The
union-find gives O(α) representative lookups; the ordered member lists needed
by the linear interference test live in :mod:`repro.interference.congruence`.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, TypeVar

T = TypeVar("T", bound=Hashable)


class UnionFind:
    """Disjoint-set forest over arbitrary hashable items."""

    def __init__(self, items: Iterable[T] = ()) -> None:
        self._parent: Dict[T, T] = {}
        self._size: Dict[T, int] = {}
        for item in items:
            self.add(item)

    def add(self, item: T) -> None:
        """Register ``item`` as a singleton if it is not known yet."""
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def __contains__(self, item: T) -> bool:
        return item in self._parent

    def __iter__(self) -> Iterator[T]:
        return iter(self._parent)

    def __len__(self) -> int:
        return len(self._parent)

    def find(self, item: T) -> T:
        """Return the canonical representative of ``item``'s set."""
        parent = self._parent
        root = item
        while parent[root] != root:
            root = parent[root]
        # Path compression.
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def union(self, a: T, b: T) -> T:
        """Merge the sets of ``a`` and ``b``; return the surviving root."""
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return root_a
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        return root_a

    def same(self, a: T, b: T) -> bool:
        return self.find(a) == self.find(b)

    def groups(self) -> Dict[T, List[T]]:
        """Map each representative to the list of its members (insertion order)."""
        result: Dict[T, List[T]] = {}
        for item in self._parent:
            result.setdefault(self.find(item), []).append(item)
        return result
