"""Small generic data structures shared by the rest of the library.

The implementations here intentionally mirror the data structures discussed in
the paper's efficiency section (ordered sets, bit sets, a union-find used for
congruence-class bookkeeping) and the allocation-instrumentation facility used
to reproduce the memory-footprint experiment (Figure 7).
"""

from repro.utils.orderedset import OrderedSet
from repro.utils.bitset import BitSet, BitMatrix
from repro.utils.unionfind import UnionFind
from repro.utils.instrument import AllocationTracker, current_tracker, track_allocations

__all__ = [
    "OrderedSet",
    "BitSet",
    "BitMatrix",
    "UnionFind",
    "AllocationTracker",
    "current_tracker",
    "track_allocations",
]
