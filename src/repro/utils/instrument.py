"""Allocation instrumentation used by the memory-footprint experiment.

The paper's Figure 7 reports a "Measured" footprint obtained "from the
statistics provided by our memory allocator".  We reproduce that by letting
the analyses report every logical allocation (interference bit-matrix rows,
liveness sets, liveness-checking structures, congruence class lists) to a
tracker.  The tracker keeps both the *total* number of bytes ever allocated
and the *maximum* simultaneously-live footprint, matching the two bars of
Figure 7.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Dict, Iterator, Optional


class AllocationTracker:
    """Accumulates per-category byte counts for one out-of-SSA run."""

    def __init__(self) -> None:
        self.total_bytes: Dict[str, int] = {}
        self.live_bytes: Dict[str, int] = {}
        self.peak_bytes: Dict[str, int] = {}

    # -- recording -----------------------------------------------------------
    def allocate(self, category: str, nbytes: int) -> None:
        """Record an allocation of ``nbytes`` bytes under ``category``."""
        if nbytes <= 0:
            return
        self.total_bytes[category] = self.total_bytes.get(category, 0) + nbytes
        self.live_bytes[category] = self.live_bytes.get(category, 0) + nbytes
        self.peak_bytes[category] = max(
            self.peak_bytes.get(category, 0), self.live_bytes[category]
        )

    def free(self, category: str, nbytes: int) -> None:
        """Record that ``nbytes`` bytes of ``category`` were released."""
        if nbytes <= 0:
            return
        self.live_bytes[category] = max(0, self.live_bytes.get(category, 0) - nbytes)

    def resize(self, category: str, old_bytes: int, new_bytes: int) -> None:
        """Record a grow/shrink of a structure (e.g. dynamic bit-matrix)."""
        if new_bytes > old_bytes:
            self.allocate(category, new_bytes - old_bytes)
        else:
            self.free(category, old_bytes - new_bytes)

    # -- reporting -----------------------------------------------------------
    def total(self) -> int:
        return sum(self.total_bytes.values())

    def peak(self) -> int:
        return sum(self.peak_bytes.values())

    def by_category(self) -> Dict[str, Dict[str, int]]:
        categories = set(self.total_bytes) | set(self.peak_bytes)
        return {
            category: {
                "total": self.total_bytes.get(category, 0),
                "peak": self.peak_bytes.get(category, 0),
            }
            for category in sorted(categories)
        }

    def __repr__(self) -> str:
        return f"AllocationTracker(total={self.total()}, peak={self.peak()})"


# The installed tracker is *per thread*: a translation runs entirely on one
# thread, and the service layer (sharded scheduler, daemon handler threads)
# translates concurrently — a process-wide slot would let one thread's
# tracker absorb another thread's allocations (or leak into code that runs
# with no tracker installed at all).
_CURRENT = threading.local()


def current_tracker() -> Optional[AllocationTracker]:
    """The tracker installed by :func:`track_allocations` on this thread."""
    return getattr(_CURRENT, "tracker", None)


def record_allocation(category: str, nbytes: int) -> None:
    """Report an allocation to this thread's installed tracker (if any)."""
    tracker = getattr(_CURRENT, "tracker", None)
    if tracker is not None:
        tracker.allocate(category, nbytes)


def record_free(category: str, nbytes: int) -> None:
    """Report a release to this thread's installed tracker (if any)."""
    tracker = getattr(_CURRENT, "tracker", None)
    if tracker is not None:
        tracker.free(category, nbytes)


@contextlib.contextmanager
def track_allocations(tracker: Optional[AllocationTracker] = None) -> Iterator[AllocationTracker]:
    """Install ``tracker`` (or a fresh one) as this thread's allocation sink."""
    tracker = tracker if tracker is not None else AllocationTracker()
    previous = getattr(_CURRENT, "tracker", None)
    _CURRENT.tracker = tracker
    try:
        yield tracker
    finally:
        _CURRENT.tracker = previous
