"""Bit sets and a half (triangular) bit matrix.

The paper's baseline stores the interference graph as a *half-size bit
matrix* and evaluates liveness sets stored as bit sets with the closed-form
footprint ``ceil(#variables / 8) * #basicblocks * 2``.  These classes provide
both the functional behaviour and the byte-accounting needed to regenerate
Figure 7.

A :class:`BitSet` is a fixed-universe set of small integers with the usual
set protocol plus the raw-mask escape hatch fixpoint solvers use:

>>> from repro.utils.bitset import BitSet, BitMatrix
>>> row = BitSet(10, [1, 4])
>>> row.add(7); sorted(row)
[1, 4, 7]
>>> 4 in row, 5 in row, 99 in row      # out-of-universe is just "not in"
(True, False, False)
>>> len(row), row.footprint_bytes()    # ceil(10 / 8) == 2 bytes
(3, 2)
>>> row.union(BitSet(12, [4, 11])).universe    # operations merge universes
12
>>> BitSet.from_bits(10, 0b10010) == BitSet(10, [1, 4])  # solver handoff
True

The :class:`BitMatrix` stores a symmetric relation in a triangle (pair
``{a, b}`` lives on the row of the larger index), growing as variables are
introduced — the paper's interference-graph representation:

>>> matrix = BitMatrix(3)
>>> matrix.set(0, 2); matrix.test(2, 0)    # symmetric
True
>>> matrix.set(5, 1)                        # grows on demand
>>> matrix.size, sorted(matrix.neighbours(1))
(6, [5])
>>> BitMatrix.evaluated_footprint(64)       # ceil(64/8) * 64 / 2
256
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional


class BitSet:
    """A fixed-universe bit set over integer indices ``0 .. universe-1``."""

    __slots__ = ("_bits", "universe")

    def __init__(self, universe: int, items: Optional[Iterable[int]] = None) -> None:
        if universe < 0:
            raise ValueError("universe size must be non-negative")
        self.universe = universe
        self._bits = 0
        if items is not None:
            for item in items:
                self.add(item)

    def _check(self, item: int) -> None:
        if not (0 <= item < self.universe):
            raise IndexError(f"index {item} out of universe [0, {self.universe})")

    def add(self, item: int) -> None:
        self._check(item)
        self._bits |= 1 << item

    def remove(self, item: int) -> None:
        """Remove ``item``; raise :class:`KeyError` if it is not in the set."""
        if item not in self:
            raise KeyError(item)
        self._bits &= ~(1 << item)

    def discard(self, item: int) -> None:
        """Remove ``item`` if present.

        Mirrors ``set.discard`` (and ``__contains__``): out-of-universe items
        are simply not in the set, so discarding them is a no-op, not an error.
        """
        if 0 <= item < self.universe:
            self._bits &= ~(1 << item)

    @property
    def bits(self) -> int:
        """The raw bit mask (read-only; for mask-level fast paths)."""
        return self._bits

    def __contains__(self, item: int) -> bool:
        if not (0 <= item < self.universe):
            return False
        return bool(self._bits >> item & 1)

    def __iter__(self) -> Iterator[int]:
        bits = self._bits
        while bits:
            low = bits & -bits
            yield low.bit_length() - 1
            bits ^= low

    def __len__(self) -> int:
        return self._bits.bit_count()

    def __bool__(self) -> bool:
        return self._bits != 0

    def __eq__(self, other: object) -> bool:
        """Two bit sets are equal iff they have the same universe *and* bits.

        A ``BitSet`` is a fixed-universe object: ``BitSet(4, [1])`` and
        ``BitSet(8, [1])`` behave differently under ``add``/``difference``
        complement-style operations, so they must not compare equal even
        though their members coincide.
        """
        if isinstance(other, BitSet):
            return self.universe == other.universe and self._bits == other._bits
        return NotImplemented

    def __repr__(self) -> str:
        return "BitSet({})".format(sorted(self))

    # -- universe management -------------------------------------------------
    def grow(self, new_universe: int) -> None:
        """Extend the universe to ``new_universe`` indices (monotonic no-op
        when smaller).  Existing members keep their indices; shrinking is not
        supported because it could silently drop members."""
        if new_universe > self.universe:
            self.universe = new_universe

    @classmethod
    def from_bits(cls, universe: int, bits: int) -> "BitSet":
        """Wrap a raw bit mask (e.g. from a fixpoint solver) into a BitSet."""
        new = cls(universe)
        if bits < 0 or bits >> universe:
            raise ValueError("bit mask has bits outside the universe")
        new._bits = bits
        return new

    # -- set algebra ---------------------------------------------------------
    # Binary operations between sets of *different* universes are defined by
    # embedding both operands into the larger universe (indices are stable, so
    # the embedding is the identity on members); the result carries that
    # larger universe.  Operations never shrink a universe.
    def union_update(self, other: "BitSet") -> bool:
        """In-place union; returns True if this set changed (for fixpoints).

        Grows this set's universe to cover ``other``'s, per the rule above.
        """
        self.grow(other.universe)
        before = self._bits
        self._bits |= other._bits
        return self._bits != before

    def union(self, other: "BitSet") -> "BitSet":
        """Union over the merged (max) universe of the two operands."""
        new = BitSet(max(self.universe, other.universe))
        new._bits = self._bits | other._bits
        return new

    def intersection(self, other: "BitSet") -> "BitSet":
        """Intersection, also carried in the merged (max) universe: although
        no member can exceed the smaller universe, keeping the merged one
        makes union/intersection results interoperable."""
        new = BitSet(max(self.universe, other.universe))
        new._bits = self._bits & other._bits
        return new

    def difference(self, other: "BitSet") -> "BitSet":
        new = BitSet(self.universe)
        new._bits = self._bits & ~other._bits
        return new

    def isdisjoint(self, other: "BitSet") -> bool:
        return (self._bits & other._bits) == 0

    def copy(self) -> "BitSet":
        new = BitSet(self.universe)
        new._bits = self._bits
        return new

    # -- memory accounting ---------------------------------------------------
    def footprint_bytes(self) -> int:
        """Idealised footprint: ``ceil(universe / 8)`` bytes."""
        return (self.universe + 7) // 8


class BitMatrix:
    """Symmetric boolean relation stored as a half (upper triangular) matrix.

    This is the representation the paper uses for the interference graph.  The
    matrix is grown dynamically (as in Sreedhar III / Us III where φ-copy
    variables are added on the fly), and the growth history is what makes the
    "Measured" footprint in Figure 7 slightly larger than the "Evaluated"
    perfect-memory formula ``ceil(n/8) * n/2``.
    """

    __slots__ = ("_rows", "_size", "_footprint", "peak_bytes", "total_allocated_bytes")

    def __init__(self, size: int = 0) -> None:
        self._size = 0
        self._rows: list = []
        self._footprint = 0
        self.peak_bytes = 0
        self.total_allocated_bytes = 0
        if size:
            self.grow(size)

    @property
    def size(self) -> int:
        return self._size

    def grow(self, new_size: int) -> None:
        """Extend the universe to ``new_size`` indices (monotonic)."""
        if new_size <= self._size:
            return
        for index in range(self._size, new_size):
            # Row i of a half matrix stores the relation with 0..i-1 plus the
            # diagonal, i.e. i+1 bits.
            self._rows.append(0)
            row_bytes = (index + 1 + 7) // 8
            self.total_allocated_bytes += row_bytes
            self._footprint += row_bytes
        self._size = new_size
        self.peak_bytes = max(self.peak_bytes, self._footprint)

    def _order(self, a: int, b: int) -> tuple:
        return (a, b) if a >= b else (b, a)

    def set(self, a: int, b: int) -> None:
        high, low = self._order(a, b)
        if high >= self._size:
            self.grow(high + 1)
        self._rows[high] |= 1 << low

    def clear(self, a: int, b: int) -> None:
        high, low = self._order(a, b)
        if high < self._size:
            self._rows[high] &= ~(1 << low)

    def test(self, a: int, b: int) -> bool:
        high, low = self._order(a, b)
        if high >= self._size:
            return False
        return bool(self._rows[high] >> low & 1)

    def neighbours(self, a: int) -> Iterator[int]:
        """Iterate over all indices related to ``a``, in increasing order.

        The half matrix stores the pair ``{a, b}`` on the row of the larger
        index, so the neighbours below ``a`` are exactly the set bits of row
        ``a`` (scanned with low-bit tricks, one step per *set* bit), and the
        neighbours above ``a`` are the rows whose bit ``a`` is set (one word
        test per row, no pair re-ordering or re-indexing per query).
        """
        if a < 0 or a >= self._size:
            return
        row = self._rows[a] & ~(1 << a)  # the diagonal is not a neighbour
        while row:
            low = row & -row
            yield low.bit_length() - 1
            row ^= low
        for other in range(a + 1, self._size):
            if self._rows[other] >> a & 1:
                yield other

    def full_row(self, index: int) -> int:
        """The symmetric adjacency row of ``index`` as one bit mask.

        The half matrix stores pair ``{a, b}`` on the row of the larger index;
        this assembles both halves (row bits below ``index``, column bits
        above it) into a single mask over all current indices, with the
        diagonal cleared.  The congruence layer keeps one such mask per
        class — merged by OR on coalesces — for word-level class checks.
        """
        if index < 0 or index >= self._size:
            return 0
        bits = self._rows[index] & ~(1 << index)
        for other in range(index + 1, self._size):
            if self._rows[other] >> index & 1:
                bits |= 1 << other
        return bits

    def clear_all(self, index: int) -> None:
        """Drop every pair involving ``index`` (row and column bits)."""
        if index < 0 or index >= self._size:
            return
        self._rows[index] = 0
        keep = ~(1 << index)
        for other in range(index + 1, self._size):
            self._rows[other] &= keep

    def row_bits(self) -> list:
        """The raw half-matrix rows (one int mask per index), lowest first.

        Two matrices over the *same* index assignment are bit-identical iff
        these lists are equal — the comparison the incremental-rebuild
        identity tests use.
        """
        return list(self._rows)

    def footprint_bytes(self) -> int:
        """Current idealised footprint of the half matrix (kept incrementally:
        ``add_variable`` reads it before/after every grow)."""
        return self._footprint

    @staticmethod
    def evaluated_footprint(num_variables: int) -> int:
        """The paper's perfect-memory estimate ``ceil(n/8) * n / 2``."""
        return ((num_variables + 7) // 8) * num_variables // 2
