"""Insertion-ordered set.

Liveness sets in the paper's baseline implementation ("Sreedhar III") are kept
as *ordered sets*; Figure 7 compares their footprint against bit sets.  Python
dictionaries preserve insertion order, which gives us an ordered set with O(1)
membership for free.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Optional, TypeVar

T = TypeVar("T", bound=Hashable)


class OrderedSet:
    """A set that remembers insertion order.

    Supports the usual set algebra needed by data-flow analyses (union,
    difference, intersection) while iterating deterministically, which keeps
    every analysis in this library reproducible run to run.
    """

    __slots__ = ("_items",)

    def __init__(self, items: Optional[Iterable[T]] = None) -> None:
        self._items: dict = {}
        if items is not None:
            for item in items:
                self._items[item] = None

    # -- basic protocol ----------------------------------------------------
    def __contains__(self, item: T) -> bool:
        return item in self._items

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, OrderedSet):
            return set(self._items) == set(other._items)
        if isinstance(other, (set, frozenset)):
            return set(self._items) == other
        return NotImplemented

    def __repr__(self) -> str:
        return "OrderedSet({})".format(list(self._items))

    # -- mutation ----------------------------------------------------------
    def add(self, item: T) -> None:
        self._items[item] = None

    def discard(self, item: T) -> None:
        self._items.pop(item, None)

    def remove(self, item: T) -> None:
        del self._items[item]

    def update(self, items: Iterable[T]) -> None:
        for item in items:
            self._items[item] = None

    def difference_update(self, items: Iterable[T]) -> None:
        for item in items:
            self._items.pop(item, None)

    def clear(self) -> None:
        self._items.clear()

    # -- set algebra (non-mutating) -----------------------------------------
    def copy(self) -> "OrderedSet":
        new = OrderedSet()
        new._items = dict(self._items)
        return new

    def union(self, other: Iterable[T]) -> "OrderedSet":
        new = self.copy()
        new.update(other)
        return new

    def intersection(self, other: Iterable[T]) -> "OrderedSet":
        other_set = other if isinstance(other, (set, frozenset, OrderedSet)) else set(other)
        return OrderedSet(item for item in self._items if item in other_set)

    def difference(self, other: Iterable[T]) -> "OrderedSet":
        other_set = other if isinstance(other, (set, frozenset, OrderedSet)) else set(other)
        return OrderedSet(item for item in self._items if item not in other_set)

    def isdisjoint(self, other: Iterable[T]) -> bool:
        other_set = other if isinstance(other, (set, frozenset, OrderedSet)) else set(other)
        return all(item not in other_set for item in self._items)

    def issubset(self, other: Iterable[T]) -> bool:
        other_set = other if isinstance(other, (set, frozenset, OrderedSet)) else set(other)
        return all(item in other_set for item in self._items)

    # -- operators ----------------------------------------------------------
    def __or__(self, other: "OrderedSet") -> "OrderedSet":
        return self.union(other)

    def __and__(self, other: "OrderedSet") -> "OrderedSet":
        return self.intersection(other)

    def __sub__(self, other: "OrderedSet") -> "OrderedSet":
        return self.difference(other)

    # -- memory accounting ---------------------------------------------------
    def footprint_bytes(self) -> int:
        """Idealised footprint of this set stored as an ordered array of words.

        Used by the Figure 7 memory model: one machine word (8 bytes) per
        element, matching the paper's "counting the size of each set".
        """
        return 8 * len(self._items)
