"""Live-range intersection tests.

The paper (§IV-A) surveys three ways to answer "do the live ranges of two SSA
variables intersect?".  All of them reduce, thanks to the dominance property,
to the check of Budimlić et al.: *the variable whose definition dominates the
definition of the other intersects it iff it is live at that second definition
point*.  The :class:`IntersectionOracle` implements exactly that on top of any
:class:`~repro.liveness.base.LivenessOracle` (data-flow sets or liveness
checking), so that every engine configuration of Figure 6 shares one code
path and differs only in the oracle it plugs in.
"""

from __future__ import annotations

from typing import Optional

from repro.cfg.dominance import DominatorTree
from repro.ir.function import Function
from repro.ir.instructions import Variable
from repro.liveness.base import LivenessOracle
from repro.liveness.dataflow import LivenessSets


class IntersectionOracle:
    """Dominance-based live-range intersection test with query counting."""

    def __init__(
        self,
        function: Function,
        liveness: LivenessOracle,
        domtree: Optional[DominatorTree] = None,
    ) -> None:
        self.function = function
        self.liveness = liveness
        self.domtree = domtree or DominatorTree(function)
        self.query_count = 0
        # Definition points are fixed for the lifetime of the oracle (the
        # function is only rewritten after coalescing), so the ≺ sort keys
        # can be cached; class merges re-sort members constantly.
        self._order_keys: dict = {}

    def intersect(self, a: Variable, b: Variable) -> bool:
        """Do the live ranges of ``a`` and ``b`` intersect?"""
        self.query_count += 1
        if a == b:
            return True
        def_a = self.liveness.definition_of(a)
        def_b = self.liveness.definition_of(b)
        if def_a is None or def_b is None:
            return False

        # In strict SSA two live ranges can only intersect if one definition
        # dominates the other (Budimlić et al.); check the dominated one.
        if def_a.dominates(def_b, self.domtree):
            if self.liveness.is_live_after(def_b.block, def_b.index, a):
                return True
        if def_b.dominates(def_a, self.domtree):
            if self.liveness.is_live_after(def_a.block, def_a.index, b):
                return True
        return False

    def dominance_order_key(self, var: Variable):
        """Sort key placing variables in dominance pre-order of their definitions.

        This is the order ≺ used to keep congruence classes sorted for the
        linear interference test (§IV-B).
        """
        key = self._order_keys.get(var)
        if key is None:
            def_point = self.liveness.definition_of(var)
            if def_point is None:
                key = (-1, -1, var.name)
            else:
                key = (
                    self.domtree.preorder_index(def_point.block),
                    def_point.index,
                    var.name,
                )
            self._order_keys[var] = key
        return key

    def dominates(self, a: Variable, b: Variable) -> bool:
        """Does the definition of ``a`` dominate the definition of ``b``?"""
        def_a = self.liveness.definition_of(a)
        def_b = self.liveness.definition_of(b)
        if def_a is None or def_b is None:
            return False
        return def_a.dominates(def_b, self.domtree)


def live_ranges_intersect(function: Function, a: Variable, b: Variable) -> bool:
    """Convenience one-shot intersection test (builds a data-flow oracle)."""
    liveness = LivenessSets(function)
    return IntersectionOracle(function, liveness).intersect(a, b)
