"""Live-range intersection tests.

The paper (§IV-A) surveys three ways to answer "do the live ranges of two SSA
variables intersect?".  All of them reduce, thanks to the dominance property,
to the check of Budimlić et al.: *the variable whose definition dominates the
definition of the other intersects it iff it is live at that second definition
point*.  The :class:`IntersectionOracle` implements exactly that on top of any
:class:`~repro.liveness.base.LivenessOracle` (data-flow sets or liveness
checking), so that every engine configuration of Figure 6 shares one code
path and differs only in the oracle it plugs in.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.cfg.dominance import DominatorTree
from repro.ir.function import Function
from repro.ir.instructions import Variable
from repro.liveness.base import LivenessOracle
from repro.liveness.dataflow import LivenessSets


class IntersectionOracle:
    """Dominance-based live-range intersection test with query counting."""

    def __init__(
        self,
        function: Function,
        liveness: LivenessOracle,
        domtree: Optional[DominatorTree] = None,
    ) -> None:
        self.function = function
        self.liveness = liveness
        self._domtree = domtree
        self.query_count = 0
        # Definition points are fixed for the lifetime of the oracle (the
        # function is only rewritten after coalescing), so the ≺ sort keys
        # are memoized: each variable's key is computed exactly once, no
        # matter how many congruence-class merges re-compare it
        # (``order_key_computations`` counts the misses; a regression test
        # pins it to the number of distinct variables).  Structural edits
        # drop the affected entries through :meth:`invalidate_keys`.
        self._order_keys: Dict[Variable, tuple] = {}
        #: Fresh ≺-key computations (cache misses); never decremented.
        self.order_key_computations = 0
        # Definition-dominance answers are similarly stable between edits and
        # are re-asked constantly by the congruence sweeps (every stack
        # pop/push tests the same few pairs); memoized per ordered pair.
        self._dominates_memo: Dict[Tuple[Variable, Variable], bool] = {}

    @property
    def domtree(self) -> DominatorTree:
        """The dominator tree, built lazily on first dominance-flavoured query.

        Pure intersection work over a bit-set liveness backend (e.g. the
        interference matrix scan under the ``intersect`` notion) never needs
        it, and on multi-thousand-block stress CFGs building it eagerly would
        dominate the oracle's construction cost.
        """
        if self._domtree is None:
            self._domtree = DominatorTree(self.function)
        return self._domtree

    def intersect(self, a: Variable, b: Variable) -> bool:
        """Do the live ranges of ``a`` and ``b`` intersect?"""
        self.query_count += 1
        if a == b:
            return True
        def_a = self.liveness.definition_of(a)
        def_b = self.liveness.definition_of(b)
        if def_a is None or def_b is None:
            return False

        # In strict SSA two live ranges can only intersect if one definition
        # dominates the other (Budimlić et al.); check the dominated one.
        domtree = self._domtree
        if domtree is None:
            domtree = self.domtree      # lazily built on first dominance use
        if def_a.dominates(def_b, domtree):
            if self.liveness.is_live_after(def_b.block, def_b.index, a):
                return True
        if def_b.dominates(def_a, domtree):
            if self.liveness.is_live_after(def_a.block, def_a.index, b):
                return True
        return False

    def dominance_order_key(self, var: Variable):
        """Sort key placing variables in dominance pre-order of their definitions.

        This is the order ≺ used to keep congruence classes sorted for the
        linear interference test (§IV-B).  Memoized: merges and re-sorts hit
        the cache, so each variable's definition point is located once.
        """
        key = self._order_keys.get(var)
        if key is None:
            self.order_key_computations += 1
            def_point = self.liveness.definition_of(var)
            if def_point is None:
                key = (-1, -1, var.name)
            else:
                key = (
                    self.domtree.preorder_index(def_point.block),
                    def_point.index,
                    var.name,
                )
            self._order_keys[var] = key
        return key

    def dominates(self, a: Variable, b: Variable) -> bool:
        """Does the definition of ``a`` dominate the definition of ``b``?"""
        memo_key = (a, b)
        cached = self._dominates_memo.get(memo_key)
        if cached is not None:
            return cached
        def_a = self.liveness.definition_of(a)
        def_b = self.liveness.definition_of(b)
        if def_a is None or def_b is None:
            answer = False
        else:
            answer = def_a.dominates(def_b, self.domtree)
        self._dominates_memo[memo_key] = answer
        return answer

    def invalidate_keys(self, variables=None) -> None:
        """Drop memoized ≺ keys (for ``variables``, or all when ``None``).

        Structural edits move definition points; the incremental backends
        call this with the edit log's affected set so the next
        :meth:`dominance_order_key` recomputes from the fresh positions.  The
        pair-keyed dominance memo cannot be filtered by one endpoint cheaply,
        so any invalidation clears it whole (it re-fills on demand).

        For edits that change the *CFG itself* (edge splits, new blocks) use
        :meth:`invalidate_structure` instead: the dominator tree and with it
        every variable's preorder key are stale, not just the affected ones.
        """
        if variables is None:
            self._order_keys.clear()
        else:
            for var in variables:
                self._order_keys.pop(var, None)
        self._dominates_memo.clear()

    def invalidate_structure(self) -> None:
        """Drop everything derived from the CFG shape: the lazily built
        dominator tree, every memoized ≺ key (their preorder components come
        from that tree) and the dominance memo.  Called by the incremental
        backends when an edit log records a split edge or a new block."""
        self._domtree = None
        self._order_keys.clear()
        self._dominates_memo.clear()


def live_ranges_intersect(function: Function, a: Variable, b: Variable) -> bool:
    """Convenience one-shot intersection test (builds a data-flow oracle)."""
    liveness = LivenessSets(function)
    return IntersectionOracle(function, liveness).intersect(a, b)
