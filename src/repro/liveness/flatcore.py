"""Flat-core bit-set liveness: the worklist transfer over int-indexed tables.

`FlatBitLiveness` / `FlatIncrementalBitLiveness` are drop-in subclasses of
the object-graph solvers that replace only the *cold solve*: instead of
walking `Function.blocks` through label-keyed dicts, `_solve` runs the same
backward transfer

    out(b)    = OR over successors s of (in(s) & ~phi_defs(s)) | phi_edge(b, s)
    new_in(b) = upward(b) | (out(b) & ~defs(b))

over the :class:`~repro.ir.flat.FlatFunction` arena — block ids are RPO
positions, successor/predecessor edges are CSR rows, the transfer masks are
list entries — so each worklist step is pure int indexing.  Seeding
disciplines match the base class exactly (``"rpo"``: post-order, i.e. ids
descending; ``"scc"``: condensation order over the arena's edge table,
trivial-component runs batched like the object solver), so
``solver_iterations`` and every live-in / live-out row are bit-for-bit
identical to the objects core — a property test diffs them.

After the int solve, every label-keyed field the base class exposes
(``_masks``, ``_phi_edge``, ``_bits_in``/``_bits_out``, the ``BitSet``
views, ``_rpo_position``, ``_components``) is populated in the same
iteration order the object solver uses, which keeps the *warm* path — the
inherited :meth:`IncrementalBitLiveness.apply_edits` — working untouched:
incremental patches are label-local and never re-run the cold solve.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from repro.ir.flat import FlatFunction
from repro.ir.function import Function
from repro.liveness.bitsets import BitLivenessSets
from repro.liveness.incremental import IncrementalBitLiveness
from repro.liveness.numbering import VariableNumbering
from repro.utils.bitset import BitSet


class _FlatSolveMixin:
    """Overrides ``_solve`` to run over a :class:`FlatFunction` arena.

    Must precede a :class:`BitLivenessSets` subclass in the MRO.  The arena
    can be shared through the ``flat=`` keyword (the analysis cache passes
    its generation-stamped instance); when absent or stale, one is lowered
    privately — the solver never mutates it.
    """

    def __init__(
        self,
        function: Function,
        numbering: Optional[VariableNumbering] = None,
        seed: Optional[str] = None,
        flat: Optional[FlatFunction] = None,
    ) -> None:
        self._flat = flat
        if seed is None:
            # Let each base class keep its own default ("rpo" for the cold
            # solver, "scc" for the incremental one).
            super().__init__(function, numbering=numbering)
        else:
            super().__init__(function, numbering=numbering, seed=seed)

    @property
    def flat(self) -> Optional[FlatFunction]:
        """The arena the cold solve ran over."""
        return self._flat

    # -- cold solve over the arena -------------------------------------------
    def _solve(self) -> None:
        function = self.function
        flat = self._flat
        if (
            flat is None
            or flat.function is not function
            or flat.numbering is not self.numbering
            or flat.generation != function.generation
        ):
            flat = self._flat = FlatFunction(function, self.numbering)
        num_blocks = len(flat.labels)
        ids = flat.ids
        live_in = [0] * num_blocks
        live_out = [0] * num_blocks

        # The label-keyed mirrors the base class (and its incremental warm
        # path) expose; built in the same declaration order `_solve` uses.
        self._masks = {
            label: (
                flat.defs_mask[ids[label]],
                flat.upward_mask[ids[label]],
                flat.phi_defs_mask[ids[label]],
            )
            for label in function.blocks
        }
        self._phi_edge = dict(flat.phi_edge)
        #: Block id == RPO position, by construction of the arena.
        self._rpo_position = dict(zip(flat.labels, range(num_blocks)))

        self._components = []
        self._component_of = {}
        if self.seed == "scc":
            components = flat.components()
            labels = flat.labels
            self._components = [
                [labels[member] for member in component] for component in components
            ]
            for index, component in enumerate(self._components):
                for label in component:
                    self._component_of[label] = index
            iterations = self._flat_scc_sweep(flat, live_in, live_out, components)
        else:
            iterations = self._flat_sweep(
                flat,
                live_in,
                live_out,
                deque(range(num_blocks - 1, -1, -1)),
                bytearray(b"\x01") * num_blocks,
                None,
            )
        self.solver_iterations += iterations

        self._universe = len(self.numbering)
        universe = self._universe
        from_bits = BitSet.from_bits
        bits_in: Dict[str, int] = {}
        bits_out: Dict[str, int] = {}
        view_in: Dict[str, BitSet] = {}
        view_out: Dict[str, BitSet] = {}
        for label in function.blocks:
            block_id = ids[label]
            row_in = live_in[block_id]
            row_out = live_out[block_id]
            bits_in[label] = row_in
            bits_out[label] = row_out
            view_in[label] = from_bits(universe, row_in)
            view_out[label] = from_bits(universe, row_out)
        self._bits_in = bits_in
        self._bits_out = bits_out
        self.live_in = view_in
        self.live_out = view_out

    @staticmethod
    def _flat_sweep(
        flat: FlatFunction,
        live_in: List[int],
        live_out: List[int],
        worklist: "deque[int]",
        queued: bytearray,
        members: Optional[bytearray],
    ) -> int:
        """One worklist fixpoint over int rows; returns block evaluations.

        The re-queue discipline mirrors ``BitLivenessSets._sweep``: when a
        block's live-in changes, its predecessors are queued unless already
        queued; with ``members`` set, re-queues outside the member region are
        dropped (the cold SCC discipline — every block is seeded by its own
        component pass).
        """
        succ_off = flat.succ_off
        succ_ids = flat.succ_ids
        edge_phi = flat.edge_phi
        pred_off = flat.pred_off
        pred_ids = flat.pred_ids
        defs_mask = flat.defs_mask
        upward_mask = flat.upward_mask
        phi_defs_mask = flat.phi_defs_mask
        iterations = 0
        popleft = worklist.popleft
        append = worklist.append
        while worklist:
            block = popleft()
            queued[block] = 0
            iterations += 1
            out = 0
            for position in range(succ_off[block], succ_off[block + 1]):
                successor = succ_ids[position]
                out |= (live_in[successor] & ~phi_defs_mask[successor]) | edge_phi[
                    position
                ]
            live_out[block] = out
            new_in = upward_mask[block] | (out & ~defs_mask[block])
            if new_in != live_in[block]:
                live_in[block] = new_in
                for position in range(pred_off[block], pred_off[block + 1]):
                    predecessor = pred_ids[position]
                    if members is not None and not members[predecessor]:
                        continue
                    if not queued[predecessor]:
                        queued[predecessor] = 1
                        append(predecessor)
        return iterations

    def _flat_scc_sweep(
        self,
        flat: FlatFunction,
        live_in: List[int],
        live_out: List[int],
        components: List[List[int]],
    ) -> int:
        """Condensation discipline over the arena, matching the object solver
        evaluation-for-evaluation: components sinks-first, non-trivial ones
        seeded in post-order (ids descending — id == RPO position) and
        stabilised locally, runs of trivial components batched into a single
        pass in emission order."""
        num_blocks = len(flat.labels)
        members = bytearray(num_blocks)
        queued = bytearray(num_blocks)
        succ_off = flat.succ_off
        succ_ids = flat.succ_ids
        iterations = 0

        def run(seed_order: List[int]) -> None:
            nonlocal iterations
            for block in seed_order:
                members[block] = 1
                queued[block] = 1
            iterations += self._flat_sweep(
                flat, live_in, live_out, deque(seed_order), queued, members
            )
            for block in seed_order:
                members[block] = 0

        batch: List[int] = []
        for component in components:
            if len(component) == 1:
                block = component[0]
                for position in range(succ_off[block], succ_off[block + 1]):
                    if succ_ids[position] == block:
                        break
                else:
                    batch.append(block)
                    continue
            if batch:
                run(batch)
                batch = []
            run(sorted(component, reverse=True))
        if batch:
            run(batch)
        return iterations


class FlatBitLiveness(_FlatSolveMixin, BitLivenessSets):
    """`BitLivenessSets` with the cold solve on the flat arena (``--core flat``)."""


class FlatIncrementalBitLiveness(_FlatSolveMixin, IncrementalBitLiveness):
    """`IncrementalBitLiveness` with the cold solve on the flat arena.

    Warm re-solves (:meth:`apply_edits`) are inherited unchanged: they patch
    the label-keyed masks and rows in place, which this class keeps populated
    exactly as the object solver would.  The arena itself is *not* patched
    here — it is a cached analysis with its own `EditLog` hook
    (:meth:`FlatFunction.apply_edits`), invalidated and rebuilt by the cache
    when stale.
    """
