"""Incremental (delta-driven) bit-set liveness: patch, don't recompute.

The paper's efficiency story makes liveness the hottest shared analysis of
the whole out-of-SSA stack; its structural edits, however, are tiny and
local — a parallel copy materialises in a couple of blocks, a critical edge
is split, a congruence class is renamed to its representative.  Discarding
thousands of converged live-in / live-out rows because three blocks changed
is exactly the recomputation a JIT cannot afford.  This backend
(``liveness="incremental"``) keeps the rows of
:class:`~repro.liveness.bitsets.BitLivenessSets` alive across such edits: the
mutating passes describe what they did as an
:class:`~repro.ir.editlog.EditLog` and :meth:`IncrementalBitLiveness.apply_edits`
re-solves only the affected region.

Why the result is *bit-identical* to a cold solve of the edited function:

1. Liveness decomposes per variable: rows restricted to variables that no
   edit mentions are a valid (least) fixpoint of the edited program too,
   because — by the :class:`~repro.ir.editlog.EditLog` contract — every block
   whose instructions changed is logged as touched, so the cached def/use
   masks of every other block are still exact, and edits preserve the
   relative order of untouched instructions.
2. For the *affected* variables the solver restarts from zero: their bits are
   cleared from every row (one linear masking pass), the per-block masks of
   touched blocks are rebuilt, and the worklist is seeded with every place
   their liveness can originate — touched blocks plus each block that
   upward-exposes or φ-uses an affected variable.  Iterating the ordinary
   backward transfer from that seed grows the affected bits to their least
   fixpoint, while every evaluation of an unaffected bit reproduces the value
   it already has.

Starting from the *stale* rows instead (the tempting shortcut) is unsound:
liveness spuriously sustained around a loop is itself a fixpoint of the
transfer functions, so a worklist alone can never shrink it.  Clearing the
affected bits first is what makes deletion-type edits (renames that erase
copies) exact, not just additions.

The cold solve uses the SCC condensation discipline of
:mod:`repro.cfg.scc`; derived program-point queries (``is_live_after`` and
friends) re-index their position maps lazily after an edit batch, so
``apply_edits`` itself stays proportional to the affected region, not to the
function.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Optional

from repro.ir.editlog import BLOCK_SPLIT, EditLog
from repro.ir.function import Function
from repro.ir.instructions import Variable
from repro.liveness.bitsets import BitLivenessSets
from repro.liveness.numbering import VariableNumbering
from repro.utils.bitset import BitSet


@dataclass
class ResolveDelta:
    """What one :meth:`IncrementalBitLiveness.apply_edits` call did."""

    edits: int                 #: entries in the applied log
    affected_variables: int    #: variables whose bits were re-solved
    seeded_blocks: int         #: blocks the worklist was re-seeded with
    iterations: int            #: block evaluations until the new fixpoint
    rows_changed: int          #: live-in/live-out rows whose bits changed


class IncrementalBitLiveness(BitLivenessSets):
    """Bit-set liveness rows kept valid across logged structural edits."""

    category = "liveness_incremental"

    def __init__(
        self,
        function: Function,
        numbering: Optional[VariableNumbering] = None,
        seed: str = "scc",
    ) -> None:
        self._positions_stale = False
        super().__init__(function, numbering=numbering, seed=seed)
        #: Number of :meth:`apply_edits` re-solves served from patched rows.
        self.resolve_count = 0
        self.last_delta: Optional[ResolveDelta] = None
        #: Labels whose rows the last :meth:`apply_edits` visited or cleared —
        #: a superset of every row whose bits changed.  Incremental consumers
        #: of the *same* edit log (the interference matrix) use it to bound
        #: their own dirty regions: facts outside these blocks involving
        #: grow-only variables are guaranteed unchanged.
        self.last_dirty_rows: set = set()

    # -- incremental re-solve --------------------------------------------------
    def apply_edits(self, log: EditLog) -> ResolveDelta:
        """Re-solve only the region an edit log dirtied; rows end up
        bit-identical to a cold solve of the (edited) function."""
        blocks = self.function.blocks
        if not log:
            delta = ResolveDelta(0, 0, 0, 0, 0)
            self.last_delta = delta
            self.last_dirty_rows = set()
            return delta

        touched = {label for label in log.touched_blocks() if label in blocks}
        affected = log.affected_variables()
        old_universe = self._universe
        ensure = self.numbering.ensure
        for var in affected:
            ensure(var)
        # Only variables that may have *lost* an occurrence (or gained a kill
        # point) restart from zero; grow-only variables keep their bits and
        # reach the new fixpoint monotonically from the touched use sites.
        # Bits a brand-new variable never had need no clearing either, so the
        # mask is further restricted to the pre-edit universe — for a pure
        # insertion batch (φ-isolation) it vanishes entirely and with it both
        # function-wide passes below.
        cleared_mask = 0
        for var in log.removed_variables():
            cleared_mask |= 1 << ensure(var)
        cleared_mask &= (1 << old_universe) - 1

        # Rebuild the summaries of every block whose instructions changed;
        # all other cached masks are still exact (EditLog contract).
        for label in touched:
            self._masks[label] = self._block_masks(label)
        if self._phi_edge:
            self._phi_edge = {
                key: mask for key, mask in self._phi_edge.items() if key[1] not in touched
            }
        for label in touched:
            for phi in blocks[label].phis:
                for pred, arg in phi.args.items():
                    if isinstance(arg, Variable):
                        key = (pred, label)
                        self._phi_edge[key] = self._phi_edge.get(key, 0) | 1 << ensure(arg)

        # The raw rows are patched in place; ``dirty_rows`` tracks every label
        # whose BitSet view may need rebuilding.  Cleared bits restart from
        # zero (see the module docstring: stale bits around a loop would
        # otherwise survive deletion-type edits); new blocks start empty.
        bits_in = self._bits_in
        bits_out = self._bits_out
        dirty_rows = set(touched)
        for label in log.new_blocks:
            if label in blocks:
                bits_in.setdefault(label, 0)
                bits_out.setdefault(label, 0)
        seeds = set(touched)
        if cleared_mask:
            keep = ~cleared_mask
            for label, bits in bits_in.items():
                if bits & cleared_mask:
                    bits_in[label] = bits & keep
                    dirty_rows.add(label)
            for label, bits in bits_out.items():
                if bits & cleared_mask:
                    bits_out[label] = bits & keep
                    dirty_rows.add(label)
            # Seed everywhere a cleared variable's liveness can originate
            # (its surviving use sites) — touched blocks already host every
            # *new* occurrence of the grow-only variables (EditLog contract),
            # so those need no function-wide scan.
            get_mask = self._masks.get
            for label in blocks:
                mask = get_mask(label)
                if mask is None:
                    mask = self._masks[label] = self._block_masks(label)
                if mask[1] & cleared_mask:
                    seeds.add(label)
            for (pred, _succ), mask in self._phi_edge.items():
                if mask & cleared_mask and pred in blocks:
                    seeds.add(pred)

        before_iterations = self.solver_iterations
        self._resweep(bits_in, bits_out, seeds, log, processed=dirty_rows)

        # Rebuild the BitSet views of the rows the patch visited or cleared;
        # every other view is untouched and stays valid.
        self._universe = universe = len(self.numbering)
        rows_changed = 0
        for view, raw in ((self.live_in, bits_in), (self.live_out, bits_out)):
            for label in dirty_rows:
                if label not in blocks:
                    continue
                bits = raw[label]
                row = view.get(label)
                if row is not None and row.bits == bits:
                    row.grow(universe)
                else:
                    view[label] = BitSet.from_bits(universe, bits)
                    rows_changed += 1
        if len(self.live_in) != len(blocks):
            for mapping in (self.live_in, self.live_out, bits_in, bits_out):
                for label in list(mapping):
                    if label not in blocks:
                        del mapping[label]
        # Untouched views must track the grown universe too: BitSet equality
        # is universe-sensitive and footprint_bytes() sums ceil(universe/8)
        # per row — mixed universes would silently break both.
        if universe > old_universe:
            for view in (self.live_in, self.live_out):
                for row in view.values():
                    row.grow(universe)

        self._positions_stale = True
        self.resolve_count += 1
        self.last_dirty_rows = {label for label in dirty_rows if label in blocks}
        delta = ResolveDelta(
            edits=len(log),
            affected_variables=len(affected),
            seeded_blocks=len(seeds),
            iterations=self.solver_iterations - before_iterations,
            rows_changed=rows_changed,
        )
        self.last_delta = delta
        return delta

    def _resweep(self, live_in, live_out, seeds, log: EditLog, processed=None) -> None:
        """Drive the dirty region to its fixpoint, condensation-first.

        Dirty blocks are grouped by the strongly connected component the cold
        solve recorded; components are stabilised sinks-first (ascending
        component index), with re-queues that cross a component boundary
        spilled into that component's pending set instead of interleaving.
        The outer loop always takes the lowest pending index, so a rare
        backward spill (a mis-assigned new block) costs an extra local sweep,
        never correctness.  Without a recorded SCC structure (an RPO-seeded
        cold solve) the region is solved with one flat worklist.
        """
        position = self._rpo_position
        fallback = len(position)

        def local_order(block_set):
            return sorted(
                block_set, key=lambda label: (-position.get(label, fallback), label)
            )

        component_of = self._component_of
        if not component_of:
            order = local_order(seeds)
            self._sweep(live_in, live_out, deque(order), set(order), processed=processed)
            return

        # Blocks created by the edits sit on a split edge; they belong with
        # their split target's (equivalently: the edge's sink) component.
        assigned: Dict[str, int] = {}
        for edit in log:
            if edit.kind == BLOCK_SPLIT and len(edit.blocks) == 3:
                source, new_label, target = edit.blocks
                assigned[new_label] = component_of.get(
                    target, component_of.get(source, 0)
                )

        def component_index(label: str) -> int:
            index = component_of.get(label)
            if index is None:
                index = assigned.get(label, 0)
            return index

        pending: Dict[int, set] = {}
        for label in seeds:
            pending.setdefault(component_index(label), set()).add(label)
        extra_members: Dict[int, set] = {}
        for label, index in assigned.items():
            extra_members.setdefault(index, set()).add(label)

        while pending:
            index = min(pending)
            block_set = pending.pop(index)
            members = set(self._components[index]) if index < len(self._components) else set()
            members |= extra_members.get(index, set())
            members |= block_set
            order = local_order(block_set)
            spill: list = []
            self._sweep(
                live_in, live_out, deque(order), set(order), members, spill, processed
            )
            for label in spill:
                pending.setdefault(component_index(label), set()).add(label)

    # -- lazily refreshed program-point queries --------------------------------
    def _ensure_positions(self) -> None:
        if self._positions_stale:
            self._positions_stale = False
            self._index_positions()

    def definition_of(self, var):
        self._ensure_positions()
        return super().definition_of(var)

    def is_used_after(self, block_label: str, index: int, var: Variable) -> bool:
        self._ensure_positions()
        return super().is_used_after(block_label, index, var)

    def is_live_after(self, block_label: str, index: int, var: Variable) -> bool:
        self._ensure_positions()
        return super().is_live_after(block_label, index, var)

    def is_live_at_definition(self, var: Variable, of: Variable) -> bool:
        self._ensure_positions()
        return super().is_live_at_definition(var, of)
