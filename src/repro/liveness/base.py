"""Shared query interface of the liveness oracles.

The only block-level facts an oracle must provide are ``is_live_in`` and
``is_live_out``; every finer-grained query (live after a given program point,
live at a definition) is derived here from the definition/use position maps,
which both oracles share.

Conventions (see :mod:`repro.ir.positions`):

* φ-function arguments are uses *on the edge* from the corresponding
  predecessor — they make the argument live-out of the predecessor, not
  live-in of the φ's block;
* φ-function results are defined at index 0 of their block — they are not
  live-in of that block;
* function parameters are defined at the virtual index ``-1`` of the entry
  block.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.function import Function
from repro.ir.instructions import Variable
from repro.ir.positions import ProgramPoint, definition_points, use_points


class LivenessOracle:
    """Base class: block-level liveness plus derived program-point queries."""

    def __init__(self, function: Function) -> None:
        self.function = function
        self._index_positions()

    def _index_positions(self) -> None:
        """(Re)build the definition/use position maps from the function.

        Called at construction; incremental oracles call it again after the
        function was edited underneath them (see
        :class:`~repro.liveness.incremental.IncrementalBitLiveness`).
        """
        function = self.function
        self.def_points: Dict[Variable, ProgramPoint] = definition_points(function)
        self.use_points: Dict[Variable, List[ProgramPoint]] = use_points(function)
        # Per-variable, per-block index of the latest use (for "used after"
        # queries without re-scanning blocks).
        self._last_use_index: Dict[Tuple[Variable, str], int] = {}
        for var, points in self.use_points.items():
            for point in points:
                key = (var, point.block)
                previous = self._last_use_index.get(key, -1)
                if point.index > previous:
                    self._last_use_index[key] = point.index

    # -- to be provided by concrete oracles --------------------------------------
    def is_live_in(self, block_label: str, var: Variable) -> bool:
        raise NotImplementedError

    def is_live_out(self, block_label: str, var: Variable) -> bool:
        raise NotImplementedError

    # -- derived queries -----------------------------------------------------------
    def definition_of(self, var: Variable) -> Optional[ProgramPoint]:
        return self.def_points.get(var)

    def is_used_after(self, block_label: str, index: int, var: Variable) -> bool:
        """Is there a use of ``var`` in ``block_label`` strictly after ``index``?"""
        last = self._last_use_index.get((var, block_label))
        return last is not None and last > index

    def is_live_after(self, block_label: str, index: int, var: Variable) -> bool:
        """Is ``var`` live immediately *after* the instruction at ``index``?

        ``var`` is live there iff it is used later in the block, or is
        live-out of the block — unless its unique definition appears later in
        the same block (then its live range has not started yet).
        """
        def_point = self.def_points.get(var)
        if def_point is not None and def_point.block == block_label and def_point.index > index:
            return False
        if self.is_used_after(block_label, index, var):
            return True
        return self.is_live_out(block_label, var)

    def is_live_at_definition(self, var: Variable, of: Variable) -> bool:
        """Is ``var`` live just after the definition point of ``of``?

        This is the building block of every interference test in the paper:
        ``a`` and ``b`` intersect iff one is live at the definition of the
        other.  Variables defined by the same parallel copy / φ-group are
        simultaneously live right after it, which this query captures.
        """
        def_point = self.def_points.get(of)
        if def_point is None:
            return False
        return self.is_live_after(def_point.block, def_point.index, var)

    # -- footprint accounting (overridden where meaningful) -------------------------
    def footprint_bytes(self) -> int:
        """Idealised byte footprint of the oracle's long-lived structures."""
        return 0
