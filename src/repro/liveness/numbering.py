"""Dense variable numbering shared by the bit-encoded analyses.

Both the bit-set liveness backend (:mod:`repro.liveness.bitsets`) and the half
bit-matrix interference graph (:mod:`repro.interference.graph`) need to map
variables to small dense integer indices so that set membership becomes a bit
test.  This module numbers the variables of a function *once* and keeps the
mapping stable while new variables (virtualized copies, sequentialization
temporaries) are appended on the fly — exactly the growth discipline of the
paper's Method III structures.

>>> from repro.ir.instructions import Variable
>>> from repro.liveness.numbering import VariableNumbering
>>> a, b, c = Variable("a"), Variable("b"), Variable("c")
>>> numbering = VariableNumbering([a, b])
>>> numbering.ensure(a), numbering.ensure(b)    # stable, first-come order
(0, 1)
>>> numbering.ensure(c)                          # appended, never renumbered
2
>>> numbering.variable(1), numbering.get(Variable("ghost"))
(Variable('b'), None)
>>> len(numbering), list(numbering) == [a, b, c]
(3, True)

Sharing one instance is what keeps different bit-encoded analyses index
compatible: :class:`~repro.liveness.bitsets.BitLivenessSets` and the
interference :class:`~repro.interference.graph.InterferenceGraph` both
request it from the :class:`~repro.pipeline.analysis.AnalysisCache`, so bit
``i`` means the same variable in a liveness row and in a matrix row.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from repro.ir.function import Function
from repro.ir.instructions import Variable


class VariableNumbering:
    """A stable bijection ``variable <-> dense index`` (append-only)."""

    __slots__ = ("_index", "_items")

    def __init__(self, items: Iterable[Variable] = ()) -> None:
        self._index: Dict[Variable, int] = {}
        self._items: List[Variable] = []
        for item in items:
            self.ensure(item)

    @classmethod
    def of_function(cls, function: Function) -> "VariableNumbering":
        """Number every variable of ``function`` in its deterministic
        definition/use discovery order (parameters first)."""
        return cls(function.variables())

    # -- mapping -------------------------------------------------------------
    def ensure(self, item: Variable) -> int:
        """Return ``item``'s index, assigning the next free one if new."""
        index = self._index.get(item)
        if index is None:
            index = len(self._items)
            self._index[item] = index
            self._items.append(item)
        return index

    def get(self, item: Variable) -> Optional[int]:
        """``item``'s index, or ``None`` if it was never numbered."""
        return self._index.get(item)

    def index_of(self, item: Variable) -> int:
        """``item``'s index; raises :class:`KeyError` for unnumbered items."""
        return self._index[item]

    def variable(self, index: int) -> Variable:
        """The variable numbered ``index``."""
        return self._items[index]

    # -- container protocol --------------------------------------------------
    def __contains__(self, item: Variable) -> bool:
        return item in self._index

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._items)

    def __repr__(self) -> str:
        return f"VariableNumbering({len(self._items)} variables)"
