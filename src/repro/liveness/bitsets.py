"""Bit-set backed liveness: the paper's cheap live-in / live-out encoding.

This is the second data-flow liveness backend (selected with
``liveness="bitsets"``): semantically identical to
:class:`~repro.liveness.dataflow.LivenessSets`, but variables are numbered
once (:class:`~repro.liveness.numbering.VariableNumbering`, shared with the
interference bit-matrix) and every live-in / live-out set is a
:class:`~repro.utils.bitset.BitSet` row, so the footprint is the closed-form
``ceil(#variables / 8) * #basicblocks * 2`` that Figure 7 evaluates — here it
is also *measured*, through the allocation tracker.

The fixpoint is solved with a worklist seeded in reverse post-order (the
orders come from :mod:`repro.cfg.traversal`): blocks are first processed in
post-order — the fastest direction for a backward problem — and a block is
re-queued only when the live-in set of one of its successors actually grows,
instead of re-sweeping the whole function round-robin as the ordered-set
backend does.

The φ conventions are those of :mod:`repro.liveness.base`: φ-arguments are
uses on the incoming edge (live-out of the predecessor they flow from, not
live-in of the φ's block) and φ-results are defined at the top of their block.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Optional, Tuple

from repro.cfg.traversal import reverse_postorder
from repro.ir.function import Function
from repro.ir.instructions import Variable
from repro.liveness.base import LivenessOracle
from repro.liveness.numbering import VariableNumbering
from repro.utils.bitset import BitSet
from repro.utils.instrument import record_allocation


class BitLivenessSets(LivenessOracle):
    """Live-in / live-out per block as bit-set rows over numbered variables."""

    #: Allocation-tracker category of the long-lived rows (Figure 7 bars).
    category = "liveness_bitsets"

    def __init__(
        self, function: Function, numbering: Optional[VariableNumbering] = None
    ) -> None:
        """``numbering`` lets one dense numbering be shared with the
        interference bit-matrix (the ROADMAP follow-up): when given, the
        function's variables are appended to it instead of numbering them into
        a private instance."""
        super().__init__(function)
        if numbering is None:
            numbering = VariableNumbering.of_function(function)
        else:
            for var in function.variables():
                numbering.ensure(var)
        self.numbering = numbering
        self._universe = len(self.numbering)
        self.live_in: Dict[str, BitSet] = {}
        self.live_out: Dict[str, BitSet] = {}
        self._solve()
        self._record_footprint()

    # -- data-flow computation ------------------------------------------------
    def _block_masks(self, block_label: str) -> Tuple[int, int, int]:
        """(defs, upward-exposed uses, φ-defs) of a block, as bit masks."""
        block = self.function.blocks[block_label]
        ensure = self.numbering.ensure
        defs = 0
        upward = 0
        for instruction in block.instructions(include_phis=False):
            for var in instruction.uses():
                bit = 1 << ensure(var)
                if not defs & bit:
                    upward |= bit
            for var in instruction.defs():
                defs |= 1 << ensure(var)
        phi_defs = 0
        for phi in block.phis:
            phi_defs |= 1 << ensure(phi.dst)
        return defs | phi_defs, upward & ~phi_defs, phi_defs

    def _phi_edge_masks(self) -> Dict[Tuple[str, str], int]:
        """Mask of variables read by φs of ``succ`` on each ``pred -> succ`` edge."""
        ensure = self.numbering.ensure
        masks: Dict[Tuple[str, str], int] = {}
        for label, block in self.function.blocks.items():
            for phi in block.phis:
                for pred, arg in phi.args.items():
                    if isinstance(arg, Variable):
                        key = (pred, label)
                        masks[key] = masks.get(key, 0) | 1 << ensure(arg)
        return masks

    def _solve(self) -> None:
        function = self.function
        labels = list(function.blocks)
        masks = {label: self._block_masks(label) for label in labels}
        phi_edge = self._phi_edge_masks()

        # Reverse post-order first, then any unreachable blocks (the ordered
        # backend computes liveness for them too, and exact equality with it
        # is a tested invariant).
        order = reverse_postorder(function)
        reached = set(order)
        order += [label for label in labels if label not in reached]

        live_in = {label: 0 for label in labels}
        live_out = {label: 0 for label in labels}
        successors = function.successors
        predecessors = function.predecessors

        # Backward problem: seed the worklist with the blocks in post-order
        # (last block of the RPO first) so most information flows in one pass.
        worklist = deque(reversed(order))
        queued = set(worklist)
        while worklist:
            label = worklist.popleft()
            queued.discard(label)
            out = 0
            for successor in successors(label):
                _defs, _upward, succ_phi_defs = masks[successor]
                out |= live_in[successor] & ~succ_phi_defs
                out |= phi_edge.get((label, successor), 0)
            live_out[label] = out
            defs, upward, _phi_defs = masks[label]
            new_in = upward | (out & ~defs)
            if new_in != live_in[label]:
                live_in[label] = new_in
                for predecessor in predecessors(label):
                    if predecessor not in queued:
                        queued.add(predecessor)
                        worklist.append(predecessor)

        # The numbering may have grown while scanning (defensive: variables()
        # already covers every def and use).
        self._universe = len(self.numbering)
        self.live_in = {
            label: BitSet.from_bits(self._universe, live_in[label]) for label in labels
        }
        self.live_out = {
            label: BitSet.from_bits(self._universe, live_out[label]) for label in labels
        }

    def _record_footprint(self) -> None:
        record_allocation(self.category, self.footprint_bytes())

    # -- oracle interface -----------------------------------------------------
    def is_live_in(self, block_label: str, var: Variable) -> bool:
        index = self.numbering.get(var)
        return index is not None and index in self.live_in[block_label]

    def is_live_out(self, block_label: str, var: Variable) -> bool:
        index = self.numbering.get(var)
        return index is not None and index in self.live_out[block_label]

    def live_in_variables(self, block_label: str) -> Iterator[Variable]:
        """The live-in variables of a block (decoded from the bit row)."""
        variable = self.numbering.variable
        return (variable(index) for index in self.live_in[block_label])

    def live_out_variables(self, block_label: str) -> Iterator[Variable]:
        """The live-out variables of a block (decoded from the bit row)."""
        variable = self.numbering.variable
        return (variable(index) for index in self.live_out[block_label])

    # -- maintenance hooks ----------------------------------------------------
    def _index_for(self, var: Variable) -> int:
        """Index of ``var``, growing the universe (and every row) if new."""
        index = self.numbering.ensure(var)
        if index >= self._universe:
            self._universe = len(self.numbering)
            for row in self.live_in.values():
                row.grow(self._universe)
            for row in self.live_out.values():
                row.grow(self._universe)
        return index

    def add_live_through(self, block_label: str, var: Variable) -> None:
        """Record that ``var`` is now live across ``block_label`` (incremental update)."""
        index = self._index_for(var)
        self.live_in[block_label].add(index)
        self.live_out[block_label].add(index)

    def add_live_out(self, block_label: str, var: Variable) -> None:
        self.live_out[block_label].add(self._index_for(var))

    def add_live_in(self, block_label: str, var: Variable) -> None:
        self.live_in[block_label].add(self._index_for(var))

    # -- memory accounting ----------------------------------------------------
    def footprint_bytes(self) -> int:
        """Measured footprint of the rows: ``ceil(universe/8)`` bytes each,
        two rows per block — the quantity Figure 7's bit-set formula
        evaluates, here actually allocated."""
        return sum(row.footprint_bytes() for row in self.live_in.values()) + sum(
            row.footprint_bytes() for row in self.live_out.values()
        )

    def evaluated_bitset_footprint(self, num_variables: int) -> int:
        """The paper's closed-form estimate ``ceil(#vars/8) * #blocks * 2``."""
        return ((num_variables + 7) // 8) * len(self.function.blocks) * 2
