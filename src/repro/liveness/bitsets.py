"""Bit-set backed liveness: the paper's cheap live-in / live-out encoding.

This is the second data-flow liveness backend (selected with
``liveness="bitsets"``): semantically identical to
:class:`~repro.liveness.dataflow.LivenessSets`, but variables are numbered
once (:class:`~repro.liveness.numbering.VariableNumbering`, shared with the
interference bit-matrix) and every live-in / live-out set is a
:class:`~repro.utils.bitset.BitSet` row, so the footprint is the closed-form
``ceil(#variables / 8) * #basicblocks * 2`` that Figure 7 evaluates — here it
is also *measured*, through the allocation tracker.

The fixpoint is solved with a worklist; a block is re-queued only when the
live-in set of one of its successors actually changes, instead of re-sweeping
the whole function round-robin as the ordered-set backend does.  Two seeding
disciplines are available (``seed=``):

* ``"rpo"`` (default) — the worklist starts in post-order (the orders come
  from :mod:`repro.cfg.traversal`), the fastest single-sweep direction for a
  backward problem;
* ``"scc"`` — condensation order (:mod:`repro.cfg.scc`): strongly connected
  components are processed sinks-first and each is stabilised *locally*
  before any earlier component is looked at.  On deeply nested loops this
  avoids re-sweeping outer regions while an inner loop is still converging;
  ``solver_iterations`` counts block evaluations so the two disciplines can
  be compared (the stress benchmark and a property test do).

The φ conventions are those of :mod:`repro.liveness.base`: φ-arguments are
uses on the incoming edge (live-out of the predecessor they flow from, not
live-in of the φ's block) and φ-results are defined at the top of their block.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.cfg.scc import strongly_connected_components
from repro.cfg.traversal import reverse_postorder
from repro.ir.function import Function
from repro.ir.instructions import Variable
from repro.liveness.base import LivenessOracle
from repro.liveness.numbering import VariableNumbering
from repro.utils.bitset import BitSet
from repro.utils.instrument import record_allocation


class BitLivenessSets(LivenessOracle):
    """Live-in / live-out per block as bit-set rows over numbered variables."""

    #: Allocation-tracker category of the long-lived rows (Figure 7 bars).
    category = "liveness_bitsets"

    #: Recognised worklist seeding disciplines.
    SEED_ORDERS = ("rpo", "scc")

    def __init__(
        self,
        function: Function,
        numbering: Optional[VariableNumbering] = None,
        seed: str = "rpo",
    ) -> None:
        """``numbering`` lets one dense numbering be shared with the
        interference bit-matrix (the ROADMAP follow-up): when given, the
        function's variables are appended to it instead of numbering them into
        a private instance.  ``seed`` picks the worklist seeding discipline
        (``"rpo"`` or ``"scc"``, see the module docstring)."""
        super().__init__(function)
        if seed not in self.SEED_ORDERS:
            raise ValueError(
                f"unknown seed order {seed!r}; known orders: {', '.join(self.SEED_ORDERS)}"
            )
        if numbering is None:
            numbering = VariableNumbering.of_function(function)
        else:
            for var in function.variables():
                numbering.ensure(var)
        self.numbering = numbering
        self.seed = seed
        self._universe = len(self.numbering)
        self.live_in: Dict[str, BitSet] = {}
        self.live_out: Dict[str, BitSet] = {}
        #: Authoritative raw rows (int masks); ``live_in``/``live_out`` are
        #: :class:`BitSet` views over them, rebuilt per-row when they change.
        self._bits_in: Dict[str, int] = {}
        self._bits_out: Dict[str, int] = {}
        #: Cached per-block (defs, upward-exposed, φ-defs) masks and φ-edge
        #: masks; the incremental subclass patches these instead of rebuilding.
        self._masks: Dict[str, Tuple[int, int, int]] = {}
        self._phi_edge: Dict[Tuple[str, str], int] = {}
        #: SCC structure of the cold solve (``seed="scc"`` only; empty for
        #: RPO): incremental re-solves reuse it to process dirty regions in
        #: the same condensation discipline.
        self._components: List[List[str]] = []
        self._component_of: Dict[str, int] = {}
        #: Number of block evaluations the worklist performed (monotonically
        #: accumulated across re-solves).
        self.solver_iterations = 0
        self._solve()
        self._record_footprint()

    # -- data-flow computation ------------------------------------------------
    def _block_masks(self, block_label: str) -> Tuple[int, int, int]:
        """(defs, upward-exposed uses, φ-defs) of a block, as bit masks."""
        block = self.function.blocks[block_label]
        ensure = self.numbering.ensure
        defs = 0
        upward = 0
        for instruction in block.instructions(include_phis=False):
            for var in instruction.uses():
                bit = 1 << ensure(var)
                if not defs & bit:
                    upward |= bit
            for var in instruction.defs():
                defs |= 1 << ensure(var)
        phi_defs = 0
        for phi in block.phis:
            phi_defs |= 1 << ensure(phi.dst)
        return defs | phi_defs, upward & ~phi_defs, phi_defs

    def _phi_edge_masks(self) -> Dict[Tuple[str, str], int]:
        """Mask of variables read by φs of ``succ`` on each ``pred -> succ`` edge."""
        ensure = self.numbering.ensure
        masks: Dict[Tuple[str, str], int] = {}
        for label, block in self.function.blocks.items():
            for phi in block.phis:
                for pred, arg in phi.args.items():
                    if isinstance(arg, Variable):
                        key = (pred, label)
                        masks[key] = masks.get(key, 0) | 1 << ensure(arg)
        return masks

    def _sweep(
        self,
        live_in: Dict[str, int],
        live_out: Dict[str, int],
        worklist: "deque[str]",
        queued: Set[str],
        members: Optional[Set[str]] = None,
        spill: Optional[List[str]] = None,
        processed: Optional[Set[str]] = None,
    ) -> None:
        """Run the backward transfer to a fixpoint over raw int masks.

        ``members`` restricts re-queuing to a block subset: the SCC discipline
        stabilises one component at a time.  In a cold solve the re-queues
        falling outside are simply dropped (every block is seeded in its own
        component pass anyway); an incremental re-solve seeds only dirty
        blocks, so it passes ``spill`` to collect the out-of-component
        re-queues and distribute them to their own components' pending sets.
        """
        masks = self._masks
        phi_edge = self._phi_edge
        successors = self.function.successors
        predecessors = self.function.predecessors
        iterations = 0
        while worklist:
            label = worklist.popleft()
            queued.discard(label)
            iterations += 1
            if processed is not None:
                processed.add(label)
            out = 0
            for successor in successors(label):
                out |= live_in[successor] & ~masks[successor][2]
                out |= phi_edge.get((label, successor), 0)
            live_out[label] = out
            defs, upward, _phi_defs = masks[label]
            new_in = upward | (out & ~defs)
            if new_in != live_in[label]:
                live_in[label] = new_in
                for predecessor in predecessors(label):
                    if members is not None and predecessor not in members:
                        if spill is not None:
                            spill.append(predecessor)
                        continue
                    if predecessor not in queued:
                        queued.add(predecessor)
                        worklist.append(predecessor)
        self.solver_iterations += iterations

    def _rpo_positions(self) -> Dict[str, int]:
        """Reverse post-order position of every block; unreachable blocks are
        appended after the reachable ones, in declaration order (the ordered
        backend computes liveness for them too, and exact equality with it is
        a tested invariant)."""
        order = reverse_postorder(self.function)
        reached = set(order)
        order += [label for label in self.function.blocks if label not in reached]
        return {label: position for position, label in enumerate(order)}

    def _solve(self) -> None:
        function = self.function
        labels = list(function.blocks)
        self._masks = {label: self._block_masks(label) for label in labels}
        self._phi_edge = self._phi_edge_masks()

        live_in = {label: 0 for label in labels}
        live_out = {label: 0 for label in labels}
        #: Kept for incremental re-solves: a deterministic seeding order that
        #: does not require re-traversing the (possibly edited) CFG.
        self._rpo_position = rpo_position = self._rpo_positions()
        by_rpo = sorted(labels, key=rpo_position.__getitem__)

        self._components = []
        self._component_of = {}
        if self.seed == "scc":
            # Condensation discipline: components arrive sinks-first (reverse
            # topological order), each is seeded in post-order and stabilised
            # locally.  Re-queues can only target the current component or a
            # later one, so one pass over the components reaches the global
            # fixpoint with no outer re-sweep.  The component structure is
            # kept: incremental re-solves process their dirty regions in the
            # same discipline.
            self._components = strongly_connected_components(function)
            for index, component in enumerate(self._components):
                for label in component:
                    self._component_of[label] = index
            # Runs of *trivial* components (single block, no self-loop) need
            # no local fixpoint — each block is evaluated exactly once — so
            # consecutive runs are batched into a single worklist pass in
            # emission order instead of one `_sweep` call per block.  The
            # evaluation sequence (and therefore `solver_iterations`) is
            # identical to the one-component-at-a-time discipline: every
            # batched block starts queued, and a re-queue can only target a
            # predecessor, which the reverse-topological emission order
            # places *later* in the batch, i.e. still queued.  On an acyclic
            # CFG (all components trivial) the seeding degenerates to one
            # sweep over all blocks — the cost profile of ``seed="rpo"`` —
            # which removes the per-component overhead that made cold SCC
            # solves slower than RPO at the 10k-block stress point.
            batch: List[str] = []
            for component in self._components:
                label = component[0]
                if len(component) == 1 and label not in function.successors(label):
                    batch.append(label)
                    continue
                if batch:
                    self._sweep(
                        live_in, live_out, deque(batch), set(batch), set(batch)
                    )
                    batch = []
                members = set(component)
                local = sorted(component, key=rpo_position.__getitem__, reverse=True)
                self._sweep(live_in, live_out, deque(local), set(local), members)
            if batch:
                self._sweep(live_in, live_out, deque(batch), set(batch), set(batch))
        else:
            # Backward problem: seed the worklist with the blocks in
            # post-order (last block of the RPO first) so most information
            # flows in one pass.
            worklist = deque(reversed(by_rpo))
            self._sweep(live_in, live_out, worklist, set(labels))

        # The numbering may have grown while scanning (defensive: variables()
        # already covers every def and use).
        self._universe = len(self.numbering)
        self._bits_in = live_in
        self._bits_out = live_out
        self.live_in = {
            label: BitSet.from_bits(self._universe, live_in[label]) for label in labels
        }
        self.live_out = {
            label: BitSet.from_bits(self._universe, live_out[label]) for label in labels
        }

    def _record_footprint(self) -> None:
        record_allocation(self.category, self.footprint_bytes())

    # -- oracle interface -----------------------------------------------------
    def is_live_in(self, block_label: str, var: Variable) -> bool:
        index = self.numbering.get(var)
        return index is not None and index in self.live_in[block_label]

    def is_live_out(self, block_label: str, var: Variable) -> bool:
        index = self.numbering.get(var)
        return index is not None and index in self.live_out[block_label]

    def live_in_variables(self, block_label: str) -> Iterator[Variable]:
        """The live-in variables of a block (decoded from the bit row)."""
        variable = self.numbering.variable
        return (variable(index) for index in self.live_in[block_label])

    def live_out_variables(self, block_label: str) -> Iterator[Variable]:
        """The live-out variables of a block (decoded from the bit row)."""
        variable = self.numbering.variable
        return (variable(index) for index in self.live_out[block_label])

    # -- bulk queries ----------------------------------------------------------
    def blocks_touching(self, variables) -> Set[str]:
        """Labels whose live-in/live-out rows or def masks mention ``variables``.

        This is the *dirty neighbourhood* of a variable set: every block able
        to originate an interference edge involving one of the variables
        (a definition inside it, or liveness across its boundary).  One mask
        test per block against the authoritative raw rows — the bulk query
        the incremental interference backend uses to bound its re-scan.
        """
        mask = 0
        ensure = self.numbering.ensure
        for var in variables:
            mask |= 1 << ensure(var)
        if not mask:
            return set()
        touching: Set[str] = set()
        masks = self._masks
        bits_in = self._bits_in
        bits_out = self._bits_out
        for label in self.function.blocks:
            block_masks = masks.get(label)
            if block_masks is None:
                block_masks = masks[label] = self._block_masks(label)
            combined = bits_in.get(label, 0) | bits_out.get(label, 0) | block_masks[0]
            if combined & mask:
                touching.add(label)
        return touching

    # -- maintenance hooks ----------------------------------------------------
    def _index_for(self, var: Variable) -> int:
        """Index of ``var``, growing the universe (and every row) if new."""
        index = self.numbering.ensure(var)
        if index >= self._universe:
            self._universe = len(self.numbering)
            for row in self.live_in.values():
                row.grow(self._universe)
            for row in self.live_out.values():
                row.grow(self._universe)
        return index

    def add_live_through(self, block_label: str, var: Variable) -> None:
        """Record that ``var`` is now live across ``block_label`` (incremental update)."""
        self.add_live_in(block_label, var)
        self.add_live_out(block_label, var)

    def add_live_out(self, block_label: str, var: Variable) -> None:
        index = self._index_for(var)
        self.live_out[block_label].add(index)
        self._bits_out[block_label] |= 1 << index

    def add_live_in(self, block_label: str, var: Variable) -> None:
        index = self._index_for(var)
        self.live_in[block_label].add(index)
        self._bits_in[block_label] |= 1 << index

    # -- memory accounting ----------------------------------------------------
    def footprint_bytes(self) -> int:
        """Measured footprint of the rows: ``ceil(universe/8)`` bytes each,
        two rows per block — the quantity Figure 7's bit-set formula
        evaluates, here actually allocated."""
        return sum(row.footprint_bytes() for row in self.live_in.values()) + sum(
            row.footprint_bytes() for row in self.live_out.values()
        )

    def evaluated_bitset_footprint(self, num_variables: int) -> int:
        """The paper's closed-form estimate ``ceil(#vars/8) * #blocks * 2``."""
        return ((num_variables + 7) // 8) * len(self.function.blocks) * 2
