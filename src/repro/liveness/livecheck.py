"""Liveness *checking* without global liveness sets.

This plays the role of the fast liveness checking of Boissinot et al.
(CGO'08), reference [16] of the paper: answer "is variable ``v`` live at this
program point?" without ever building per-block live-in/live-out sets.

Substitution note (see DESIGN.md): instead of the original's loop-nesting
reachability sets we combine

* a CFG-only precomputation — forward reachability bit-sets over the blocks —
  whose footprint only depends on the control-flow graph (this is what the
  Figure 7 memory model charges for the "LiveCheck" configurations), and
* exact per-variable backward walks from the uses towards the definition,
  cached per variable the first time the variable is queried.

Both structures survive program edits that do not change the CFG, which is the
property the paper relies on ("these data structures are thus still valid even
if instructions are moved, introduced, or removed").
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.ir.editlog import BLOCK_SPLIT, EditLog
from repro.ir.function import Function
from repro.ir.instructions import Variable
from repro.ir.positions import edge_index
from repro.liveness.base import LivenessOracle
from repro.utils.instrument import record_allocation


class LivenessChecker(LivenessOracle):
    """Query-based liveness oracle (no global live-in / live-out sets)."""

    def __init__(self, function: Function) -> None:
        super().__init__(function)
        self._labels = list(function.blocks)
        self._label_index = {label: i for i, label in enumerate(self._labels)}
        # CFG-only precomputation: forward reachability between blocks,
        # stored as one bit-row per block (two bit-sets per block in the
        # paper's accounting: reachability plus back-edge targets).
        self._reach: Dict[str, int] = {}
        self._compute_reachability()
        # Per-variable caches, filled lazily on first query.
        self._live_in_blocks: Dict[Variable, Set[str]] = {}
        self._live_out_blocks: Dict[Variable, Set[str]] = {}
        record_allocation("livecheck", self.footprint_bytes())

    # -- CFG-only precomputation ---------------------------------------------------
    def _compute_reachability(self) -> None:
        """Forward reachability closure over blocks (iterative, bit rows)."""
        index = self._label_index
        rows = {label: 0 for label in self._labels}
        for source, target in self.function.edges():
            if target in index:
                rows[source] |= 1 << index[target]
        changed = True
        while changed:
            changed = False
            for label in self._labels:
                row = rows[label]
                new_row = row
                remaining = row
                while remaining:
                    bit = remaining & -remaining
                    remaining ^= bit
                    new_row |= rows[self._labels[bit.bit_length() - 1]]
                if new_row != row:
                    rows[label] = new_row
                    changed = True
        self._reach = rows

    def reaches(self, source_label: str, target_label: str) -> bool:
        """Can control flow from ``source`` reach ``target`` (non-reflexively)?"""
        target_bit = self._label_index.get(target_label)
        if target_bit is None or source_label not in self._reach:
            return False
        return bool(self._reach[source_label] >> target_bit & 1)

    # -- per-variable backward walks --------------------------------------------------
    def _ensure_variable(self, var: Variable) -> None:
        if var in self._live_in_blocks:
            return
        live_in: Set[str] = set()
        live_out: Set[str] = set()
        def_point = self.def_points.get(var)
        # Function parameters are defined at the virtual index -1, *before* the
        # entry block: they are live-in at the entry like any other live-through
        # variable, so their definition block must not stop the backward walk.
        def_block = (
            def_point.block if def_point is not None and def_point.index >= 0 else None
        )

        worklist = []
        for use in self.use_points.get(var, ()):  # pragma: no branch
            use_block = self.function.blocks[use.block]
            if use.index == edge_index(use_block):
                # φ-argument read on the out-edges of ``use.block``.
                live_out.add(use.block)
                if use.block != def_block:
                    if use.block not in live_in:
                        live_in.add(use.block)
                        worklist.append(use.block)
            else:
                if use.block != def_block or (def_point is not None and def_point.index > use.index):
                    if use.block not in live_in:
                        live_in.add(use.block)
                        worklist.append(use.block)

        while worklist:
            label = worklist.pop()
            for pred in self.function.predecessors(label):
                live_out.add(pred)
                if pred != def_block and pred not in live_in:
                    live_in.add(pred)
                    worklist.append(pred)

        self._live_in_blocks[var] = live_in
        self._live_out_blocks[var] = live_out

    # -- incremental invalidation ----------------------------------------------------
    def apply_edits(self, log: EditLog) -> int:
        """Patch the per-variable answer caches from one structural edit log.

        The checker's two long-lived structures react very differently to
        edits, which is exactly the paper's point about liveness checking:

        * the CFG-only reachability rows survive any edit that moves,
          inserts or removes *instructions*; only a CFG change (an edge
          split, a new block) forces their recomputation;
        * the lazily-filled per-variable walk caches stay exact for every
          variable no edit mentions (the :class:`~repro.ir.editlog.EditLog`
          contract: a block whose instructions mention an affected variable
          is logged as touched), so only the affected entries are dropped —
          they refill on the next query instead of the whole oracle being
          rebuilt.

        Split edges additionally invalidate the cached walks of variables
        that may be live across (or φ-read on) the split edge: their block
        sets gain the new block.  The test is conservative — live-out of the
        split source or live-in of the split target — which can only drop a
        still-valid cache entry, never keep a stale one.

        Returns the number of cached variable entries dropped.
        """
        dropped = 0

        def drop(var: Variable) -> None:
            nonlocal dropped
            had = var in self._live_in_blocks or var in self._live_out_blocks
            self._live_in_blocks.pop(var, None)
            self._live_out_blocks.pop(var, None)
            if had:
                dropped += 1

        for var in log.affected_variables():
            drop(var)

        cfg_changed = bool(log.new_blocks)
        for edit in log:
            if edit.kind != BLOCK_SPLIT or len(edit.blocks) != 3:
                continue
            cfg_changed = True
            source, _new_label, target = edit.blocks
            stale = [
                var
                for var, outs in self._live_out_blocks.items()
                if source in outs or target in self._live_in_blocks.get(var, ())
            ]
            for var in stale:
                drop(var)

        if cfg_changed:
            self._labels = list(self.function.blocks)
            self._label_index = {label: i for i, label in enumerate(self._labels)}
            self._compute_reachability()

        # Re-index the definition/use position maps eagerly: queries are the
        # hot path of every LiveCheck engine, so they must stay free of
        # staleness checks; the patch itself is still far below a rebuild
        # (the per-variable walk caches — the expensive part — refill only
        # for the dropped entries).
        self._index_positions()
        return dropped

    # -- oracle interface ----------------------------------------------------------------
    def is_live_in(self, block_label: str, var: Variable) -> bool:
        self._ensure_variable(var)
        return block_label in self._live_in_blocks[var]

    def is_live_out(self, block_label: str, var: Variable) -> bool:
        self._ensure_variable(var)
        return block_label in self._live_out_blocks[var]

    # -- memory accounting ------------------------------------------------------------------
    def footprint_bytes(self) -> int:
        """The paper's estimate: two bit-sets of #blocks bits per block."""
        num_blocks = len(self._labels)
        return ((num_blocks + 7) // 8) * num_blocks * 2
