"""Liveness analyses.

Three interchangeable *oracles* answer the liveness queries needed by the
out-of-SSA translation:

* :class:`~repro.liveness.dataflow.LivenessSets` — classic iterative data-flow
  analysis computing live-in / live-out sets per block as ordered sets (the
  reference backend, kept as the semantic oracle the others are tested
  against);
* :class:`~repro.liveness.bitsets.BitLivenessSets` — the same live-in /
  live-out facts stored as :class:`~repro.utils.bitset.BitSet` rows over a
  one-time variable numbering and solved with a reverse-postorder worklist
  (the bit-set encoding whose footprint Figure 7 evaluates; the backend the
  paper's set-based configurations — "Sreedhar III", plain "Us I"/"Us III" —
  now run on);
* :class:`~repro.liveness.livecheck.LivenessChecker` — liveness *checking*
  without global sets, from CFG-only precomputation plus per-variable cached
  backward walks (the role played by fast liveness checking [16] in the
  paper's "LiveCheck" configurations).

All three share the query interface of
:class:`~repro.liveness.base.LivenessOracle` so every engine can be
instantiated with any of them (``EngineConfig.liveness`` /
``--liveness {sets,bitsets,check}``).
"""

from repro.liveness.base import LivenessOracle
from repro.liveness.bitsets import BitLivenessSets
from repro.liveness.dataflow import LivenessSets
from repro.liveness.livecheck import LivenessChecker
from repro.liveness.numbering import VariableNumbering
from repro.liveness.intersection import IntersectionOracle, live_ranges_intersect

__all__ = [
    "LivenessOracle",
    "LivenessSets",
    "BitLivenessSets",
    "LivenessChecker",
    "VariableNumbering",
    "IntersectionOracle",
    "live_ranges_intersect",
]
