"""Liveness analyses.

Two interchangeable *oracles* answer the liveness queries needed by the
out-of-SSA translation:

* :class:`~repro.liveness.dataflow.LivenessSets` — classic iterative data-flow
  analysis computing live-in / live-out sets per block (the baseline the
  paper's "Sreedhar III" configuration uses);
* :class:`~repro.liveness.livecheck.LivenessChecker` — liveness *checking*
  without global sets, from CFG-only precomputation plus per-variable cached
  backward walks (the role played by fast liveness checking [16] in the
  paper's "LiveCheck" configurations).

Both share the query interface of :class:`~repro.liveness.base.LivenessOracle`
so every engine can be instantiated with either.
"""

from repro.liveness.base import LivenessOracle
from repro.liveness.dataflow import LivenessSets
from repro.liveness.livecheck import LivenessChecker
from repro.liveness.intersection import IntersectionOracle, live_ranges_intersect

__all__ = [
    "LivenessOracle",
    "LivenessSets",
    "LivenessChecker",
    "IntersectionOracle",
    "live_ranges_intersect",
]
