"""Liveness analyses.

Three interchangeable *oracles* answer the liveness queries needed by the
out-of-SSA translation:

* :class:`~repro.liveness.dataflow.LivenessSets` — classic iterative data-flow
  analysis computing live-in / live-out sets per block as ordered sets (the
  reference backend, kept as the semantic oracle the others are tested
  against);
* :class:`~repro.liveness.bitsets.BitLivenessSets` — the same live-in /
  live-out facts stored as :class:`~repro.utils.bitset.BitSet` rows over a
  one-time variable numbering and solved with a reverse-postorder worklist
  (the bit-set encoding whose footprint Figure 7 evaluates; the backend the
  paper's set-based configurations — "Sreedhar III", plain "Us I"/"Us III" —
  now run on);
* :class:`~repro.liveness.livecheck.LivenessChecker` — liveness *checking*
  without global sets, from CFG-only precomputation plus per-variable cached
  backward walks (the role played by fast liveness checking [16] in the
  paper's "LiveCheck" configurations);
* :class:`~repro.liveness.incremental.IncrementalBitLiveness` — the bit-set
  rows kept valid across structural edits: the mutating passes log what they
  did (:class:`~repro.ir.editlog.EditLog`) and ``apply_edits`` re-solves only
  the dirtied region, bit-identically to a cold solve.

All four share the query interface of
:class:`~repro.liveness.base.LivenessOracle` so every engine can be
instantiated with any of them (``EngineConfig.liveness`` /
``--liveness {sets,bitsets,check,incremental}``).
"""

from repro.liveness.base import LivenessOracle
from repro.liveness.bitsets import BitLivenessSets
from repro.liveness.dataflow import LivenessSets
from repro.liveness.incremental import IncrementalBitLiveness, ResolveDelta
from repro.liveness.livecheck import LivenessChecker
from repro.liveness.numbering import VariableNumbering
from repro.liveness.intersection import IntersectionOracle, live_ranges_intersect

__all__ = [
    "LivenessOracle",
    "LivenessSets",
    "BitLivenessSets",
    "IncrementalBitLiveness",
    "ResolveDelta",
    "LivenessChecker",
    "VariableNumbering",
    "IntersectionOracle",
    "live_ranges_intersect",
]
