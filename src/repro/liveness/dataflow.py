"""Classic iterative data-flow liveness: live-in / live-out sets per block.

This is the *reference* set-based backend (``liveness="sets"``): a round-robin
fixpoint over :class:`~repro.utils.orderedset.OrderedSet` live-in / live-out
sets, deliberately simple so it can serve as the semantic oracle that the
fast bit-set backend (:class:`~repro.liveness.bitsets.BitLivenessSets`, which
the paper's set-based engine configurations actually run on) is tested
against.  The ordered-set footprint feeds the Figure 7 "evaluated ordered"
memory column.

The transfer functions implement the SSA conventions documented in
:mod:`repro.liveness.base`: φ-arguments are live-out of the predecessor they
flow from and φ-results are defined at the top of their block.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.ir.function import Function
from repro.ir.instructions import Phi, Variable
from repro.liveness.base import LivenessOracle
from repro.utils.instrument import record_allocation
from repro.utils.orderedset import OrderedSet


class LivenessSets(LivenessOracle):
    """Live-in / live-out sets for every block, computed to a fixpoint."""

    def __init__(self, function: Function) -> None:
        super().__init__(function)
        self.live_in: Dict[str, OrderedSet] = {}
        self.live_out: Dict[str, OrderedSet] = {}
        self._compute()
        self._record_footprint()

    # -- data-flow computation -------------------------------------------------
    def _block_locals(self, block_label: str):
        """(defs, upward-exposed uses) of a block, φ conventions applied."""
        block = self.function.blocks[block_label]
        defs: Set[Variable] = set()
        upward: Set[Variable] = set()
        for instruction in block.instructions(include_phis=False):
            for var in instruction.uses():
                if var not in defs:
                    upward.add(var)
            for var in instruction.defs():
                defs.add(var)
        # φ-functions define their result at the top of the block (before any
        # body instruction), and their arguments are *not* uses here.
        phi_defs = {phi.dst for phi in block.phis}
        return defs | phi_defs, upward - phi_defs

    def _phi_uses_on_edge(self, pred_label: str, succ_label: str) -> Set[Variable]:
        """Variables read on the edge ``pred -> succ`` by φ-functions of ``succ``."""
        result: Set[Variable] = set()
        for phi in self.function.blocks[succ_label].phis:
            arg = phi.args.get(pred_label)
            if isinstance(arg, Variable):
                result.add(arg)
        return result

    def _compute(self) -> None:
        function = self.function
        labels = list(function.blocks)
        self.live_in = {label: OrderedSet() for label in labels}
        self.live_out = {label: OrderedSet() for label in labels}
        block_locals = {label: self._block_locals(label) for label in labels}
        phi_defs = {
            label: {phi.dst for phi in function.blocks[label].phis} for label in labels
        }

        changed = True
        while changed:
            changed = False
            for label in reversed(labels):
                defs, upward = block_locals[label]
                new_out: Set[Variable] = set()
                for successor in function.successors(label):
                    # live-in of the successor minus its φ-defs, plus the
                    # φ-arguments flowing along this particular edge.
                    new_out.update(
                        var for var in self.live_in[successor] if var not in phi_defs[successor]
                    )
                    new_out.update(self._phi_uses_on_edge(label, successor))
                new_in = upward | (new_out - defs)
                if set(self.live_out[label]) != new_out:
                    self.live_out[label] = OrderedSet(sorted(new_out, key=lambda v: v.name))
                    changed = True
                if set(self.live_in[label]) != new_in:
                    self.live_in[label] = OrderedSet(sorted(new_in, key=lambda v: v.name))
                    changed = True

    def _record_footprint(self) -> None:
        record_allocation("liveness_sets", self.footprint_bytes())

    # -- oracle interface ---------------------------------------------------------
    def is_live_in(self, block_label: str, var: Variable) -> bool:
        return var in self.live_in[block_label]

    def is_live_out(self, block_label: str, var: Variable) -> bool:
        return var in self.live_out[block_label]

    # -- maintenance hooks ----------------------------------------------------------
    def add_live_through(self, block_label: str, var: Variable) -> None:
        """Record that ``var`` is now live across ``block_label`` (incremental update)."""
        self.live_in[block_label].add(var)
        self.live_out[block_label].add(var)

    def add_live_out(self, block_label: str, var: Variable) -> None:
        self.live_out[block_label].add(var)

    def add_live_in(self, block_label: str, var: Variable) -> None:
        self.live_in[block_label].add(var)

    # -- memory accounting -------------------------------------------------------------
    def footprint_bytes(self) -> int:
        """Footprint of the ordered live-in/live-out sets (8 bytes per entry)."""
        return sum(s.footprint_bytes() for s in self.live_in.values()) + sum(
            s.footprint_bytes() for s in self.live_out.values()
        )

    def evaluated_bitset_footprint(self, num_variables: int) -> int:
        """The paper's bit-set estimate ``ceil(#vars/8) * #blocks * 2``."""
        return ((num_variables + 7) // 8) * len(self.function.blocks) * 2

    def evaluated_ordered_footprint(self) -> int:
        """The paper's ordered-set estimate (sum of the set sizes, in words)."""
        return self.footprint_bytes()
