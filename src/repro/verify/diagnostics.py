"""The diagnostic model of the verification framework.

A :class:`Diagnostic` is one finding: a stable error code, a severity, the
anchors needed to locate it (function, block label, instruction repr) and a
human-readable message.  A :class:`VerifyReport` accumulates findings across
an entire checked run instead of raising on the first one, so one run of
``repro verify`` surfaces *every* violated invariant.

Error codes are grouped by the pipeline layer whose invariant they report:

=========  ==================================================================
``V10x``   structural IR invariants (terminators, branch targets, φ coverage)
``V2xx``   strict SSA form (single defs, dominance property, reachability)
``V3xx``   conventional SSA after isolation (φ-web interference freedom)
``V4xx``   coalescing: congruence-class consistency and the incremental
           analysis cross-checks (``V45x``)
``V5xx``   final output: no φ/pcopy residue, sequentialization permutation,
           interpreter differential
``V6xx``   service-level checks (cached translation vs cold retranslation)
=========  ==================================================================

The catalogue below is the single source of truth; ``docs/VERIFY.md`` renders
it for humans and the tests assert every emitted code is registered here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class Severity(enum.Enum):
    """How bad a finding is."""

    WARNING = "warning"   #: suspicious but not a correctness violation
    ERROR = "error"       #: a violated invariant; the translation is wrong

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: code -> (default severity, one-line description).  Stable: codes are never
#: renumbered, only added.
CODE_CATALOGUE: Dict[str, tuple] = {
    # -- V10x structural -------------------------------------------------------
    "V101": (Severity.ERROR, "function has no blocks"),
    "V102": (Severity.ERROR, "entry label missing from the block map"),
    "V103": (Severity.ERROR, "block has no terminator"),
    "V104": (Severity.ERROR, "branch to unknown block"),
    "V105": (Severity.ERROR, "phi/terminator instruction inside a block body"),
    "V106": (Severity.ERROR, "phi-functions in a block with no predecessors"),
    "V107": (Severity.ERROR, "phi arguments do not match the predecessors"),
    "V108": (Severity.ERROR, "entry block has predecessors"),
    # -- V2xx strict SSA -------------------------------------------------------
    "V201": (Severity.ERROR, "variable has multiple definitions"),
    "V202": (Severity.ERROR, "variable used but never defined"),
    "V203": (Severity.ERROR, "use not dominated by its definition"),
    "V204": (Severity.WARNING, "use inside an unreachable block"),
    # -- V3xx CSSA -------------------------------------------------------------
    "V301": (Severity.ERROR, "phi-web members interfere (not conventional SSA)"),
    # -- V4xx coalescing -------------------------------------------------------
    "V401": (Severity.ERROR, "congruence class contains interfering members"),
    "V402": (Severity.ERROR, "class slot/adjacency masks disagree with the matrix"),
    "V403": (Severity.ERROR, "congruence classes do not partition the variables"),
    "V451": (Severity.ERROR, "patched liveness rows differ from a cold recompute"),
    "V452": (Severity.ERROR, "patched interference matrix differs from a cold scan"),
    # -- V5xx final output -----------------------------------------------------
    "V501": (Severity.ERROR, "phi-function remains in the translated output"),
    "V502": (Severity.ERROR, "parallel copy remains in the translated output"),
    "V503": (Severity.ERROR, "copy sequentialization broke the parallel-copy permutation"),
    "V504": (Severity.ERROR, "translated program behaves differently from the source"),
    # -- V6xx service ----------------------------------------------------------
    "V601": (Severity.ERROR, "cached translation differs from a cold retranslation"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the verification framework."""

    code: str
    message: str
    severity: Severity = Severity.ERROR
    #: Name of the function the finding is anchored in.
    function: Optional[str] = None
    #: Label of the block, when the finding is block-local.
    block: Optional[str] = None
    #: ``repr`` of the instruction, when the finding is instruction-local.
    instruction: Optional[str] = None
    #: Pipeline stage that detected the finding ("input", "isolate",
    #: "coalesce", "materialize", "output", "service").
    stage: Optional[str] = None

    def __post_init__(self) -> None:
        if self.code not in CODE_CATALOGUE:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    def anchor(self) -> str:
        """The ``function:block`` location prefix, as far as it is known."""
        parts = [part for part in (self.function, self.block) if part]
        return ":".join(parts)

    def to_payload(self) -> Dict[str, object]:
        """JSON-safe dict (CLI ``--json`` and the service ``verify`` verb)."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "function": self.function,
            "block": self.block,
            "instruction": self.instruction,
            "stage": self.stage,
        }

    def __str__(self) -> str:
        anchor = self.anchor()
        where = f" [{anchor}]" if anchor else ""
        return f"{self.code} {self.severity.value}{where}: {self.message}"


def diagnostic(
    code: str,
    message: str,
    *,
    function: Optional[str] = None,
    block: Optional[str] = None,
    instruction: Optional[str] = None,
    stage: Optional[str] = None,
    severity: Optional[Severity] = None,
) -> Diagnostic:
    """Build a :class:`Diagnostic`, defaulting severity from the catalogue."""
    if severity is None:
        severity = CODE_CATALOGUE[code][0]
    return Diagnostic(
        code=code,
        message=message,
        severity=severity,
        function=function,
        block=block,
        instruction=instruction,
        stage=stage,
    )


@dataclass
class VerifyReport:
    """Every finding of one checked run, plus where the time went."""

    function: Optional[str] = None
    level: str = "off"
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: Wall-clock seconds the checker passes took (excluded from per-pass
    #: pipeline timings; surfaced as ``OutOfSSAStats.verify_ms``).
    seconds: float = 0.0
    #: Stages that actually ran ("input", "isolate", ... ), for introspection.
    stages_run: List[str] = field(default_factory=list)

    def extend(self, diagnostics: List[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def codes(self) -> List[str]:
        return [diag.code for diag in self.diagnostics]

    @property
    def errors(self) -> List[Diagnostic]:
        return [diag for diag in self.diagnostics if diag.is_error]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [diag for diag in self.diagnostics if not diag.is_error]

    @property
    def ok(self) -> bool:
        """No error-severity findings (warnings do not fail a run)."""
        return not self.errors

    def to_payload(self) -> Dict[str, object]:
        return {
            "function": self.function,
            "level": self.level,
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "seconds": self.seconds,
            "stages": list(self.stages_run),
            "diagnostics": [diag.to_payload() for diag in self.diagnostics],
        }

    def render(self) -> str:
        """Human-readable multi-line summary (the CLI's default output)."""
        lines = [str(diag) for diag in self.diagnostics]
        verdict = "ok" if self.ok else f"{len(self.errors)} error(s)"
        name = self.function or "<program>"
        lines.append(
            f"# verify {name}: {verdict}, {len(self.warnings)} warning(s), "
            f"level {self.level}, {self.seconds * 1e3:.2f} ms"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"VerifyReport({self.function!r}, level={self.level!r}, "
            f"{len(self.errors)} errors, {len(self.warnings)} warnings)"
        )
