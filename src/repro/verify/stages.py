"""The staged pipeline verifier.

:class:`PipelineVerifier` hooks the :class:`~repro.pipeline.pipeline.PassManager`
between phases and runs the :mod:`repro.verify.checks` passes appropriate to
the configured level:

``fast``
    Structural invariants on the input function, plus structure and
    no-φ/pcopy-residue checks on the translated output.  Cheap enough for
    every translation (the stress benchmark bounds its overhead).

``full``
    Everything ``fast`` does, plus strict-SSA on input and after isolation,
    φ-web interference freedom after isolation (CSSA), congruence-class
    consistency after coalescing, bit-equality cross-checks of incrementally
    patched liveness/interference state against cold recomputes, the
    sequentialization permutation check, and an interpreter differential of
    the output against a snapshot of the source program.

Checks are keyed on *the pass about to run* (``before_pass``) rather than the
pass that just finished, so anything that mutates the function between two
phases — including the seeded faults of :mod:`repro.verify.faults` — is
visible to the next checkpoint.  The verifier never builds analyses through
the run's :class:`~repro.pipeline.analysis.AnalysisCache` and restores every
instrumentation counter it touches, so a checked run computes bit-identical
translations *and* statistics to an unchecked one.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, List, Optional

from repro.ir.function import Function
from repro.outofssa.config import VERIFY_LEVELS
from repro.verify import checks
from repro.verify.diagnostics import Diagnostic, VerifyReport

#: Counters restored around checks that issue analysis queries, so checked
#: runs report the same instrumentation numbers as unchecked ones.
_COUNTER_NAMES = ("query_count", "matrix_hits", "pair_queries", "class_row_checks")


@contextmanager
def _frozen_counters(*objects) -> Iterator[None]:
    saved = []
    for obj in objects:
        if obj is None:
            continue
        for name in _COUNTER_NAMES:
            value = getattr(obj, name, None)
            if isinstance(value, int):
                saved.append((obj, name, value))
    try:
        yield
    finally:
        for obj, name, value in saved:
            setattr(obj, name, value)


class PipelineVerifier:
    """Runs the stage checkers of one checked pipeline run."""

    def __init__(self, function: Function, level: str) -> None:
        if level not in VERIFY_LEVELS or level == "off":
            raise ValueError(f"verify level must be 'fast' or 'full', got {level!r}")
        self.level = level
        self.report = VerifyReport(function=function.name, level=level)
        # The interpreter differential compares the final output against the
        # program as it entered the pipeline, so snapshot it before any pass
        # mutates it in place.
        self._source: Optional[Function] = (
            function.copy() if level == "full" else None
        )

    # -- internals -------------------------------------------------------------
    def _run_stage(self, stage: str, thunk) -> None:
        start = time.perf_counter()
        try:
            found: List[Diagnostic] = thunk()
        finally:
            self.report.seconds += time.perf_counter() - start
        if stage not in self.report.stages_run:
            self.report.stages_run.append(stage)
        self.report.extend(found)

    # -- hooks -----------------------------------------------------------------
    def before_pass(self, name: str, ctx) -> None:
        """Called by the PassManager before the pass ``name`` runs."""
        if name == "isolate":
            self._check_input(ctx)
        elif name == "coalesce":
            self._check_isolation(ctx)
        elif name == "materialize":
            self._check_coalescing(ctx)
            if self.level == "full" and ctx.lowered_pcopies is None:
                # Ask materialization to record each lowered parallel copy
                # for the sequentialization check.
                ctx.lowered_pcopies = []

    def after_run(self, ctx) -> None:
        """Called by the Pipeline after every pass has run."""
        function = ctx.function
        self._run_stage("output", lambda: checks.check_structure(function, stage="output"))
        self._run_stage("output", lambda: checks.check_no_ssa_residue(function))
        if self.level != "full":
            return
        records = ctx.lowered_pcopies or []
        self._run_stage(
            "output", lambda: checks.check_sequentialization(function, records)
        )
        if self._source is not None:
            source = self._source
            self._run_stage(
                "output", lambda: checks.check_behaviour(source, function)
            )

    # -- per-checkpoint bundles ------------------------------------------------
    def _check_input(self, ctx) -> None:
        function = ctx.function
        self._run_stage("input", lambda: checks.check_structure(function, stage="input"))
        if self.level == "full" and function.has_phis():
            self._run_stage("input", lambda: checks.check_ssa(function, stage="input"))

    def _check_isolation(self, ctx) -> None:
        if self.level != "full":
            return
        function = ctx.function
        self._run_stage(
            "isolate", lambda: checks.check_structure(function, stage="isolate")
        )
        if function.has_phis():
            self._run_stage(
                "isolate", lambda: checks.check_ssa(function, stage="isolate")
            )
        test = ctx.test
        if test is not None:
            def run_cssa() -> List[Diagnostic]:
                with _frozen_counters(test, getattr(test, "oracle", None)):
                    return checks.check_cssa(function, test)
            self._run_stage("isolate", run_cssa)

    def _check_coalescing(self, ctx) -> None:
        if self.level != "full":
            return
        from repro.interference.graph import IncrementalMatrixInterference
        from repro.liveness.incremental import IncrementalBitLiveness

        function = ctx.function
        test = ctx.test
        classes = ctx.classes
        if test is not None and classes is not None:
            # The interference-freedom invariant (V401) is the paper's CSSA
            # property; on φ-free non-SSA input, coalescing copy chains
            # legitimately forms classes whose members intersect while
            # carrying one value, so only the partition/mask invariants run
            # there.  φs are still present at this checkpoint (materialize
            # has not run), so the function itself says which case we're in.
            ssa_input = function.has_phis()

            def run_classes() -> List[Diagnostic]:
                with _frozen_counters(test, getattr(test, "oracle", None), classes):
                    return checks.check_congruence_classes(
                        classes, test, function, check_interference=ssa_input
                    )
            self._run_stage("coalesce", run_classes)

        live = ctx.analyses.cached(IncrementalBitLiveness)
        if live is not None:
            self._run_stage(
                "coalesce", lambda: checks.check_incremental_liveness(function, live)
            )
        matrix = (
            test
            if isinstance(test, IncrementalMatrixInterference)
            else ctx.analyses.cached(IncrementalMatrixInterference)
        )
        if matrix is not None:
            self._run_stage(
                "coalesce", lambda: checks.check_incremental_matrix(function, matrix)
            )
