"""The checker passes of the verification framework.

Every checker is a pure function returning a list of
:class:`~repro.verify.diagnostics.Diagnostic` values — no checker raises on a
finding, and none mutates the function or any analysis it is handed.  The
:class:`~repro.verify.stages.PipelineVerifier` sequences them between
pipeline phases; :mod:`repro.ir.validate` re-exposes the structural and SSA
checkers through its historical raising wrappers.

Imports deliberately target the ``repro.ir`` *submodules* (never the package)
so that :mod:`repro.ir.validate` can import this module lazily without a
package cycle.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.ir.function import Function
from repro.ir.instructions import (
    BrDec,
    Constant,
    Copy,
    Instruction,
    Operand,
    ParallelCopy,
    Phi,
    Terminator,
    Variable,
)
from repro.verify.diagnostics import Diagnostic, diagnostic


# --------------------------------------------------------------------------- V10x structural
def check_structure(function: Function, stage: str = "input") -> List[Diagnostic]:
    """Structural IR invariants (the collecting form of ``validate_function``).

    The message text of each finding matches the historical
    :func:`repro.ir.validate.validate_function` wording exactly (minus the
    ``function:block`` prefix, which lives in the diagnostic's anchors), so
    the raising shim reconstructs byte-identical errors.
    """
    name = function.name
    found: List[Diagnostic] = []

    def emit(code: str, message: str, block: Optional[str] = None,
             instruction: Optional[str] = None) -> None:
        found.append(diagnostic(
            code, message, function=name, block=block,
            instruction=instruction, stage=stage,
        ))

    if not function.blocks:
        emit("V101", "function has no blocks")
    if function.blocks and function.entry_label not in function.blocks:
        emit("V102", f"entry label {function.entry_label!r} missing")

    for block in function:
        if block.terminator is None:
            emit("V103", "missing terminator", block=block.label)
        else:
            for target in block.terminator.targets():
                if target not in function.blocks:
                    emit("V104", f"branch to unknown block {target!r}",
                         block=block.label)
        for instruction in block.body:
            if isinstance(instruction, (Phi, Terminator)):
                emit("V105", f"{instruction!r} may not appear in a block body",
                     block=block.label, instruction=repr(instruction))

    # The CFG-derived checks (φ coverage, entry predecessors) need a sane
    # block map; with unknown branch targets or a missing entry, computing
    # predecessors is undefined — exactly where the raising wrapper stopped.
    if any(diag.code in ("V101", "V102", "V104") for diag in found):
        return found

    # φ arguments must exactly cover the predecessors.  Validation is
    # read-only: refresh the predecessor cache defensively, but do not
    # advance the structural generation (that would spuriously invalidate
    # generation-stamped analyses of an unchanged function).
    function.refresh_cfg_cache()
    for block in function:
        if not block.phis:
            continue
        preds = set(function.predecessors(block.label))
        if not preds:
            emit("V106", "phi-functions in a block with no predecessors",
                 block=block.label)
            continue
        for phi in block.phis:
            labels = set(phi.args)
            if labels != preds:
                emit("V107",
                     f"phi {phi.dst} arguments {sorted(labels)} "
                     f"do not match predecessors {sorted(preds)}",
                     block=block.label, instruction=repr(phi))

    if function.predecessors(function.entry_label):
        emit("V108", f"entry block {function.entry_label!r} has predecessors")
    return found


# --------------------------------------------------------------------------- V2xx strict SSA
def reachable_blocks(function: Function) -> Set[str]:
    """Labels reachable from the entry block (terminator edges only)."""
    if function.entry_label not in function.blocks:
        return set()
    seen: Set[str] = {function.entry_label}
    worklist = [function.entry_label]
    while worklist:
        label = worklist.pop()
        terminator = function.blocks[label].terminator
        if terminator is None:
            continue
        for target in terminator.targets():
            if target in function.blocks and target not in seen:
                seen.add(target)
                worklist.append(target)
    return seen


def _definition_sites(function: Function) -> Dict[Variable, List[Tuple[str, Instruction]]]:
    sites: Dict[Variable, List[Tuple[str, Instruction]]] = {}
    for block in function:
        for instruction in block.instructions():
            for var in instruction.defs():
                sites.setdefault(var, []).append((block.label, instruction))
    return sites


def check_ssa(
    function: Function,
    allow_counter_redefinition: bool = True,
    stage: str = "input",
) -> List[Diagnostic]:
    """Strict SSA form: single defs plus the dominance property.

    Structural sanity is assumed (run :func:`check_structure` first).  Uses
    inside *unreachable* blocks are reported as warning-level ``V204``
    findings and excluded from the def-dominates-use check: the dominator
    tree carries no information about unreachable blocks, so the historical
    behaviour — failing the dominance test for every such use — conflated
    dead code with genuine SSA violations.
    """
    from repro.cfg.dominance import DominatorTree  # local import: avoid package cycle
    from repro.ir.positions import definition_point, use_points

    name = function.name
    found: List[Diagnostic] = []
    sites = _definition_sites(function)
    params = set(function.params)

    # Single assignment.
    for var, var_sites in sites.items():
        non_counter_sites = [
            site for site in var_sites
            if not (allow_counter_redefinition and isinstance(site[1], BrDec))
        ]
        limit = 0 if var in params else 1
        if len(non_counter_sites) > limit:
            found.append(diagnostic(
                "V201", f"variable {var} has {len(var_sites)} definitions",
                function=name, block=non_counter_sites[0][0], stage=stage,
            ))

    # Dominance property: each use is dominated by its definition.
    reachable = reachable_blocks(function)
    domtree = DominatorTree(function)
    def_points = {var: definition_point(function, var) for var in sites}
    unreachable_uses: Dict[str, List[Variable]] = {}
    for var, uses in use_points(function).items():
        if var in params:
            continue  # parameters are defined at the (virtual) function entry
        unreachable_here = [use for use in uses if use.block not in reachable]
        for use in unreachable_here:
            unreachable_uses.setdefault(use.block, []).append(var)
        uses = [use for use in uses if use.block in reachable]
        def_point = def_points.get(var)
        if def_point is None:
            if uses:
                found.append(diagnostic(
                    "V202", f"variable {var} used but never defined",
                    function=name, stage=stage,
                ))
            continue
        for use_point in uses:
            if not def_point.dominates(use_point, domtree):
                found.append(diagnostic(
                    "V203",
                    f"use of {var} at {use_point} not dominated by its "
                    f"definition at {def_point}",
                    function=name, block=use_point.block, stage=stage,
                ))
    for label in sorted(unreachable_uses):
        variables = ", ".join(sorted(str(v) for v in set(unreachable_uses[label])))
        found.append(diagnostic(
            "V204",
            f"uses of {variables} in unreachable block {label!r} "
            f"skip the dominance check",
            function=name, block=label, stage=stage,
        ))
    return found


# --------------------------------------------------------------------------- V3xx CSSA
def check_cssa(function: Function, test, stage: str = "isolate") -> List[Diagnostic]:
    """Every φ web must be interference-free under the configured backend.

    ``test`` is the run's :class:`~repro.interference.base.InterferenceOracle`
    — the *configured* interference notion decides, so an intersection with
    equal values (the paper's value-based refinement) is not a violation for
    the value-coalescing engines.
    """
    from repro.ssa.cssa import phi_webs

    found: List[Diagnostic] = []
    for members in phi_webs(function).values():
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                if a != b and test.interferes(a, b):
                    found.append(diagnostic(
                        "V301",
                        f"phi-web members {a} and {b} interfere after isolation",
                        function=function.name, stage=stage,
                    ))
    return found


# --------------------------------------------------------------------------- V4xx coalescing
def check_congruence_classes(
    classes, test, function: Function, stage: str = "coalesce",
    check_interference: bool = True,
) -> List[Diagnostic]:
    """Congruence-class consistency after coalescing.

    * ``V401`` — no two members of one class interfere (pairwise, under the
      configured backend); only with ``check_interference``, which callers
      gate to SSA inputs — the invariant is the paper's CSSA property, and on
      φ-free non-SSA programs copy chains legitimately build classes whose
      members intersect while carrying one value (the intersection notion
      cannot see the value equality pair-by-pair);
    * ``V402`` — a class's lazily maintained ``slot_mask``/``adj_mask`` rows
      (merged by ORs across coalesces) agree with a fresh recomputation from
      its members' matrix rows;
    * ``V403`` — the classes partition the variables they claim: member lists
      are disjoint and every variable's class actually contains it.
    """
    found: List[Diagnostic] = []
    name = function.name
    all_classes = classes.classes()

    def copy_related(a, b) -> bool:
        # Sreedhar's copy rule: the dst of a (parallel) copy carries its src's
        # value, so the pair may intersect without interfering.  The
        # value-based notions subsume this via ``same_value``; the
        # intersection-based Sreedhar III engine applies it as an explicit
        # skip-pair, which the class check must honour too.
        return test._is_copy_between(a, b) or test._is_copy_between(b, a)

    for cls in all_classes:
        members = cls.members
        if check_interference:
            for i, a in enumerate(members):
                for b in members[i + 1:]:
                    if a != b and test.interferes(a, b) and not copy_related(a, b):
                        found.append(diagnostic(
                            "V401",
                            f"congruence class {[str(v) for v in members]} "
                            f"contains interfering members {a} and {b}",
                            function=name, stage=stage,
                        ))

        if cls.slot_mask is not None and cls.slot_mask >= 0:
            slots = 0
            adj = 0
            complete = True
            for member in members:
                slot = test.slot(member)
                if slot is None:
                    complete = False
                    break
                slots |= 1 << slot
                adj |= test.adjacency_bits(member)
            if complete and (slots != cls.slot_mask or adj != cls.adj_mask):
                found.append(diagnostic(
                    "V402",
                    f"class {[str(v) for v in members]} rows disagree with the "
                    f"matrix: slot_mask {cls.slot_mask:#x} vs {slots:#x}, "
                    f"adj_mask {(cls.adj_mask or 0):#x} vs {adj:#x}",
                    function=name, stage=stage,
                ))

    seen: Dict[Variable, int] = {}
    for index, cls in enumerate(all_classes):
        for member in cls.members:
            if member in seen and seen[member] != index:
                found.append(diagnostic(
                    "V403",
                    f"variable {member} appears in two congruence classes",
                    function=name, stage=stage,
                ))
            seen[member] = index
    for var, cls in classes._class_of.items():
        if var not in cls.members:
            found.append(diagnostic(
                "V403",
                f"variable {var} maps to a class that does not contain it",
                function=name, stage=stage,
            ))
    return found


# --------------------------------------------------------------------------- V45x incremental
def check_incremental_liveness(function: Function, live, stage: str = "coalesce") -> List[Diagnostic]:
    """Patched bit-liveness rows must bit-equal a cold recompute.

    ``live`` is an :class:`~repro.liveness.incremental.IncrementalBitLiveness`
    whose rows were maintained from pass edit logs; the cold solve shares its
    (append-only) numbering so the raw ``int`` rows compare directly.
    """
    from repro.liveness.bitsets import BitLivenessSets

    found: List[Diagnostic] = []
    cold = BitLivenessSets(function, numbering=live.numbering)
    for label in function.blocks:
        warm_in = live._bits_in.get(label, 0)
        warm_out = live._bits_out.get(label, 0)
        cold_in = cold._bits_in.get(label, 0)
        cold_out = cold._bits_out.get(label, 0)
        if warm_in != cold_in or warm_out != cold_out:
            found.append(diagnostic(
                "V451",
                f"patched liveness rows of block {label!r} differ from a cold "
                f"recompute (in {warm_in:#x} vs {cold_in:#x}, "
                f"out {warm_out:#x} vs {cold_out:#x})",
                function=function.name, block=label, stage=stage,
            ))
    return found


def check_incremental_matrix(function: Function, matrix, stage: str = "coalesce") -> List[Diagnostic]:
    """A patched interference matrix must bit-equal a cold rebuild.

    Mirrors the stress harness's identity check: the cold matrix is built
    over the warm graph's exact universe ordering (same slot assignment) and
    the warm backend's own value table, so the half-matrix rows compare
    bit-for-bit.
    """
    from repro.interference.graph import MatrixInterference
    from repro.liveness.bitsets import BitLivenessSets
    from repro.liveness.intersection import IntersectionOracle

    cold_live = BitLivenessSets(function)
    cold = MatrixInterference(
        function,
        IntersectionOracle(function, cold_live),
        matrix.kind,
        values=matrix.values,
        universe=matrix.graph.variables(),
    )
    warm_rows = matrix.graph.row_bits()
    cold_rows = cold.graph.row_bits()
    if warm_rows == cold_rows:
        return []
    differing = sum(1 for w, c in zip(warm_rows, cold_rows) if w != c)
    return [diagnostic(
        "V452",
        f"patched interference matrix differs from a cold scan in "
        f"{differing} of {len(warm_rows)} rows",
        function=function.name, stage=stage,
    )]


# --------------------------------------------------------------------------- V50x final output
def check_no_ssa_residue(function: Function, stage: str = "output") -> List[Diagnostic]:
    """The translated output may contain no φ-functions or parallel copies."""
    found: List[Diagnostic] = []
    name = function.name
    for block in function:
        for phi in block.phis:
            found.append(diagnostic(
                "V501", f"phi-function {phi!r} remains after translation",
                function=name, block=block.label, instruction=repr(phi),
                stage=stage,
            ))
        for slot, pcopy in (("entry", block.entry_pcopy), ("exit", block.exit_pcopy)):
            if pcopy is not None and not pcopy.is_empty():
                found.append(diagnostic(
                    "V502",
                    f"{slot} parallel copy {pcopy!r} remains after translation",
                    function=name, block=block.label, instruction=repr(pcopy),
                    stage=stage,
                ))
        for instruction in block.body:
            if isinstance(instruction, ParallelCopy):
                found.append(diagnostic(
                    "V502",
                    f"parallel copy {instruction!r} remains after translation",
                    function=name, block=block.label,
                    instruction=repr(instruction), stage=stage,
                ))
            elif isinstance(instruction, Phi):
                found.append(diagnostic(
                    "V501",
                    f"phi-function {instruction!r} remains after translation",
                    function=name, block=block.label,
                    instruction=repr(instruction), stage=stage,
                ))
    return found


def check_sequentialization(
    function: Function,
    records: Sequence[Tuple[str, List[Tuple[Variable, Operand]], List[Copy]]],
    stage: str = "output",
) -> List[Diagnostic]:
    """Each sequentialized copy group must realize its parallel permutation.

    ``records`` is what materialization captured per lowered parallel copy:
    ``(block label, filtered pairs, emitted Copy objects)``.  The check
    re-finds the emitted copies in the final block body (by identity, in body
    order — a later mutation that drops or reorders them is visible) and
    symbolically executes them: after the sequence, every destination must
    hold the *initial* value of its parallel source, exactly as the parallel
    semantics reads all sources before any write.
    """
    found: List[Diagnostic] = []
    name = function.name
    for label, pairs, copies in records:
        if not pairs:
            continue
        block = function.blocks.get(label)
        if block is None:
            # The block disappeared after materialization; the structural
            # checks own that failure mode.
            continue
        wanted = {id(copy) for copy in copies}
        in_body = [ins for ins in block.body if id(ins) in wanted]
        if len(in_body) != len(copies):
            found.append(diagnostic(
                "V503",
                f"{len(copies) - len(in_body)} sequentialized copies of "
                f"parallel copy {ParallelCopy(pairs)!r} are missing from "
                f"block {label!r}",
                function=name, block=label, stage=stage,
            ))
            continue

        def initial(operand: Operand) -> Tuple[str, object]:
            if isinstance(operand, Constant):
                return ("const", operand.value)
            return ("init", operand.name)

        env: Dict[str, Tuple[str, object]] = {}

        def value_of(operand: Operand) -> Tuple[str, object]:
            if isinstance(operand, Constant):
                return ("const", operand.value)
            return env.get(operand.name, ("init", operand.name))

        for copy in in_body:
            env[copy.dst.name] = value_of(copy.src)
        for dst, src in pairs:
            expected = initial(src)
            actual = env.get(dst.name, ("init", dst.name))
            if actual != expected:
                found.append(diagnostic(
                    "V503",
                    f"sequentialization of {ParallelCopy(pairs)!r} leaves "
                    f"{dst} holding {actual}, expected {expected}",
                    function=name, block=label, stage=stage,
                ))
    return found


def _argument_vectors(param_count: int) -> List[Tuple[int, ...]]:
    """Deterministic argument vectors for the interpreter differential."""
    if param_count == 0:
        return [()]
    return [
        tuple(0 for _ in range(param_count)),
        tuple(i + 1 for i in range(param_count)),
        tuple((i * 7 + 3) % 13 for i in range(param_count)),
    ]


def check_behaviour(
    source: Function,
    translated: Function,
    stage: str = "output",
    max_steps: int = 200_000,
    argument_vectors: Optional[Iterable[Tuple[int, ...]]] = None,
) -> List[Diagnostic]:
    """Interpreter differential: the translation must preserve behaviour.

    Runs both programs on deterministic argument vectors and compares the
    observable behaviour (return value + print trace).  Vectors on which the
    *source* does not terminate within the step budget (or reads an
    uninitialized variable) are skipped — the differential only judges
    executions the source itself defines.
    """
    from repro.interp.interpreter import (
        ExecutionLimitExceeded,
        Interpreter,
        UninitializedRead,
    )

    found: List[Diagnostic] = []
    vectors = (
        list(argument_vectors)
        if argument_vectors is not None
        else _argument_vectors(len(source.params))
    )
    for args in vectors:
        try:
            expected = Interpreter(source, max_steps=max_steps).run(args)
        except (ExecutionLimitExceeded, UninitializedRead):
            continue
        # Copies inserted/removed by translation shift the step count; a
        # generous margin over the source's own step count keeps the budget
        # from misfiring while still bounding runaway translations.
        budget = expected.steps * 4 + 1024
        try:
            actual = Interpreter(translated, max_steps=budget).run(args)
        except (ExecutionLimitExceeded, UninitializedRead, ValueError) as error:
            found.append(diagnostic(
                "V504",
                f"translated program failed on args {list(args)}: {error}",
                function=translated.name, stage=stage,
            ))
            continue
        if actual.observable() != expected.observable():
            found.append(diagnostic(
                "V504",
                f"translated program diverges on args {list(args)}: "
                f"expected {expected.observable()}, got {actual.observable()}",
                function=translated.name, stage=stage,
            ))
    return found
