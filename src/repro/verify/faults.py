"""Seeded-fault harness: proof that the verifier has teeth.

Each :class:`SeededFault` deliberately corrupts one invariant of a running
translation — dropping an isolation copy, merging interfering congruence
classes, stale-patching a liveness row, reordering a sequentialized copy
group — by injecting a mutator pass at a chosen point of the pipeline.  The
tests assert two things:

* every fault is *detected*: its expected diagnostic code appears in the
  checked run's report;
* the clean pipeline is *quiet*: with no fault injected, the same programs
  translate with zero diagnostics across every engine × backend.

The mutators operate below the IR's structural-edit API on purpose (raw
``dict``/``list`` mutation, no ``invalidate_cfg``): they simulate exactly the
silent drift — a pass forgetting to log an edit, a patched analysis going
stale — that the verifier exists to catch.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from itertools import combinations
from typing import Callable, List, Optional

from repro.gallery import (
    figure1_branch_use,
    figure2_branch_with_decrement,
    figure3_swap_problem,
    figure4_lost_copy_problem,
)
from repro.ir.function import Function
from repro.ir.instructions import Constant, ParallelCopy, Phi
from repro.outofssa.config import DEFAULT_ENGINE, EngineConfig
from repro.pipeline.passes import PRESERVES_ALL, Pass
from repro.pipeline.phases import out_of_ssa_passes
from repro.pipeline.pipeline import Pipeline, resolve_engine
from repro.verify.diagnostics import VerifyReport


class FaultPass(Pass):
    """A pipeline pass that runs an arbitrary mutator over the context.

    Declares ``PRESERVES_ALL`` so no analysis is invalidated: the corruption
    must *survive* into the next verification checkpoint, exactly like a real
    pass that mutated state without declaring it.
    """

    name = "fault"
    preserves = PRESERVES_ALL

    def __init__(self, mutate: Callable) -> None:
        self._mutate = mutate

    def run(self, ctx) -> None:
        self._mutate(ctx)


@dataclass(frozen=True)
class SeededFault:
    """One deliberate corruption and the diagnostic expected to catch it."""

    name: str
    #: Diagnostic code that must appear in the checked run's report.
    expected_code: str
    #: Name of the pipeline pass the mutator is injected *after*.
    stage: str
    #: The corruption itself (receives the PipelineContext).
    mutate: Callable
    #: Builds the program to translate.
    program: Callable[[], Function] = figure3_swap_problem
    #: Engine to run under (some faults need a specific backend).
    engine: Optional[EngineConfig] = None

    def run(self) -> VerifyReport:
        """Translate :attr:`program` with the fault injected; return the report."""
        config = replace(
            resolve_engine(self.engine if self.engine is not None else DEFAULT_ENGINE),
            verify_level="full",
        )
        passes: List[Pass] = []
        for pass_ in out_of_ssa_passes():
            passes.append(pass_)
            if pass_.name == self.stage:
                passes.append(FaultPass(self.mutate))
        if len(passes) == 4:
            raise ValueError(f"unknown fault stage {self.stage!r}")
        result = Pipeline(passes, config=config).run(self.program())
        assert result.verify_report is not None
        return result.verify_report


def run_clean(program: Function, engine, level: str = "full") -> VerifyReport:
    """Translate ``program`` fault-free at ``level``; return the report."""
    config = replace(resolve_engine(engine), verify_level=level)
    result = Pipeline.for_engine(config).run(program)
    assert result.verify_report is not None
    return result.verify_report


# --------------------------------------------------------------------------- mutators
def _break_phi_coverage(ctx) -> None:
    """Drop one φ argument, leaving the predecessor uncovered (V107)."""
    for block in ctx.function:
        for phi in block.phis:
            label = next(iter(phi.args))
            del phi.args[label]
            return
    raise AssertionError("program has no phi-functions")


def _drop_isolation_copy(ctx) -> None:
    """Remove an isolation copy, leaving its dst used but undefined (V202)."""
    for block in ctx.function:
        pcopy = block.exit_pcopy
        if pcopy is not None and pcopy.pairs:
            del pcopy.pairs[0]
            return
    raise AssertionError("program has no exit parallel copies")


def _cross_wire_phi_webs(ctx) -> None:
    """Point one φ at another φ's destination, uniting interfering webs (V301)."""
    phis = [phi for block in ctx.function for phi in block.phis]
    if len(phis) < 2:
        raise AssertionError("program needs two phi-functions in one block")
    first, second = phis[0], phis[1]
    label = next(iter(first.args))
    first.args[label] = second.dst


def _merge_interfering_classes(ctx) -> None:
    """Force-merge two classes with interfering members (V401)."""
    test = ctx.test
    classes = ctx.classes
    for a, b in combinations(list(ctx.universe), 2):
        if classes.same_class(a, b):
            continue
        if not test.interferes(a, b):
            continue
        if test._is_copy_between(a, b) or test._is_copy_between(b, a):
            continue
        classes.merge(classes.class_of(a), classes.class_of(b))
        return
    raise AssertionError("no interfering pair of distinct classes found")


def _corrupt_class_mask(ctx) -> None:
    """Flip a bit of a class's merged adjacency row (V402)."""
    classes = ctx.classes
    for cls in classes.classes():
        if classes._row_masks(cls) is not None:
            cls.adj_mask = (cls.adj_mask or 0) ^ 1
            return
    raise AssertionError("no class with computed matrix rows")


def _corrupt_partition(ctx) -> None:
    """Let one variable appear in two classes (V403)."""
    classes = ctx.classes
    all_classes = classes.classes()
    if len(all_classes) < 2:
        raise AssertionError("program needs at least two congruence classes")
    first, second = all_classes[0], all_classes[1]
    second.members.append(first.members[0])


def _stale_liveness_row(ctx) -> None:
    """Flip a bit of a patched incremental liveness row (V451)."""
    from repro.liveness.incremental import IncrementalBitLiveness

    live = ctx.analyses.cached(IncrementalBitLiveness)
    if live is None:
        raise AssertionError("engine has no incremental liveness")
    label = next(iter(ctx.function.blocks))
    live._bits_in[label] = live._bits_in.get(label, 0) ^ 1


def _stale_matrix_row(ctx) -> None:
    """Add a bogus edge to the patched interference matrix (V452)."""
    from repro.interference.graph import IncrementalMatrixInterference

    test = ctx.test
    if not isinstance(test, IncrementalMatrixInterference):
        raise AssertionError("engine has no incremental interference matrix")
    for a, b in combinations(test.graph.variables(), 2):
        if not test.graph.interferes(a, b):
            test.graph.add_edge(a, b)
            return
    raise AssertionError("matrix is complete; cannot add an edge")


def _leave_phi(ctx) -> None:
    """Sneak a φ-function back into the translated output (V501)."""
    function = ctx.function
    function.refresh_cfg_cache()
    for block in function:
        preds = function.predecessors(block.label)
        if preds:
            phi = Phi(function.new_variable("ghost"))
            for pred in preds:
                phi.set_arg(pred, Constant(0))
            block.phis.append(phi)
            return
    raise AssertionError("function has no block with predecessors")


def _leave_pcopy(ctx) -> None:
    """Sneak a parallel copy back into the translated output (V502)."""
    function = ctx.function
    block = function.blocks[function.entry_label]
    block.exit_pcopy = ParallelCopy([(function.new_variable("ghost"), Constant(0))])


def _reorder_sequentialized_copies(ctx) -> None:
    """Reverse one sequentialized copy group in place (V503)."""
    records = ctx.lowered_pcopies or []
    for label, _pairs, copies in records:
        if len(copies) < 2:
            continue
        block = ctx.function.blocks[label]
        wanted = {id(copy) for copy in copies}
        positions = [i for i, ins in enumerate(block.body) if id(ins) in wanted]
        if len(positions) != len(copies):
            continue
        in_body = [block.body[i] for i in positions]
        for position, copy in zip(positions, reversed(in_body)):
            block.body[position] = copy
        return
    raise AssertionError("no sequentialized copy group with two copies")


def _drop_sequentialized_copy(ctx) -> None:
    """Delete one copy of a sequentialized group (V503 count mismatch)."""
    records = ctx.lowered_pcopies or []
    for label, _pairs, copies in records:
        if not copies:
            continue
        block = ctx.function.blocks[label]
        for i, ins in enumerate(block.body):
            if ins is copies[0]:
                del block.body[i]
                return
    raise AssertionError("no sequentialized copies recorded")


def _swap_branch_targets(ctx) -> None:
    """Invert a conditional branch in the translated output (V504)."""
    from repro.ir.instructions import Branch

    for block in ctx.function:
        terminator = block.terminator
        if isinstance(terminator, Branch) and terminator.if_true != terminator.if_false:
            terminator.if_true, terminator.if_false = (
                terminator.if_false,
                terminator.if_true,
            )
            return
    raise AssertionError("function has no conditional branch")


# --------------------------------------------------------------------------- catalogue
def _incremental_liveness_engine() -> EngineConfig:
    return EngineConfig.builder("us_i").liveness("incremental").build()


def _incremental_matrix_engine() -> EngineConfig:
    return EngineConfig.builder("us_i").interference("incremental").build()


#: The full fault catalogue the tests sweep.
SEEDED_FAULTS: List[SeededFault] = [
    SeededFault(
        name="break_phi_coverage", expected_code="V107", stage="isolate",
        mutate=_break_phi_coverage,
    ),
    SeededFault(
        name="drop_isolation_copy", expected_code="V202", stage="isolate",
        mutate=_drop_isolation_copy,
    ),
    SeededFault(
        name="cross_wire_phi_webs", expected_code="V301", stage="isolate",
        mutate=_cross_wire_phi_webs,
    ),
    SeededFault(
        name="merge_interfering_classes", expected_code="V401", stage="coalesce",
        mutate=_merge_interfering_classes,
    ),
    SeededFault(
        name="corrupt_class_mask", expected_code="V402", stage="coalesce",
        mutate=_corrupt_class_mask, engine=EngineConfig.builder("us_i").build(),
    ),
    SeededFault(
        name="corrupt_partition", expected_code="V403", stage="coalesce",
        mutate=_corrupt_partition,
    ),
    SeededFault(
        name="stale_liveness_row", expected_code="V451", stage="coalesce",
        mutate=_stale_liveness_row, engine=_incremental_liveness_engine(),
    ),
    SeededFault(
        name="stale_matrix_row", expected_code="V452", stage="coalesce",
        mutate=_stale_matrix_row, engine=_incremental_matrix_engine(),
    ),
    SeededFault(
        name="leave_phi", expected_code="V501", stage="materialize",
        mutate=_leave_phi,
    ),
    SeededFault(
        name="leave_pcopy", expected_code="V502", stage="materialize",
        mutate=_leave_pcopy,
    ),
    SeededFault(
        name="reorder_sequentialized_copies", expected_code="V503", stage="materialize",
        mutate=_reorder_sequentialized_copies,
    ),
    SeededFault(
        name="drop_sequentialized_copy", expected_code="V503", stage="materialize",
        mutate=_drop_sequentialized_copy,
    ),
    SeededFault(
        name="swap_branch_targets", expected_code="V504", stage="materialize",
        mutate=_swap_branch_targets, program=figure1_branch_use,
    ),
]

#: Programs the clean sweep translates (the paper's gallery).
CLEAN_PROGRAMS = (
    figure1_branch_use,
    figure2_branch_with_decrement,
    figure3_swap_problem,
    figure4_lost_copy_problem,
)
