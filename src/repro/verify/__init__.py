"""Staged static verification of the out-of-SSA translation pipeline.

The paper's central claim is that the *fast* translation stays *correct*:
value-isolation preserves conventional SSA, congruence classes stay
interference-free, and parallel-copy sequentialization realizes exactly the
parallel-copy permutation.  This package turns those claims into checkable
invariants with stable error codes:

* :mod:`repro.verify.diagnostics` — the :class:`Diagnostic` model (code,
  severity, function/block/instruction anchors) and the :class:`VerifyReport`
  a checked run accumulates instead of raising on the first finding;
* :mod:`repro.verify.checks` — the checker passes themselves (structural,
  strict SSA, CSSA, congruence-class consistency, incremental cross-checks,
  final-output checks, interpreter differential);
* :mod:`repro.verify.stages` — the :class:`PipelineVerifier` the
  :class:`~repro.pipeline.pipeline.PassManager` calls between phases when
  ``EngineConfig.verify_level`` is ``fast`` or ``full``;
* :mod:`repro.verify.faults` — the seeded-fault harness proving the analyzer
  has teeth (every mutator is caught by its expected error code).

See ``docs/VERIFY.md`` for the error-code catalogue.
"""

from repro.verify.diagnostics import (
    CODE_CATALOGUE,
    Diagnostic,
    Severity,
    VerifyReport,
)
from repro.verify.stages import VERIFY_LEVELS, PipelineVerifier

__all__ = [
    "CODE_CATALOGUE",
    "Diagnostic",
    "Severity",
    "VerifyReport",
    "VERIFY_LEVELS",
    "PipelineVerifier",
]
