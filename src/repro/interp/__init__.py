"""A deterministic interpreter for the reproduction IR."""

from repro.interp.interpreter import (
    ExecutionLimitExceeded,
    ExecutionResult,
    Interpreter,
    UninitializedRead,
    run_function,
)

__all__ = [
    "ExecutionLimitExceeded",
    "ExecutionResult",
    "Interpreter",
    "UninitializedRead",
    "run_function",
]
