"""Deterministic interpreter for SSA and post-SSA programs.

The interpreter gives the IR its semantics:

* φ-functions of a block evaluate *in parallel*, selecting the argument keyed
  by the predecessor block just left;
* parallel copies read all their sources before writing any destination;
* ``br_dec`` decrements its counter, then branches on it being non-zero;
* ``call`` evaluates a pure, deterministic intrinsic (a mixing function of the
  callee name and the argument values), so programs containing calls can be
  compared before/after transformation without modelling an external world;
* ``print`` appends to an observable trace.

The :class:`ExecutionResult` (return value + print trace + executed block
path) is the observable behaviour that correctness tests compare before and
after out-of-SSA translation: a lost copy or a swapped value shows up as a
differing trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.function import Function
from repro.ir.instructions import (
    Branch,
    BrDec,
    Call,
    Constant,
    Copy,
    Instruction,
    Jump,
    Op,
    Operand,
    ParallelCopy,
    Phi,
    Print,
    Return,
    Variable,
)


class UninitializedRead(RuntimeError):
    """A variable was read before any definition assigned it a value."""


class ExecutionLimitExceeded(RuntimeError):
    """The step budget was exhausted (probable infinite loop)."""


@dataclass
class ExecutionResult:
    """Observable behaviour of one program execution."""

    return_value: Optional[int]
    trace: Tuple[int, ...]
    steps: int
    block_path: Tuple[str, ...] = ()

    def observable(self) -> Tuple[Optional[int], Tuple[int, ...]]:
        """The part of the result that must be preserved by compilation."""
        return (self.return_value, self.trace)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExecutionResult):
            return NotImplemented
        return self.observable() == other.observable()


_MASK = (1 << 64) - 1


def _wrap(value: int) -> int:
    """Wrap to a signed 64-bit integer so arithmetic matches across programs."""
    value &= _MASK
    if value >= 1 << 63:
        value -= 1 << 64
    return value


def _intrinsic_call(callee: str, args: Sequence[int]) -> int:
    """A pure, deterministic stand-in for external calls."""
    accumulator = 0
    for char in callee:
        accumulator = _wrap(accumulator * 31 + ord(char))
    for arg in args:
        accumulator = _wrap(accumulator * 1000003 + arg)
    return accumulator


class Interpreter:
    """Evaluate a :class:`~repro.ir.function.Function` on concrete arguments."""

    def __init__(self, function: Function, max_steps: int = 200_000) -> None:
        self.function = function
        self.max_steps = max_steps

    # -- operand evaluation -------------------------------------------------------
    def _read(self, env: Dict[str, int], operand: Operand) -> int:
        if isinstance(operand, Constant):
            return operand.value
        try:
            return env[operand.name]
        except KeyError:
            raise UninitializedRead(
                f"{self.function.name}: read of {operand} before any definition"
            ) from None

    def _write(self, env: Dict[str, int], var: Variable, value: int) -> None:
        env[var.name] = _wrap(value)

    # -- opcode semantics -----------------------------------------------------------
    def _evaluate_op(self, env: Dict[str, int], instruction: Op) -> int:
        opcode = instruction.opcode
        args = [self._read(env, arg) for arg in instruction.args]

        def arg(position: int) -> int:
            return args[position] if position < len(args) else 0

        if opcode == "const":
            return arg(0)
        if opcode == "add":
            return arg(0) + arg(1)
        if opcode == "sub":
            return arg(0) - arg(1)
        if opcode == "mul":
            return arg(0) * arg(1)
        if opcode == "div":
            return arg(0) // arg(1) if arg(1) != 0 else 0
        if opcode == "mod":
            return arg(0) % arg(1) if arg(1) != 0 else 0
        if opcode == "neg":
            return -arg(0)
        if opcode == "not":
            return 0 if arg(0) else 1
        if opcode == "and":
            return arg(0) & arg(1)
        if opcode == "or":
            return arg(0) | arg(1)
        if opcode == "xor":
            return arg(0) ^ arg(1)
        if opcode == "shl":
            return arg(0) << (arg(1) % 64)
        if opcode == "shr":
            return arg(0) >> (arg(1) % 64)
        if opcode == "min":
            return min(arg(0), arg(1))
        if opcode == "max":
            return max(arg(0), arg(1))
        if opcode == "abs":
            return abs(arg(0))
        if opcode == "select":
            return arg(1) if arg(0) else arg(2)
        if opcode in ("cmp_lt", "lt"):
            return 1 if arg(0) < arg(1) else 0
        if opcode in ("cmp_le", "le"):
            return 1 if arg(0) <= arg(1) else 0
        if opcode in ("cmp_gt", "gt"):
            return 1 if arg(0) > arg(1) else 0
        if opcode in ("cmp_ge", "ge"):
            return 1 if arg(0) >= arg(1) else 0
        if opcode in ("cmp_eq", "eq"):
            return 1 if arg(0) == arg(1) else 0
        if opcode in ("cmp_ne", "ne"):
            return 1 if arg(0) != arg(1) else 0
        raise ValueError(f"unknown opcode {opcode!r} in {instruction!r}")

    # -- execution ----------------------------------------------------------------------
    def run(self, args: Sequence[int] = ()) -> ExecutionResult:
        function = self.function
        if len(args) != len(function.params):
            raise ValueError(
                f"{function.name} expects {len(function.params)} arguments, got {len(args)}"
            )
        env: Dict[str, int] = {
            param.name: _wrap(value) for param, value in zip(function.params, args)
        }
        trace: List[int] = []
        block_path: List[str] = []
        steps = 0
        previous_label: Optional[str] = None
        current_label = function.entry_label
        assert current_label is not None

        while True:
            block = function.blocks[current_label]
            block_path.append(current_label)

            # φ-functions evaluate in parallel against the edge just taken.
            if block.phis:
                if previous_label is None:
                    raise ValueError(
                        f"{function.name}:{current_label}: phi-functions in the entry block"
                    )
                phi_values: List[Tuple[Variable, int]] = []
                for phi in block.phis:
                    if previous_label not in phi.args:
                        raise ValueError(
                            f"{function.name}:{current_label}: phi {phi.dst} has no argument "
                            f"for predecessor {previous_label}"
                        )
                    phi_values.append((phi.dst, self._read(env, phi.args[previous_label])))
                for dst, value in phi_values:
                    self._write(env, dst, value)
                steps += len(phi_values)

            for instruction in block.non_phi_instructions():
                steps += 1
                if steps > self.max_steps:
                    raise ExecutionLimitExceeded(
                        f"{function.name}: exceeded {self.max_steps} steps"
                    )

                if isinstance(instruction, ParallelCopy):
                    read = [(dst, self._read(env, src)) for dst, src in instruction.pairs]
                    for dst, value in read:
                        self._write(env, dst, value)
                elif isinstance(instruction, Copy):
                    self._write(env, instruction.dst, self._read(env, instruction.src))
                elif isinstance(instruction, Op):
                    self._write(env, instruction.dst, self._evaluate_op(env, instruction))
                elif isinstance(instruction, Call):
                    value = _intrinsic_call(
                        instruction.callee, [self._read(env, arg) for arg in instruction.args]
                    )
                    if instruction.dst is not None:
                        self._write(env, instruction.dst, value)
                elif isinstance(instruction, Print):
                    trace.append(self._read(env, instruction.value))
                elif isinstance(instruction, Jump):
                    previous_label, current_label = current_label, instruction.target
                    break
                elif isinstance(instruction, Branch):
                    taken = instruction.if_true if self._read(env, instruction.cond) != 0 else instruction.if_false
                    previous_label, current_label = current_label, taken
                    break
                elif isinstance(instruction, BrDec):
                    counter = self._read(env, instruction.counter) - 1
                    self._write(env, instruction.counter, counter)
                    taken = instruction.taken if counter != 0 else instruction.exit
                    previous_label, current_label = current_label, taken
                    break
                elif isinstance(instruction, Return):
                    value = (
                        self._read(env, instruction.value)
                        if instruction.value is not None
                        else None
                    )
                    return ExecutionResult(
                        return_value=value,
                        trace=tuple(trace),
                        steps=steps,
                        block_path=tuple(block_path),
                    )
                else:  # pragma: no cover - defensive
                    raise TypeError(f"cannot interpret {instruction!r}")
            else:
                raise ValueError(
                    f"{function.name}:{current_label}: block fell through without a terminator"
                )


def run_function(function: Function, args: Sequence[int] = (), max_steps: int = 200_000) -> ExecutionResult:
    """Convenience wrapper: interpret ``function`` on ``args``."""
    return Interpreter(function, max_steps=max_steps).run(args)
