"""The SSA optimizations that break conventionality.

Straight out of construction the program is CSSA and going out of SSA would be
trivial.  The situations the paper is about appear after:

* **copy folding / copy propagation** (``fold_copies``): every use of ``b``
  where ``b = copy a`` is rewritten to use ``a`` directly and the copy is
  removed.  In SSA this is always legal (the definition of ``a`` dominates the
  copy, which dominates every use of ``b``) but it typically makes φ-related
  live ranges overlap — the classic swap and lost-copy situations.
* **dominance-based value numbering** (``value_number``): redundant
  computations are replaced by the dominating equivalent one, extending live
  ranges across block boundaries.

Both passes operate on strict SSA and keep it strict; neither attempts to
maintain CSSA — that is exactly the job of the out-of-SSA translation.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.cfg.dominance import DominatorTree
from repro.ir.function import Function
from repro.ir.instructions import Call, Constant, Copy, Op, Operand, Phi, Variable


def _multiply_defined_variables(function: Function) -> set:
    """Variables with several definitions (e.g. ``br_dec`` loop counters).

    Such variables are not in SSA form (the paper notes hardware-loop counters
    "must not be promoted to SSA"); their value changes over time, so neither
    copy folding nor value numbering may treat them as single-valued.
    """
    counts: Dict[Variable, int] = {}
    for block in function:
        for instruction in block.instructions():
            for var in instruction.defs():
                counts[var] = counts.get(var, 0) + 1
    return {var for var, count in counts.items() if count > 1}


def fold_copies(
    function: Function,
    fold_constants: bool = True,
    should_fold: Optional[callable] = None,
) -> int:
    """Copy propagation: remove ``b = copy a`` and rewrite uses of ``b`` to ``a``.

    Returns the number of copies removed.  When ``fold_constants`` is False,
    copies of constants are kept (some architectures rematerialize constants
    instead).  ``should_fold(copy)`` may veto individual copies — real
    compilers keep some copies for rematerialization or scheduling reasons,
    and the workload generator uses this hook to produce programs with a
    realistic mix of folded and surviving copies.
    """
    # Collect the replacement map, resolving chains b -> a -> ... -> root.
    volatile = _multiply_defined_variables(function)
    replacement: Dict[Variable, Operand] = {}
    for block in function:
        for instruction in block.body:
            if isinstance(instruction, Copy):
                if isinstance(instruction.src, Constant) and not fold_constants:
                    continue
                if instruction.dst in volatile or (
                    isinstance(instruction.src, Variable) and instruction.src in volatile
                ):
                    continue  # never fold through a mutable (non-SSA) counter
                if should_fold is not None and not should_fold(instruction):
                    continue
                replacement[instruction.dst] = instruction.src

    def resolve(operand: Operand) -> Operand:
        seen = set()
        while isinstance(operand, Variable) and operand in replacement and operand not in seen:
            seen.add(operand)
            operand = replacement[operand]
        return operand

    resolved = {var: resolve(src) for var, src in replacement.items()}
    if not resolved:
        return 0

    removed = 0
    for block in function:
        new_body = []
        for instruction in block.body:
            if isinstance(instruction, Copy) and instruction.dst in resolved:
                removed += 1
                continue
            instruction.replace_uses(resolved)
            new_body.append(instruction)
        block.body = new_body
        for phi in block.phis:
            phi.replace_uses(resolved)
        if block.terminator is not None:
            block.terminator.replace_uses(resolved)
    return removed


_PURE_OPCODES_COMMUTATIVE = {"add", "mul", "and", "or", "xor", "eq", "ne"}


def _operand_key(operand: Operand, value_of: Dict[Variable, Hashable]) -> Hashable:
    if isinstance(operand, Constant):
        return ("const", operand.value)
    return ("var", value_of.get(operand, operand))


def value_number(function: Function, domtree: Optional[DominatorTree] = None) -> int:
    """Dominance-based value numbering on ``Op`` instructions.

    A computation whose (opcode, operand-values) was already computed by a
    dominating instruction is replaced by a reference to that instruction's
    result: the redundant ``Op`` is dropped and later uses are rewritten.
    Returns the number of instructions eliminated.
    """
    domtree = domtree or DominatorTree(function)
    volatile = _multiply_defined_variables(function)
    value_of: Dict[Variable, Hashable] = {}
    replacement: Dict[Variable, Variable] = {}
    removed = 0

    # Scoped hash table: one dict per dominator-tree path, implemented with an
    # undo log per block.
    table: Dict[Tuple, Variable] = {}

    def visit(label: str) -> None:
        nonlocal removed
        block = function.blocks[label]
        added_keys: List[Tuple] = []

        for phi in block.phis:
            value_of[phi.dst] = phi.dst

        new_body = []
        for instruction in block.body:
            instruction.replace_uses(replacement)
            touches_volatile = any(var in volatile for var in instruction.defs()) or any(
                var in volatile for var in instruction.uses()
            )
            if isinstance(instruction, Op) and instruction.opcode != "param" and not touches_volatile:
                operand_keys = [_operand_key(arg, value_of) for arg in instruction.args]
                if instruction.opcode in _PURE_OPCODES_COMMUTATIVE:
                    operand_keys = sorted(operand_keys, key=repr)
                key = (instruction.opcode, tuple(operand_keys))
                existing = table.get(key)
                if existing is not None:
                    replacement[instruction.dst] = existing
                    value_of[instruction.dst] = value_of.get(existing, existing)
                    removed += 1
                    continue
                table[key] = instruction.dst
                added_keys.append(key)
                value_of[instruction.dst] = instruction.dst
            else:
                for var in instruction.defs():
                    value_of[var] = var
            new_body.append(instruction)
        block.body = new_body

        if block.terminator is not None:
            block.terminator.replace_uses(replacement)
        for successor in function.successors(label):
            for phi in function.blocks[successor].phis:
                phi.replace_uses(replacement)

        for child in domtree.children(label):
            visit(child)

        for key in added_keys:
            del table[key]

    visit(function.entry_label)  # type: ignore[arg-type]
    # A final pass rewrites any remaining uses of replaced variables (e.g. in
    # φ-functions of blocks visited before the replacement was discovered).
    if replacement:
        for block in function:
            for instruction in block.instructions():
                instruction.replace_uses(replacement)
    return removed
