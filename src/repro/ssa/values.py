"""The paper's "SSA value" V(x) (§III-A).

In SSA every variable has a single static value, and the "has-the-same-value"
relation is an equivalence whose class representative is the variable whose
definition dominates all the others.  Following the same scheme as SSA
copy-folding, V is computed by one traversal of the blocks in dominator-tree
pre-order:

* ``b = copy a``       →  V(b) = V(a)
* ``b = copy <const>`` →  V(b) = the constant (two copies of ``5`` share a value)
* anything else        →  V(b) = b  (including φ-functions: the paper does not
  propagate values through φs to keep the test free)

The table is *incremental*: when the coalescer materializes a new copy
variable (virtualization, §IV-C) or Method I inserts the φ-copies, the new
variables are registered with :meth:`ValueTable.set_copy_of`.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Union

from repro.cfg.dominance import DominatorTree
from repro.ir.function import Function
from repro.ir.instructions import Constant, Copy, Instruction, ParallelCopy, Variable
from repro.ir.positions import block_schedule

ValueId = Hashable


class ValueTable:
    """Maps every SSA variable to its value representative."""

    def __init__(self, function: Function, domtree: Optional[DominatorTree] = None) -> None:
        self.function = function
        self.domtree = domtree or DominatorTree(function)
        self._value: Dict[Variable, ValueId] = {}
        self._volatile = self._multiply_defined()
        self._compute()

    # -- construction -----------------------------------------------------------
    def _multiply_defined(self) -> set:
        """Variables with several definitions (``br_dec`` counters): not single-valued."""
        counts: Dict[Variable, int] = {}
        for block in self.function:
            for instruction in block.instructions():
                for var in instruction.defs():
                    counts[var] = counts.get(var, 0) + 1
        return {var for var, count in counts.items() if count > 1}

    def _value_of_operand(self, operand: Union[Variable, Constant]) -> ValueId:
        if isinstance(operand, Constant):
            return ("const", operand.value)
        if operand in self._volatile:
            return operand
        return self._value.get(operand, operand)

    def _record(self, instruction: Instruction) -> None:
        if isinstance(instruction, Copy):
            self._value[instruction.dst] = (
                instruction.dst
                if instruction.dst in self._volatile
                or (isinstance(instruction.src, Variable) and instruction.src in self._volatile)
                else self._value_of_operand(instruction.src)
            )
        elif isinstance(instruction, ParallelCopy):
            for dst, src in instruction.pairs:
                if dst in self._volatile or (isinstance(src, Variable) and src in self._volatile):
                    self._value[dst] = dst
                else:
                    self._value[dst] = self._value_of_operand(src)
        else:
            for var in instruction.defs():
                self._value[var] = var

    def _compute(self) -> None:
        for param in self.function.params:
            self._value[param] = param
        for label in self.domtree.dominator_tree_preorder():
            block = self.function.blocks[label]
            for _, instruction in block_schedule(block):
                self._record(instruction)
        # Variables in unreachable blocks still get a (trivial) value.
        for block in self.function:
            if block.label not in self.domtree._rpo_index:
                for _, instruction in block_schedule(block):
                    for var in instruction.defs():
                        self._value.setdefault(var, var)

    # -- queries ----------------------------------------------------------------
    def value(self, var: Variable) -> ValueId:
        """The value representative of ``var`` (itself if unknown)."""
        return self._value.get(var, var)

    def same_value(self, a: Variable, b: Variable) -> bool:
        return self.value(a) == self.value(b)

    def __contains__(self, var: Variable) -> bool:
        return var in self._value

    # -- incremental updates -------------------------------------------------------
    def set_copy_of(self, new_var: Variable, source: Union[Variable, Constant]) -> None:
        """Register that ``new_var`` is a copy of ``source`` (e.g. a φ-copy)."""
        self._value[new_var] = self._value_of_operand(source)

    def set_fresh(self, new_var: Variable) -> None:
        """Register ``new_var`` as carrying its own, new value."""
        self._value[new_var] = new_var
