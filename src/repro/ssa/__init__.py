"""SSA middle-end: construction, the optimizations that break CSSA, values.

The paper's starting point is an SSA program that is *not* conventional any
more because optimizations (copy propagation, value numbering, code motion)
made φ-related live ranges overlap.  This package provides:

* :func:`~repro.ssa.construction.construct_ssa` — Cytron-style SSA
  construction (pruned φ-placement on dominance frontiers + renaming);
* :func:`~repro.ssa.copy_folding.fold_copies` and
  :func:`~repro.ssa.copy_folding.value_number` — the CSSA-breaking cleanups;
* :class:`~repro.ssa.values.ValueTable` — the paper's "SSA value" V(x),
  computed for free by walking copies in dominance order (§III-A);
* :mod:`~repro.ssa.cssa` — φ-webs and the conventional-SSA check;
* :mod:`~repro.ssa.cleanup` — dead-code and trivial-φ removal.
"""

from repro.ssa.construction import construct_ssa
from repro.ssa.copy_folding import fold_copies, value_number
from repro.ssa.values import ValueTable
from repro.ssa.cssa import phi_webs, is_conventional
from repro.ssa.cleanup import remove_dead_code, remove_trivial_phis

__all__ = [
    "construct_ssa",
    "fold_copies",
    "value_number",
    "ValueTable",
    "phi_webs",
    "is_conventional",
    "remove_dead_code",
    "remove_trivial_phis",
]
