"""Dead-code elimination and trivial-φ removal for SSA programs.

Cytron et al. already observe that the naive φ replacement only yields decent
code "if the naive replacement is preceded by dead code elimination"; both
the workload generator and the out-of-SSA engines use these passes to keep
their inputs/outputs tidy.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.ir.function import Function
from repro.ir.instructions import Call, Copy, Op, ParallelCopy, Phi, Print, Variable


_SIDE_EFFECT_FREE = (Op, Copy, Phi)


def remove_dead_code(function: Function) -> int:
    """Iteratively remove side-effect-free instructions whose results are unused.

    Returns the number of instructions (or parallel-copy components) removed.
    ``Call`` and ``Print`` instructions are conservatively kept.
    """
    removed_total = 0
    while True:
        used: Set[Variable] = set()
        for block in function:
            for instruction in block.instructions():
                used.update(instruction.uses())

        removed = 0
        for block in function:
            kept_phis = []
            for phi in block.phis:
                if phi.dst in used:
                    kept_phis.append(phi)
                else:
                    removed += 1
            block.phis = kept_phis

            kept_body = []
            for instruction in block.body:
                if isinstance(instruction, (Op, Copy)) and not any(
                    var in used for var in instruction.defs()
                ):
                    removed += 1
                    continue
                if isinstance(instruction, ParallelCopy):
                    before = len(instruction.pairs)
                    instruction.pairs = [(d, s) for d, s in instruction.pairs if d in used]
                    removed += before - len(instruction.pairs)
                    if instruction.is_empty():
                        continue
                kept_body.append(instruction)
            block.body = kept_body

            for pcopy_attr in ("entry_pcopy", "exit_pcopy"):
                pcopy = getattr(block, pcopy_attr)
                if pcopy is not None:
                    before = len(pcopy.pairs)
                    pcopy.pairs = [(d, s) for d, s in pcopy.pairs if d in used]
                    removed += before - len(pcopy.pairs)
            block.drop_empty_pcopies()

        removed_total += removed
        if removed == 0:
            return removed_total


def remove_trivial_phis(function: Function) -> int:
    """Remove φ-functions whose arguments are all identical (or the φ itself).

    ``x = φ(a, a, ..., a)`` is replaced by rewriting every use of ``x`` to
    ``a``.  Returns the number of φ-functions removed.
    """
    removed = 0
    changed = True
    while changed:
        changed = False
        replacement: Dict[Variable, object] = {}
        for block in function:
            kept = []
            for phi in block.phis:
                distinct = {arg for arg in phi.args.values() if arg != phi.dst}
                if len(distinct) == 1:
                    replacement[phi.dst] = next(iter(distinct))
                    removed += 1
                    changed = True
                else:
                    kept.append(phi)
            block.phis = kept
        if replacement:
            # Resolve chains (x -> a where a itself was replaced by b this round).
            def resolve(value):
                seen = set()
                while isinstance(value, Variable) and value in replacement and value not in seen:
                    seen.add(value)
                    value = replacement[value]
                return value

            resolved = {var: resolve(target) for var, target in replacement.items()}
            for block in function:
                for instruction in block.instructions():
                    instruction.replace_uses(resolved)  # type: ignore[arg-type]
    return removed
