"""φ-webs and the conventional-SSA (CSSA) property.

A program is in CSSA when, for every φ-web (set of variables connected
transitively through φ-functions), all members can be renamed to one variable
without changing the semantics — equivalently, when no two members have
intersecting live ranges.  Code straight out of SSA construction is CSSA;
copy propagation and value numbering generally break the property, which is
precisely why a non-trivial out-of-SSA translation is needed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.function import Function
from repro.ir.instructions import Variable
from repro.liveness.base import LivenessOracle
from repro.liveness.dataflow import LivenessSets
from repro.liveness.intersection import IntersectionOracle
from repro.utils.unionfind import UnionFind


def phi_webs(function: Function) -> Dict[Variable, List[Variable]]:
    """Group variables connected (transitively) by φ-functions.

    Returns a map from a representative variable to the members of its web;
    variables not involved in any φ are omitted.
    """
    uf = UnionFind()
    involved: List[Variable] = []
    for phi in function.phis():
        uf.add(phi.dst)
        involved.append(phi.dst)
        for arg in phi.args.values():
            if isinstance(arg, Variable):
                uf.add(arg)
                involved.append(arg)
                uf.union(phi.dst, arg)
    webs: Dict[Variable, List[Variable]] = {}
    seen = set()
    for var in involved:
        if var in seen:
            continue
        seen.add(var)
        webs.setdefault(uf.find(var), []).append(var)
    return webs


def conventionality_violations(
    function: Function,
    liveness: Optional[LivenessOracle] = None,
) -> List[Tuple[Variable, Variable]]:
    """All pairs of φ-web members whose live ranges intersect."""
    liveness = liveness or LivenessSets(function)
    oracle = IntersectionOracle(function, liveness)
    violations: List[Tuple[Variable, Variable]] = []
    for members in phi_webs(function).values():
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                if a != b and oracle.intersect(a, b):
                    violations.append((a, b))
    return violations


def is_conventional(function: Function, liveness: Optional[LivenessOracle] = None) -> bool:
    """Is ``function`` in conventional SSA form?"""
    return not conventionality_violations(function, liveness)
