"""SSA construction (Cytron et al. style).

``construct_ssa`` turns a non-SSA function (variables assigned several times,
no φ-functions) into pruned SSA:

1. φ-functions are placed at the iterated dominance frontier of each
   variable's definition blocks, restricted to blocks where the variable is
   live-in (pruned SSA, to avoid φs for dead paths);
2. a dominator-tree walk renames every definition to a fresh version and
   rewrites uses to the reaching version, filling φ-arguments edge by edge.

Variables that may be read before being written (possible in generated
workloads with loops) are given an implicit ``0`` initialisation at function
entry so the result is strict SSA.

``BrDec`` counters are left untouched (not renamed): the paper notes that such
counters "must not be promoted to SSA"; they keep a single name and both use
and define it in the terminator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.cfg.dominance import DominatorTree, dominance_frontiers, iterated_dominance_frontier
from repro.ir.function import Function
from repro.ir.instructions import BrDec, Constant, Op, Phi, Variable
from repro.liveness.dataflow import LivenessSets


def _counter_variables(function: Function) -> Set[Variable]:
    """Variables used/defined by a BrDec terminator (never promoted to SSA)."""
    counters: Set[Variable] = set()
    for block in function:
        if isinstance(block.terminator, BrDec):
            counters.add(block.terminator.counter)
    return counters


def construct_ssa(function: Function) -> Function:
    """Convert ``function`` to pruned SSA form, in place, and return it."""
    if function.has_phis():
        raise ValueError("construct_ssa expects a function without phi-functions")

    domtree = DominatorTree(function)
    frontiers = dominance_frontiers(function, domtree)
    liveness = LivenessSets(function)
    counters = _counter_variables(function)

    # ------------------------------------------------------------------ defs
    def_blocks: Dict[Variable, Set[str]] = {}
    for block in function:
        for instruction in block.instructions():
            for var in instruction.defs():
                def_blocks.setdefault(var, set()).add(block.label)
    for param in function.params:
        def_blocks.setdefault(param, set()).add(function.entry_label)  # type: ignore[arg-type]

    # Variables read before written anywhere get a zero-initialisation at entry.
    entry_block = function.entry
    zero_inits: List[Variable] = []
    for var in list(function.variables()):
        if var in counters or var in def_blocks and function.entry_label in def_blocks[var]:
            continue
        if liveness.is_live_in(function.entry_label, var) or var not in def_blocks:
            zero_inits.append(var)
    for var in zero_inits:
        entry_block.body.insert(0, Op(var, "const", [Constant(0)]))
        def_blocks.setdefault(var, set()).add(entry_block.label)
    if zero_inits:
        liveness = LivenessSets(function)  # recompute with the new defs

    # ------------------------------------------------------------ φ placement
    phis_for: Dict[str, Dict[Variable, Phi]] = {label: {} for label in function.blocks}
    for var, blocks in def_blocks.items():
        if var in counters:
            continue
        if len(blocks) == 0:
            continue
        for join in iterated_dominance_frontier(function, blocks, domtree, frontiers):
            if not liveness.is_live_in(join, var):
                continue  # pruned SSA
            if var not in phis_for[join]:
                phi = Phi(var)  # renamed below
                phis_for[join][var] = phi
    for label, block_phis in phis_for.items():
        for phi in block_phis.values():
            function.blocks[label].add_phi(phi)

    # -------------------------------------------------------------- renaming
    version_stacks: Dict[Variable, List[Variable]] = {var: [] for var in def_blocks}
    original_of: Dict[Phi, Variable] = {}
    for label, block_phis in phis_for.items():
        for var, phi in block_phis.items():
            original_of[phi] = var

    counter_names = {var.name for var in counters}

    def new_version(var: Variable) -> Variable:
        fresh = function.new_variable(var.name)
        version_stacks.setdefault(var, []).append(fresh)
        return fresh

    def current_version(var: Variable) -> Variable:
        stack = version_stacks.get(var)
        if stack:
            return stack[-1]
        return var  # parameters / counters / already-unique names

    # Parameters are their own first version.
    for param in function.params:
        version_stacks.setdefault(param, []).append(param)

    def rename_block(label: str) -> None:
        block = function.blocks[label]
        pushed: List[Variable] = []

        for phi in block.phis:
            original = original_of.get(phi, phi.dst)
            fresh = new_version(original)
            phi.dst = fresh
            pushed.append(original)

        for instruction in block.body:
            instruction.replace_uses({var: current_version(var) for var in instruction.uses()})
            for var in list(instruction.defs()):
                if var.name in counter_names:
                    continue
                fresh = new_version(var)
                instruction.replace_defs({var: fresh})
                pushed.append(var)

        terminator = block.terminator
        if terminator is not None and not isinstance(terminator, BrDec):
            terminator.replace_uses({var: current_version(var) for var in terminator.uses()})

        # Fill φ-arguments of successors for the edges leaving this block.
        for successor in function.successors(label):
            for phi in function.blocks[successor].phis:
                original = original_of.get(phi)
                if original is not None:
                    phi.set_arg(label, current_version(original))

        for child in domtree.children(label):
            rename_block(child)

        for var in pushed:
            version_stacks[var].pop()

    rename_block(function.entry_label)  # type: ignore[arg-type]
    function.invalidate_cfg()
    return function
