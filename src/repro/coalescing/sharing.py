"""Copy sharing — the paper's §III-B post-optimisation (the "Sharing" variant).

Consider a copy ``b = a`` that the coalescer could not remove (the classes of
``a`` and ``b`` interfere).  If some variable ``c`` with the *same value* as
``a`` is live just after the copy, the value is already available under ``c``'s
name, so the copy can still disappear:

1. if ``c`` is already in ``b``'s congruence class (and that class differs
   from ``a``'s), the copy is plain redundant — drop it;
2. otherwise, if ``b``'s and ``c``'s classes can be coalesced under the
   value-based rule, coalesce them and drop the copy.

This is a direct by-product of the value-based interference definition and is
only sound with it (two same-value variables may share a name even when their
live ranges overlap).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.ir.function import Function
from repro.ir.instructions import Variable
from repro.ir.positions import definition_points
from repro.interference.base import InterferenceOracle
from repro.interference.congruence import CongruenceClasses
from repro.coalescing.engine import Affinity
from repro.ssa.values import ValueTable


def _variables_by_value(function: Function, values: ValueTable) -> Dict[object, List[Variable]]:
    groups: Dict[object, List[Variable]] = {}
    for var in function.variables():
        groups.setdefault(values.value(var), []).append(var)
    return groups


def apply_copy_sharing(
    function: Function,
    classes: CongruenceClasses,
    test: InterferenceOracle,
    remaining: Iterable[Affinity],
) -> int:
    """Try to remove remaining copies by sharing an already-live same-value variable.

    Marks the removed affinities with ``affinity.shared = True`` and returns
    how many copies were removed.  Requires a value-based interference
    backend (``test.values`` must be available); any backend of the
    pluggable stack works, the sharing rule only needs the protocol surface.
    """
    values = test.values
    if values is None:
        return 0
    oracle = test.oracle
    liveness = oracle.liveness
    by_value = _variables_by_value(function, values)
    def_points = definition_points(function)
    removed = 0

    for affinity in remaining:
        if affinity.coalesced or affinity.shared:
            continue
        a, b = affinity.src, affinity.dst
        class_x = classes.class_of(a)
        class_y = classes.class_of(b)
        if class_x is class_y:
            continue

        copy_point = def_points.get(b)
        if copy_point is None:
            continue

        for c in by_value.get(values.value(a), ()):  # pragma: no branch
            if c == a or c == b:
                continue
            # ``c`` must hold the value just after the copy point.
            if not liveness.is_live_after(copy_point.block, copy_point.index, c):
                continue
            class_z = classes.class_of(c)
            if class_z is class_x:
                continue
            if class_z is class_y:
                # Case 1: b's class already contains a live same-value variable.
                affinity.shared = True
                removed += 1
                break
            # Case 2: coalesce Y and Z under the value-based rule, then drop.
            interferes, equal_anc_out = classes.interfere(class_y, class_z)
            if not interferes:
                classes.merge(class_y, class_z, equal_anc_out)
                affinity.shared = True
                removed += 1
                break

    return removed
