"""Affinity collection and the aggressive coalescing loop.

Once Method I has made the program conventional, removing copies is "nothing
but a traditional aggressive coalescing problem": each copy ``dst = src`` is
an *affinity* between two congruence classes, weighted by the estimated
execution frequency of the block that would hold the copy, and the coalescer
greedily merges the classes of the heaviest affinities first whenever they do
not interfere under the selected interference notion.

Two processing orders are provided:

* ``global`` — all affinities sorted by decreasing weight (what the paper's
  Method-I based engines do, "Us I");
* ``per_phi`` — φ-functions are processed one at a time, each φ's copies by
  decreasing weight, then the remaining (non-φ) copies: this reproduces the
  ordering constraint of the virtualized engines (Sreedhar III / "Us III"),
  where only a partial view of the interference structure is available.

Interference reaches the coalescer through the
:class:`~repro.interference.congruence.CongruenceClasses` it drives, which
are wired to one pluggable
:class:`~repro.interference.base.InterferenceOracle` backend (``matrix`` /
``query`` / ``incremental``): the loop itself never sees a concrete graph or
query object, so every backend coalesces through the identical code path —
the bit-identity guarantee the property suite checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.cfg.frequency import estimate_block_frequencies
from repro.ir.function import Function
from repro.ir.instructions import Constant, Copy, ParallelCopy, Phi, Variable
from repro.interference.congruence import CongruenceClasses
from repro.outofssa.method_i import PhiCopyInsertion


@dataclass
class Affinity:
    """One copy the coalescer would like to remove."""

    dst: Variable
    src: Variable
    weight: float
    kind: str                       #: "phi_arg", "phi_result", "copy", "pinned"
    block: str                      #: block whose (parallel) copy holds it
    phi: Optional[Phi] = None       #: owning φ for φ-related affinities
    coalesced: bool = False
    shared: bool = False            #: removed by the copy-sharing post-pass

    def key(self) -> Tuple[Variable, Variable]:
        return (self.dst, self.src)


@dataclass
class CoalescingStats:
    """Outcome of one coalescing run."""

    attempted: int = 0
    coalesced: int = 0
    shared: int = 0
    #: Candidates rejected by the parallel class-row prefilter before the
    #: serial sweep ran (0 for the ordinary serial coalescer).
    prefiltered: int = 0
    remaining_affinities: List[Affinity] = field(default_factory=list)
    #: Interference query counters at the end of the run (copied from the
    #: congruence layer: pairwise queries issued, and class-vs-class checks
    #: answered from merged matrix rows without any pairwise query).
    pair_queries: int = 0
    class_row_checks: int = 0

    @property
    def remaining(self) -> int:
        return len(self.remaining_affinities)


def collect_affinities(
    function: Function,
    insertion: Optional[PhiCopyInsertion] = None,
    frequencies: Optional[Dict[str, float]] = None,
) -> List[Affinity]:
    """Collect every copy-related affinity of ``function``.

    Includes the φ-related copies recorded by ``insertion``, plain ``Copy``
    instructions, and the components of any parallel copy already present
    (e.g. those created for calling-convention pinning).  Copies from
    constants are not affinities (a constant cannot be renamed) and are left
    for the rematerialization statistics.
    """
    frequencies = frequencies or estimate_block_frequencies(function)
    affinities: List[Affinity] = []
    seen_pairs: set = set()

    def add(dst: Variable, src, kind: str, block: str, phi: Optional[Phi] = None) -> None:
        if not isinstance(src, Variable) or dst == src:
            return
        marker = (dst, src, block)
        if marker in seen_pairs:
            return
        seen_pairs.add(marker)
        affinities.append(
            Affinity(dst=dst, src=src, weight=frequencies.get(block, 1.0),
                     kind=kind, block=block, phi=phi)
        )

    if insertion is not None:
        for copy in insertion.copies:
            add(copy.dst, copy.src, copy.kind, copy.block, copy.phi)

    for block in function:
        for pcopy, where in ((block.entry_pcopy, "entry"), (block.exit_pcopy, "exit")):
            if pcopy is None:
                continue
            for dst, src in pcopy.pairs:
                add(dst, src, f"phi_{where}", block.label)
        for instruction in block.body:
            if isinstance(instruction, Copy):
                add(instruction.dst, instruction.src, "copy", block.label)
            elif isinstance(instruction, ParallelCopy):
                for dst, src in instruction.pairs:
                    add(dst, src, "pinned", block.label)

    return affinities


class AggressiveCoalescer:
    """Greedy aggressive coalescing over congruence classes."""

    def __init__(
        self,
        classes: CongruenceClasses,
        skip_copy_pair: bool = False,
        ordering: str = "global",
    ) -> None:
        if ordering not in ("global", "per_phi"):
            raise ValueError(f"unknown ordering {ordering!r}")
        self.classes = classes
        self.skip_copy_pair = skip_copy_pair
        self.ordering = ordering

    # -- ordering ------------------------------------------------------------------
    def _ordered(self, affinities: List[Affinity]) -> List[Affinity]:
        def by_weight(affinity: Affinity) -> float:
            return -affinity.weight

        if self.ordering == "global":
            return sorted(affinities, key=by_weight)
        # per-φ processing: φ-related copies grouped by their φ (in program
        # order of appearance), each group by decreasing weight, then the
        # remaining copies by decreasing weight.
        phi_groups: Dict[int, List[Affinity]] = {}
        phi_order: List[int] = []
        others: List[Affinity] = []
        for affinity in affinities:
            if affinity.phi is not None:
                key = id(affinity.phi)
                if key not in phi_groups:
                    phi_groups[key] = []
                    phi_order.append(key)
                phi_groups[key].append(affinity)
            else:
                others.append(affinity)
        ordered: List[Affinity] = []
        for key in phi_order:
            ordered.extend(sorted(phi_groups[key], key=by_weight))
        ordered.extend(sorted(others, key=by_weight))
        return ordered

    # -- main loop ---------------------------------------------------------------------
    def run(self, affinities: Iterable[Affinity]) -> CoalescingStats:
        stats = CoalescingStats()
        for affinity in self._ordered(list(affinities)):
            stats.attempted += 1
            if self.classes.same_class(affinity.dst, affinity.src):
                affinity.coalesced = True
                stats.coalesced += 1
                continue
            merged = self.classes.try_coalesce(
                affinity.dst, affinity.src, skip_copy_pair=self.skip_copy_pair
            )
            if merged:
                affinity.coalesced = True
                stats.coalesced += 1
            else:
                stats.remaining_affinities.append(affinity)
        stats.pair_queries = self.classes.pair_queries
        stats.class_row_checks = self.classes.class_row_checks
        return stats
