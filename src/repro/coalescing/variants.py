"""The seven coalescing strategies compared in Figure 5 of the paper.

Each variant is described by:

* the interference notion used when testing two congruence classes
  (``intersect`` / ``chaitin`` / ``value``);
* whether the copy's own (source, destination) pair is exempted from the test
  (Sreedhar's SSA-based coalescing rule);
* the processing order (``global`` weight order, or ``per_phi`` — one
  φ-function at a time, the ordering constraint of the virtualized methods);
* whether the copy-sharing post-pass runs.

=================  ===========  =========  ========  =======
variant            interference skip pair  ordering  sharing
=================  ===========  =========  ========  =======
``intersect``      intersect    no         global    no
``sreedhar_i``     intersect    yes        global    no
``chaitin``        chaitin      no         global    no
``value``          value        no         global    no
``sreedhar_iii``   intersect    yes        per_phi   no
``value_is``       value        no         per_phi   no
``sharing``        value        no         per_phi   yes
=================  ===========  =========  ========  =======
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.interference.definitions import InterferenceKind


@dataclass(frozen=True)
class CoalescingVariant:
    """Description of one Figure 5 coalescing strategy."""

    name: str
    label: str
    interference: InterferenceKind
    skip_copy_pair: bool
    ordering: str
    sharing: bool


VARIANTS: List[CoalescingVariant] = [
    CoalescingVariant("intersect", "Intersect", InterferenceKind.INTERSECT, False, "global", False),
    CoalescingVariant("sreedhar_i", "Sreedhar I", InterferenceKind.INTERSECT, True, "global", False),
    CoalescingVariant("chaitin", "Chaitin", InterferenceKind.CHAITIN, False, "global", False),
    CoalescingVariant("value", "Value", InterferenceKind.VALUE, False, "global", False),
    CoalescingVariant("sreedhar_iii", "Sreedhar III", InterferenceKind.INTERSECT, True, "per_phi", False),
    CoalescingVariant("value_is", "Value + IS", InterferenceKind.VALUE, False, "per_phi", False),
    CoalescingVariant("sharing", "Sharing", InterferenceKind.VALUE, False, "per_phi", True),
]

_BY_NAME: Dict[str, CoalescingVariant] = {variant.name: variant for variant in VARIANTS}


def variant_by_name(name: str) -> CoalescingVariant:
    """Look up a Figure 5 variant by its short name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown coalescing variant {name!r}; known variants: {known}") from None
