"""Aggressive coalescing of copy-related variables (the paper's §III-B)."""

from repro.coalescing.engine import Affinity, CoalescingStats, AggressiveCoalescer, collect_affinities
from repro.coalescing.variants import CoalescingVariant, VARIANTS, variant_by_name
from repro.coalescing.sharing import apply_copy_sharing

__all__ = [
    "Affinity",
    "CoalescingStats",
    "AggressiveCoalescer",
    "collect_affinities",
    "CoalescingVariant",
    "VARIANTS",
    "variant_by_name",
    "apply_copy_sharing",
]
