"""Content addressing for IR: text digests and structural equality.

The translation service ships IR as text and keys its warm cache by
*content*: a request is a cache hit iff the same program text was translated
before under the same :meth:`~repro.outofssa.config.EngineConfig.fingerprint`.
Two helpers define what "the same program text" means:

* :func:`text_digest` — a stable hex digest of one textual IR document,
  computed over a lightly normalised form (trailing whitespace, blank lines
  and ``#`` comments dropped), so cosmetic reformatting by a client does not
  fork the cache;
* :func:`function_digest` — the digest of a :class:`~repro.ir.function.Function`
  value, via the canonical printer, so in-process callers and text-protocol
  clients address the same cache entries.

:func:`structurally_equal` is the round-trip contract of the printer/parser
pair: every printed function must re-parse to a structurally equal function
(``tests/property/test_ir_roundtrip_props.py`` enforces it over random
programs).  Structural equality is defined *through* the canonical printer —
same blocks in order, same instructions, same params and pins — which is
exactly the identity the content-addressed cache relies on.
"""

from __future__ import annotations

import hashlib

from repro.ir.function import Function
from repro.ir.printer import format_function

#: Version tag mixed into every digest; bump on printer grammar changes so a
#: persisted cache from an older build can never alias a current entry.
_DIGEST_VERSION = "ir1"


def normalize_ir_text(text: str) -> str:
    """The canonical form digests are computed over.

    Drops ``#`` comments, trailing whitespace and blank lines — everything
    the parser ignores — but deliberately does *not* re-parse: a digest must
    stay cheap enough to compute on the cache-hit fast path.  Two texts that
    differ beyond this normalisation hash differently even when they denote
    the same function; that costs one redundant cold translation, never a
    wrong answer.
    """
    lines = []
    for line in text.splitlines():
        stripped = line.split("#", 1)[0].rstrip()
        if stripped:
            lines.append(stripped)
    return "\n".join(lines)


def text_digest(text: str) -> str:
    """Stable hex digest of one textual IR document."""
    payload = _DIGEST_VERSION + "\n" + normalize_ir_text(text)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def function_digest(function: Function) -> str:
    """The :func:`text_digest` of a function's canonical printed form."""
    return text_digest(format_function(function))


def structurally_equal(a: Function, b: Function) -> bool:
    """Do two functions have identical structure (blocks, instructions,
    params, pins), independent of object identity and fresh-name counters?

    Defined through the canonical printer: the printer emits every piece of
    structural state (header with params, ``pin`` lines, blocks in program
    order, instructions with placement annotations), so print-equality *is*
    structural equality — and keeps this definition automatically in sync
    with the grammar.
    """
    return format_function(a) == format_function(b)
