"""Structural edit logs over a function.

The out-of-SSA transformation passes (φ-isolation, materialization) edit the
program in small, local ways: parallel copies appear in a handful of blocks,
an occasional critical edge is split, congruence classes are renamed to their
representatives.  An :class:`EditLog` records those edits as data so that
incremental analyses — today :class:`~repro.liveness.incremental.IncrementalBitLiveness`
— can *patch* their result instead of recomputing it from scratch.

An edit carries exactly the two facts a per-variable analysis needs:

* ``touched_blocks`` — every block whose instruction list changed.  Cached
  per-block summaries (def/use masks) for any *other* block remain exact.
* ``affected_variables`` — every variable whose def/use structure may have
  changed anywhere.  Facts about any *other* variable remain exact, because
  liveness (and the other bit-row analyses) decompose per variable.

The contract, relied on for bit-identical re-solves: **a block whose
instructions mention an affected variable must be logged as touched** (a
rename, for example, rewrites those instructions, and the pass logs each
rewritten block).  Emission helpers live with the passes that mutate —
:meth:`repro.outofssa.method_i.PhiCopyInsertion.edit_log` and the
materialization logger in :mod:`repro.pipeline.phases`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.ir.instructions import Operand, Variable

#: Edit kinds (informational; consumers key on blocks/variables, not kinds).
COPY_INSERTED = "copy_inserted"
BLOCK_SPLIT = "block_split"
BLOCK_REWRITTEN = "block_rewritten"
VARIABLES_RENAMED = "variables_renamed"


@dataclass(frozen=True)
class CFGEdit:
    """One structural edit: which blocks it touched, which variables it affects.

    ``removed`` names the subset of ``variables`` that may have *lost* a def
    or use somewhere.  The distinction matters to incremental consumers:
    facts about a variable that only gained occurrences grow monotonically
    from the existing fixpoint, while a variable that lost a use must restart
    from nothing (stale facts around a loop are self-sustaining and would
    survive re-iteration).
    """

    kind: str
    blocks: Tuple[str, ...] = ()
    variables: Tuple[Variable, ...] = ()
    removed: Tuple[Variable, ...] = ()

    def __repr__(self) -> str:
        blocks = ", ".join(self.blocks)
        variables = ", ".join(str(var) for var in self.variables)
        return f"CFGEdit({self.kind}, blocks=[{blocks}], variables=[{variables}])"


class EditLog:
    """An append-only record of structural edits to one function."""

    def __init__(self) -> None:
        self.edits: List[CFGEdit] = []
        #: Labels of blocks *created* by the logged edits (they need fresh
        #: rows in row-per-block analyses, on top of being touched).
        self.new_blocks: List[str] = []

    # -- recording ------------------------------------------------------------
    def record(self, edit: CFGEdit) -> None:
        self.edits.append(edit)

    def copy_inserted(self, block: str, dst: Variable, src: Operand) -> None:
        """A copy ``dst = src`` was inserted somewhere in ``block``.

        ``src`` only gains a use (monotone).  ``dst`` gains a *kill point*,
        which can shrink its upstream liveness when it already had other
        occurrences, so it is classified as removed-from; for the fresh
        destinations the out-of-SSA passes insert this costs nothing (a fresh
        name has no stale bits to clear).
        """
        variables = (dst, src) if isinstance(src, Variable) else (dst,)
        self.record(CFGEdit(COPY_INSERTED, (block,), variables, removed=(dst,)))

    def block_split(self, source: str, target: str, new_label: str) -> None:
        """The edge ``source -> target`` was split by inserting ``new_label``.

        ``source`` is touched (its terminator changed), ``new_label`` is new,
        and ``target`` is touched because its φ-functions were re-keyed to the
        new predecessor.
        """
        self.new_blocks.append(new_label)
        self.record(CFGEdit(BLOCK_SPLIT, (source, new_label, target)))

    def block_rewritten(
        self,
        block: str,
        variables: Iterable[Variable],
        removed: Optional[Iterable[Variable]] = None,
    ) -> None:
        """Instructions of ``block`` changed in place, involving ``variables``
        (old and new names both, for a rename).  ``removed`` narrows which of
        them may have lost occurrences; it defaults to all of them (a rewrite
        may have deleted anything)."""
        variables = tuple(variables)
        self.record(
            CFGEdit(
                BLOCK_REWRITTEN,
                (block,),
                variables,
                removed=variables if removed is None else tuple(removed),
            )
        )

    def variables_renamed(self, mapping: Dict[Variable, Variable]) -> None:
        """A rename was applied; the rewritten blocks are logged separately
        (one :func:`block_rewritten` per block), this edit only widens the
        affected-variable set with both sides of the mapping.  The old names
        lost every occurrence; the new names only gained."""
        olds = tuple(mapping)
        news = tuple(mapping.values())
        self.record(CFGEdit(VARIABLES_RENAMED, (), olds + news, removed=olds))

    def extend(self, other: "EditLog") -> None:
        self.edits.extend(other.edits)
        self.new_blocks.extend(other.new_blocks)

    # -- consumption ----------------------------------------------------------
    def touched_blocks(self) -> Set[str]:
        """Every block whose instruction list changed (new blocks included)."""
        touched: Set[str] = set()
        for edit in self.edits:
            touched.update(edit.blocks)
        return touched

    def affected_variables(self) -> List[Variable]:
        """Variables whose def/use structure may have changed (deduplicated,
        first-mention order)."""
        seen: Dict[Variable, None] = {}
        for edit in self.edits:
            for var in edit.variables:
                seen.setdefault(var, None)
        return list(seen)

    def removed_variables(self) -> List[Variable]:
        """The affected variables that may have *lost* a def or use (or gained
        a kill point) — the ones whose cached facts cannot be grown
        monotonically and must be recomputed from scratch."""
        seen: Dict[Variable, None] = {}
        for edit in self.edits:
            for var in edit.removed:
                seen.setdefault(var, None)
        return list(seen)

    def __len__(self) -> int:
        return len(self.edits)

    def __bool__(self) -> bool:
        return bool(self.edits)

    def __iter__(self):
        return iter(self.edits)

    def __repr__(self) -> str:
        return (
            f"EditLog({len(self.edits)} edits, "
            f"{len(self.touched_blocks())} blocks touched)"
        )
