"""Basic blocks.

A block is laid out as::

    label:
        φ-functions                (conceptually parallel, at block entry)
        entry parallel copy        (Method I: a0 = a'0 copies, if any)
        body instructions
        exit parallel copy         (Method I: a'i = ai copies, if any)
        terminator

φ-functions are kept in a dedicated list, and the two parallel-copy slots are
explicit fields rather than ordinary body instructions.  The *exit* parallel
copy sits just **before** the terminator: the paper's Figure 1 shows that
"insert the copy at the end of the block" must mean "before the branch", since
the branch may itself use variables.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.ir.instructions import (
    Instruction,
    ParallelCopy,
    Phi,
    Terminator,
    Variable,
)


class BasicBlock:
    """A single basic block of a :class:`~repro.ir.function.Function`."""

    __slots__ = ("label", "phis", "body", "terminator", "entry_pcopy", "exit_pcopy")

    def __init__(self, label: str) -> None:
        self.label = label
        self.phis: List[Phi] = []
        self.body: List[Instruction] = []
        self.terminator: Optional[Terminator] = None
        self.entry_pcopy: Optional[ParallelCopy] = None
        self.exit_pcopy: Optional[ParallelCopy] = None

    # -- construction --------------------------------------------------------
    def add_phi(self, phi: Phi) -> Phi:
        self.phis.append(phi)
        return phi

    def append(self, instruction: Instruction) -> Instruction:
        """Append a non-terminator instruction to the body."""
        if isinstance(instruction, Terminator):
            raise TypeError("use set_terminator() for terminators")
        if isinstance(instruction, Phi):
            raise TypeError("use add_phi() for phi-functions")
        self.body.append(instruction)
        return instruction

    def set_terminator(self, terminator: Terminator) -> Terminator:
        self.terminator = terminator
        return terminator

    # -- copy-insertion points -------------------------------------------------
    def get_entry_pcopy(self, create: bool = False) -> Optional[ParallelCopy]:
        """The parallel copy placed right after the φ-functions."""
        if self.entry_pcopy is None and create:
            self.entry_pcopy = ParallelCopy()
        return self.entry_pcopy

    def get_exit_pcopy(self, create: bool = False) -> Optional[ParallelCopy]:
        """The parallel copy placed right before the terminator."""
        if self.exit_pcopy is None and create:
            self.exit_pcopy = ParallelCopy()
        return self.exit_pcopy

    def drop_empty_pcopies(self) -> None:
        if self.entry_pcopy is not None and self.entry_pcopy.is_empty():
            self.entry_pcopy = None
        if self.exit_pcopy is not None and self.exit_pcopy.is_empty():
            self.exit_pcopy = None

    # -- queries ---------------------------------------------------------------
    def successor_labels(self) -> List[str]:
        if self.terminator is None:
            return []
        return self.terminator.targets()

    def instructions(self, include_phis: bool = True) -> Iterator[Instruction]:
        """Iterate over the instructions of the block in program order."""
        if include_phis:
            for phi in self.phis:
                yield phi
        if self.entry_pcopy is not None:
            yield self.entry_pcopy
        for instruction in self.body:
            yield instruction
        if self.exit_pcopy is not None:
            yield self.exit_pcopy
        if self.terminator is not None:
            yield self.terminator

    def non_phi_instructions(self) -> Iterator[Instruction]:
        return self.instructions(include_phis=False)

    def defined_variables(self) -> List[Variable]:
        result: List[Variable] = []
        for instruction in self.instructions():
            result.extend(instruction.defs())
        return result

    def __len__(self) -> int:
        return sum(1 for _ in self.instructions())

    def __repr__(self) -> str:
        return f"BasicBlock({self.label!r}, {len(self)} instructions)"
