"""A small fluent builder for constructing IR functions in code.

The builder keeps examples and tests short::

    fb = FunctionBuilder("max")
    a, b = fb.params("a", "b")
    entry, left, right, join = fb.blocks("entry", "left", "right", "join")
    with fb.at(entry):
        cond = fb.op("cmp_lt", a, b, name="cond")
        fb.branch(cond, "right", "left")
    ...
"""

from __future__ import annotations

import contextlib
from typing import Iterator, List, Optional, Tuple, Union

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Branch,
    BrDec,
    Call,
    Constant,
    Copy,
    Jump,
    Op,
    Operand,
    ParallelCopy,
    Phi,
    Print,
    Return,
    Variable,
)

OperandLike = Union[Operand, int, str]


class FunctionBuilder:
    """Imperative construction helper around :class:`Function`."""

    def __init__(self, name: str, params: Tuple[str, ...] = ()) -> None:
        self.function = Function(name)
        for param_name in params:
            self.function.params.append(self.var(param_name))
        self._current: Optional[BasicBlock] = None

    # -- names -----------------------------------------------------------------
    def var(self, name: str) -> Variable:
        """Return (and register) the variable called ``name``."""
        var = Variable(name)
        self.function.register_variable(var)
        return var

    def fresh(self, hint: str = "t") -> Variable:
        return self.function.new_variable(hint)

    def params(self, *names: str) -> List[Variable]:
        result = []
        for name in names:
            var = self.var(name)
            self.function.params.append(var)
            result.append(var)
        return result

    def _operand(self, value: OperandLike) -> Operand:
        if isinstance(value, str):
            return self.var(value)
        if isinstance(value, int):
            return Constant(value)
        return value

    # -- blocks ------------------------------------------------------------------
    def block(self, label: str) -> BasicBlock:
        return self.function.add_block(label)

    def blocks(self, *labels: str) -> List[BasicBlock]:
        return [self.block(label) for label in labels]

    @contextlib.contextmanager
    def at(self, block: Union[BasicBlock, str]) -> Iterator[BasicBlock]:
        """Temporarily direct instruction emission into ``block``."""
        if isinstance(block, str):
            block = self.function.blocks[block]
        previous = self._current
        self._current = block
        try:
            yield block
        finally:
            self._current = previous

    def _here(self) -> BasicBlock:
        if self._current is None:
            raise RuntimeError("no current block: use 'with fb.at(block):'")
        return self._current

    # -- instruction emission -------------------------------------------------------
    def op(self, opcode: str, *args: OperandLike, name: Optional[str] = None) -> Variable:
        dst = self.var(name) if name else self.fresh(opcode)
        self._here().append(Op(dst, opcode, [self._operand(arg) for arg in args]))
        return dst

    def const(self, value: int, name: Optional[str] = None) -> Variable:
        return self.op("const", value, name=name)

    def copy(self, dst: Union[Variable, str], src: OperandLike) -> Variable:
        dst_var = self.var(dst) if isinstance(dst, str) else dst
        self._here().append(Copy(dst_var, self._operand(src)))
        return dst_var

    def parallel_copy(self, *pairs: Tuple[Union[Variable, str], OperandLike]) -> ParallelCopy:
        pcopy = ParallelCopy()
        for dst, src in pairs:
            dst_var = self.var(dst) if isinstance(dst, str) else dst
            pcopy.add(dst_var, self._operand(src))
        self._here().append(pcopy)
        return pcopy

    def phi(self, dst: Union[Variable, str], **args: OperandLike) -> Variable:
        """Add ``dst = φ(pred_label=value, ...)`` to the current block."""
        dst_var = self.var(dst) if isinstance(dst, str) else dst
        phi = Phi(dst_var)
        for label, value in args.items():
            phi.set_arg(label, self._operand(value))
        self._here().add_phi(phi)
        return dst_var

    def call(self, callee: str, *args: OperandLike, name: Optional[str] = None,
             void: bool = False) -> Optional[Variable]:
        dst = None if void else (self.var(name) if name else self.fresh(callee))
        self._here().append(Call(dst, callee, [self._operand(arg) for arg in args]))
        return dst

    def print(self, value: OperandLike) -> None:
        self._here().append(Print(self._operand(value)))

    # -- terminators -------------------------------------------------------------------
    def jump(self, target: Union[BasicBlock, str]) -> None:
        label = target.label if isinstance(target, BasicBlock) else target
        self._here().set_terminator(Jump(label))
        self.function.invalidate_cfg()

    def branch(self, cond: OperandLike, if_true: Union[BasicBlock, str],
               if_false: Union[BasicBlock, str]) -> None:
        true_label = if_true.label if isinstance(if_true, BasicBlock) else if_true
        false_label = if_false.label if isinstance(if_false, BasicBlock) else if_false
        self._here().set_terminator(Branch(self._operand(cond), true_label, false_label))
        self.function.invalidate_cfg()

    def br_dec(self, counter: Union[Variable, str], taken: Union[BasicBlock, str],
               exit_block: Union[BasicBlock, str]) -> None:
        counter_var = self.var(counter) if isinstance(counter, str) else counter
        taken_label = taken.label if isinstance(taken, BasicBlock) else taken
        exit_label = exit_block.label if isinstance(exit_block, BasicBlock) else exit_block
        self._here().set_terminator(BrDec(counter_var, taken_label, exit_label))
        self.function.invalidate_cfg()

    def ret(self, value: Optional[OperandLike] = None) -> None:
        operand = self._operand(value) if value is not None else None
        self._here().set_terminator(Return(operand))
        self.function.invalidate_cfg()

    # -- result ----------------------------------------------------------------------------
    def finish(self) -> Function:
        """Return the built function."""
        return self.function
