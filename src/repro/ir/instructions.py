"""Instruction set of the reproduction IR.

Design notes
------------
* Every instruction exposes ``defs()`` and ``uses()`` so that the analyses
  (liveness, interference, coalescing) never need to know the concrete
  instruction kinds.
* ``ParallelCopy`` is a first-class instruction: the paper argues that keeping
  the φ-copy semantics *parallel* until the very end (Section III-C) both
  simplifies liveness bookkeeping and frees the coalescer from artificial
  ordering interferences.  Sequentialization back to plain ``Copy`` chains is
  performed by :mod:`repro.outofssa.parallel_copy` (the paper's Algorithm 1).
* ``Branch`` *uses* its condition variable and ``BrDec`` both *uses and
  defines* its counter.  These two terminators reproduce the correctness
  pitfalls of the paper's Figures 1 and 2: copies "at the end of a block" must
  actually be placed *before* the terminator, and a terminator that defines a
  variable can make φ-isolation by copy insertion impossible.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union


class Variable:
    """An IR variable (virtual register).

    Variables are compared by name: within one :class:`~repro.ir.function.Function`
    names are unique, and name-based identity keeps the textual parser/printer
    round-trip exact and test assertions readable.
    """

    __slots__ = ("name", "_hash")

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("variable name must be non-empty")
        self.name = name
        # Variables are hashed on every liveness/interference/coalescing set
        # operation; precomputing the hash keeps those paths cheap.
        self._hash = hash(("var", name))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Variable) and self.name == other.name

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return self.name


class Constant:
    """An integer literal operand."""

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        self.value = int(value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Constant) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("const", self.value))

    def __repr__(self) -> str:
        return f"Constant({self.value})"

    def __str__(self) -> str:
        return str(self.value)


Operand = Union[Variable, Constant]


def _as_operand(value: Union[Operand, int]) -> Operand:
    """Accept raw ints wherever an operand is expected (builder convenience)."""
    if isinstance(value, int):
        return Constant(value)
    if isinstance(value, (Variable, Constant)):
        return value
    raise TypeError(f"not an operand: {value!r}")


class Instruction:
    """Base class for all instructions."""

    __slots__ = ()

    def defs(self) -> List[Variable]:
        """Variables defined (written) by this instruction."""
        return []

    def uses(self) -> List[Variable]:
        """Variables used (read) by this instruction, φ-operands included."""
        return []

    def operands(self) -> List[Operand]:
        """All value operands (variables and constants) read by the instruction."""
        return list(self.uses())

    def replace_uses(self, mapping: Dict[Variable, Operand]) -> None:
        """Rewrite used variables according to ``mapping`` (in place)."""
        raise NotImplementedError

    def replace_defs(self, mapping: Dict[Variable, Variable]) -> None:
        """Rewrite defined variables according to ``mapping`` (in place)."""
        raise NotImplementedError

    @property
    def is_terminator(self) -> bool:
        return isinstance(self, Terminator)


def _subst(operand: Operand, mapping: Dict[Variable, Operand]) -> Operand:
    if isinstance(operand, Variable) and operand in mapping:
        return mapping[operand]
    return operand


def _subst_var(var: Variable, mapping: Dict[Variable, Variable]) -> Variable:
    return mapping.get(var, var)


class Op(Instruction):
    """A generic computation ``dst = opcode(operand, ...)``.

    The interpreter gives meaning to the opcodes listed in
    :data:`repro.interp.interpreter.OPCODES`; analyses treat ``Op`` opaquely
    through ``defs()``/``uses()``.
    """

    __slots__ = ("dst", "opcode", "args")

    def __init__(self, dst: Variable, opcode: str, args: Sequence[Union[Operand, int]] = ()) -> None:
        self.dst = dst
        self.opcode = opcode
        self.args: List[Operand] = [_as_operand(arg) for arg in args]

    def defs(self) -> List[Variable]:
        return [self.dst]

    def uses(self) -> List[Variable]:
        return [arg for arg in self.args if isinstance(arg, Variable)]

    def operands(self) -> List[Operand]:
        return list(self.args)

    def replace_uses(self, mapping: Dict[Variable, Operand]) -> None:
        self.args = [_subst(arg, mapping) for arg in self.args]

    def replace_defs(self, mapping: Dict[Variable, Variable]) -> None:
        self.dst = _subst_var(self.dst, mapping)

    def __repr__(self) -> str:
        return f"Op({self.dst} = {self.opcode} {', '.join(map(str, self.args))})"


class Copy(Instruction):
    """A plain sequential copy ``dst = src``."""

    __slots__ = ("dst", "src")

    def __init__(self, dst: Variable, src: Union[Operand, int]) -> None:
        self.dst = dst
        self.src: Operand = _as_operand(src)

    def defs(self) -> List[Variable]:
        return [self.dst]

    def uses(self) -> List[Variable]:
        return [self.src] if isinstance(self.src, Variable) else []

    def operands(self) -> List[Operand]:
        return [self.src]

    def replace_uses(self, mapping: Dict[Variable, Operand]) -> None:
        self.src = _subst(self.src, mapping)

    def replace_defs(self, mapping: Dict[Variable, Variable]) -> None:
        self.dst = _subst_var(self.dst, mapping)

    def __repr__(self) -> str:
        return f"Copy({self.dst} = {self.src})"


class ParallelCopy(Instruction):
    """A parallel copy ``(d1, ..., dk) = (s1, ..., sk)``.

    All sources are read before any destination is written.  Destinations must
    be pairwise distinct; duplicated destinations with sources of equal SSA
    value are resolved by the coalescer before sequentialization.
    """

    __slots__ = ("pairs",)

    def __init__(self, pairs: Optional[Iterable[Tuple[Variable, Union[Operand, int]]]] = None) -> None:
        self.pairs: List[Tuple[Variable, Operand]] = []
        if pairs is not None:
            for dst, src in pairs:
                self.add(dst, src)

    def add(self, dst: Variable, src: Union[Operand, int]) -> None:
        """Append the copy ``dst = src`` to the parallel group."""
        src_op = _as_operand(src)
        for existing_dst, _ in self.pairs:
            if existing_dst == dst:
                raise ValueError(f"parallel copy already defines {dst}")
        self.pairs.append((dst, src_op))

    def remove(self, dst: Variable) -> None:
        """Drop the component defining ``dst``."""
        self.pairs = [(d, s) for d, s in self.pairs if d != dst]

    def defs(self) -> List[Variable]:
        return [dst for dst, _ in self.pairs]

    def uses(self) -> List[Variable]:
        return [src for _, src in self.pairs if isinstance(src, Variable)]

    def operands(self) -> List[Operand]:
        return [src for _, src in self.pairs]

    def replace_uses(self, mapping: Dict[Variable, Operand]) -> None:
        self.pairs = [(dst, _subst(src, mapping)) for dst, src in self.pairs]

    def replace_defs(self, mapping: Dict[Variable, Variable]) -> None:
        self.pairs = [(_subst_var(dst, mapping), src) for dst, src in self.pairs]

    def is_empty(self) -> bool:
        return not self.pairs

    def __len__(self) -> int:
        return len(self.pairs)

    def __repr__(self) -> str:
        body = ", ".join(f"{dst} = {src}" for dst, src in self.pairs)
        return f"ParallelCopy({body})"


class Phi(Instruction):
    """A φ-function ``dst = φ(label1: v1, ..., labeln: vn)``.

    Arguments are keyed by the *label* of the predecessor block they flow
    from, which keeps the instruction valid under block re-ordering.
    """

    __slots__ = ("dst", "args")

    def __init__(self, dst: Variable, args: Optional[Dict[str, Union[Operand, int]]] = None) -> None:
        self.dst = dst
        self.args: Dict[str, Operand] = {}
        if args:
            for label, value in args.items():
                self.args[label] = _as_operand(value)

    def set_arg(self, pred_label: str, value: Union[Operand, int]) -> None:
        self.args[pred_label] = _as_operand(value)

    def arg_for(self, pred_label: str) -> Operand:
        return self.args[pred_label]

    def defs(self) -> List[Variable]:
        return [self.dst]

    def uses(self) -> List[Variable]:
        return [arg for arg in self.args.values() if isinstance(arg, Variable)]

    def operands(self) -> List[Operand]:
        return list(self.args.values())

    def replace_uses(self, mapping: Dict[Variable, Operand]) -> None:
        self.args = {label: _subst(arg, mapping) for label, arg in self.args.items()}

    def replace_defs(self, mapping: Dict[Variable, Variable]) -> None:
        self.dst = _subst_var(self.dst, mapping)

    def rename_pred(self, old_label: str, new_label: str) -> None:
        """Re-key an argument when a predecessor block is renamed/split."""
        if old_label in self.args:
            self.args[new_label] = self.args.pop(old_label)

    def __repr__(self) -> str:
        body = ", ".join(f"{label}: {arg}" for label, arg in self.args.items())
        return f"Phi({self.dst} = phi({body}))"


class Call(Instruction):
    """A call ``dst = call name(args...)``; ``dst`` may be ``None``.

    Calls are the source of register renaming constraints in the paper
    (calling conventions pin arguments and results to architectural
    registers); see :mod:`repro.outofssa.pinning`.
    """

    __slots__ = ("dst", "callee", "args")

    def __init__(self, dst: Optional[Variable], callee: str, args: Sequence[Union[Operand, int]] = ()) -> None:
        self.dst = dst
        self.callee = callee
        self.args: List[Operand] = [_as_operand(arg) for arg in args]

    def defs(self) -> List[Variable]:
        return [self.dst] if self.dst is not None else []

    def uses(self) -> List[Variable]:
        return [arg for arg in self.args if isinstance(arg, Variable)]

    def operands(self) -> List[Operand]:
        return list(self.args)

    def replace_uses(self, mapping: Dict[Variable, Operand]) -> None:
        self.args = [_subst(arg, mapping) for arg in self.args]

    def replace_defs(self, mapping: Dict[Variable, Variable]) -> None:
        if self.dst is not None:
            self.dst = _subst_var(self.dst, mapping)

    def __repr__(self) -> str:
        dst = f"{self.dst} = " if self.dst is not None else ""
        return f"Call({dst}{self.callee}({', '.join(map(str, self.args))}))"


class Print(Instruction):
    """An observable side effect; the interpreter records printed values.

    Semantic-preservation tests compare the print trace of a program before
    and after out-of-SSA translation, so sprinkling ``Print`` over generated
    workloads makes miscompilations (lost copies, swapped values) visible.
    """

    __slots__ = ("value",)

    def __init__(self, value: Union[Operand, int]) -> None:
        self.value: Operand = _as_operand(value)

    def uses(self) -> List[Variable]:
        return [self.value] if isinstance(self.value, Variable) else []

    def operands(self) -> List[Operand]:
        return [self.value]

    def replace_uses(self, mapping: Dict[Variable, Operand]) -> None:
        self.value = _subst(self.value, mapping)

    def replace_defs(self, mapping: Dict[Variable, Variable]) -> None:
        pass

    def __repr__(self) -> str:
        return f"Print({self.value})"


class Terminator(Instruction):
    """Base class of block terminators."""

    __slots__ = ()

    def targets(self) -> List[str]:
        """Labels of the successor blocks, in branch order."""
        return []

    def replace_target(self, old_label: str, new_label: str) -> None:
        """Redirect an outgoing edge (used by critical-edge splitting)."""
        raise NotImplementedError


class Jump(Terminator):
    """An unconditional jump."""

    __slots__ = ("target",)

    def __init__(self, target: str) -> None:
        self.target = target

    def targets(self) -> List[str]:
        return [self.target]

    def replace_target(self, old_label: str, new_label: str) -> None:
        if self.target == old_label:
            self.target = new_label

    def replace_uses(self, mapping: Dict[Variable, Operand]) -> None:
        pass

    def replace_defs(self, mapping: Dict[Variable, Variable]) -> None:
        pass

    def __repr__(self) -> str:
        return f"Jump({self.target})"


class Branch(Terminator):
    """A conditional branch ``br cond, if_true, if_false``.

    The branch *uses* ``cond``: this is the Figure 1 subtlety — copies placed
    "at the end" of the block actually go before this use, so correctness
    checks must consider ``cond`` live across the copy point.
    """

    __slots__ = ("cond", "if_true", "if_false")

    def __init__(self, cond: Union[Operand, int], if_true: str, if_false: str) -> None:
        self.cond: Operand = _as_operand(cond)
        self.if_true = if_true
        self.if_false = if_false

    def targets(self) -> List[str]:
        return [self.if_true, self.if_false]

    def replace_target(self, old_label: str, new_label: str) -> None:
        if self.if_true == old_label:
            self.if_true = new_label
        if self.if_false == old_label:
            self.if_false = new_label

    def uses(self) -> List[Variable]:
        return [self.cond] if isinstance(self.cond, Variable) else []

    def operands(self) -> List[Operand]:
        return [self.cond]

    def replace_uses(self, mapping: Dict[Variable, Operand]) -> None:
        self.cond = _subst(self.cond, mapping)

    def replace_defs(self, mapping: Dict[Variable, Variable]) -> None:
        pass

    def __repr__(self) -> str:
        return f"Branch({self.cond}, {self.if_true}, {self.if_false})"


class BrDec(Terminator):
    """Branch-with-decrement (hardware-loop style), the paper's Figure 2 case.

    Semantics: ``counter = counter - 1; if counter != 0 goto taken else exit``.
    The counter is both used and defined *by the terminator itself*, so its
    live range cannot be split by inserting a copy at the end of the block:
    out-of-SSA translation by copy insertion alone may be impossible and edge
    splitting is required (see :class:`repro.outofssa.method_i.IsolationError`).
    """

    __slots__ = ("counter", "taken", "exit")

    def __init__(self, counter: Variable, taken: str, exit_label: str) -> None:
        if not isinstance(counter, Variable):
            raise TypeError("BrDec counter must be a variable")
        self.counter = counter
        self.taken = taken
        self.exit = exit_label

    def targets(self) -> List[str]:
        return [self.taken, self.exit]

    def replace_target(self, old_label: str, new_label: str) -> None:
        if self.taken == old_label:
            self.taken = new_label
        if self.exit == old_label:
            self.exit = new_label

    def defs(self) -> List[Variable]:
        return [self.counter]

    def uses(self) -> List[Variable]:
        return [self.counter]

    def operands(self) -> List[Operand]:
        return [self.counter]

    def replace_uses(self, mapping: Dict[Variable, Operand]) -> None:
        replacement = mapping.get(self.counter)
        if replacement is not None:
            if not isinstance(replacement, Variable):
                raise TypeError("BrDec counter cannot be replaced by a constant")
            self.counter = replacement

    def replace_defs(self, mapping: Dict[Variable, Variable]) -> None:
        self.counter = _subst_var(self.counter, mapping)

    def __repr__(self) -> str:
        return f"BrDec({self.counter}, {self.taken}, {self.exit})"


class Return(Terminator):
    """Function return, with an optional value."""

    __slots__ = ("value",)

    def __init__(self, value: Optional[Union[Operand, int]] = None) -> None:
        self.value: Optional[Operand] = _as_operand(value) if value is not None else None

    def uses(self) -> List[Variable]:
        return [self.value] if isinstance(self.value, Variable) else []

    def operands(self) -> List[Operand]:
        return [self.value] if self.value is not None else []

    def replace_uses(self, mapping: Dict[Variable, Operand]) -> None:
        if self.value is not None:
            self.value = _subst(self.value, mapping)

    def replace_defs(self, mapping: Dict[Variable, Variable]) -> None:
        pass

    def __repr__(self) -> str:
        return f"Return({self.value})"
