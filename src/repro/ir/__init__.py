"""Intermediate representation used throughout the reproduction.

The IR is a conventional three-address, basic-block based representation with
explicit φ-functions and *parallel copies* (the semantics the paper insists
on), plus the DSP-style branch-with-decrement terminator (``BrDec``) needed to
reproduce the paper's Figure 2 pathology.
"""

from repro.ir.instructions import (
    Operand,
    Variable,
    Constant,
    Instruction,
    Op,
    Copy,
    ParallelCopy,
    Phi,
    Call,
    Print,
    Jump,
    Branch,
    BrDec,
    Return,
    Terminator,
)
from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.builder import FunctionBuilder
from repro.ir.printer import format_function, format_instruction
from repro.ir.parser import parse_function
from repro.ir.digest import function_digest, structurally_equal, text_digest
from repro.ir.validate import ValidationError, validate_function, validate_ssa

__all__ = [
    "Operand",
    "Variable",
    "Constant",
    "Instruction",
    "Op",
    "Copy",
    "ParallelCopy",
    "Phi",
    "Call",
    "Print",
    "Jump",
    "Branch",
    "BrDec",
    "Return",
    "Terminator",
    "BasicBlock",
    "Function",
    "FunctionBuilder",
    "format_function",
    "format_instruction",
    "function_digest",
    "parse_function",
    "structurally_equal",
    "text_digest",
    "ValidationError",
    "validate_function",
    "validate_ssa",
]
