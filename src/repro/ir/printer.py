"""Textual printer for the IR.

The format round-trips through :mod:`repro.ir.parser`, is stable (blocks and
instructions print in program order), and is what examples and failing tests
show to the user.
"""

from __future__ import annotations

from typing import List

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Branch,
    BrDec,
    Call,
    Copy,
    Instruction,
    Jump,
    Op,
    Operand,
    ParallelCopy,
    Phi,
    Print,
    Return,
)


def format_operand(operand: Operand) -> str:
    return str(operand)


def format_instruction(instruction: Instruction) -> str:
    """Render one instruction in the textual syntax (no indentation)."""
    if isinstance(instruction, Phi):
        args = ", ".join(f"{label}: {format_operand(arg)}" for label, arg in instruction.args.items())
        return f"{instruction.dst} = phi [{args}]"
    if isinstance(instruction, Copy):
        return f"{instruction.dst} = copy {format_operand(instruction.src)}"
    if isinstance(instruction, ParallelCopy):
        if not instruction.pairs:
            return "pcopy"
        pairs = ", ".join(f"{dst} <- {format_operand(src)}" for dst, src in instruction.pairs)
        return f"pcopy {pairs}"
    if isinstance(instruction, Op):
        args = ", ".join(format_operand(arg) for arg in instruction.args)
        return f"{instruction.dst} = {instruction.opcode} {args}".rstrip()
    if isinstance(instruction, Call):
        args = ", ".join(format_operand(arg) for arg in instruction.args)
        if instruction.dst is not None:
            return f"{instruction.dst} = call {instruction.callee}({args})"
        return f"call {instruction.callee}({args})"
    if isinstance(instruction, Print):
        return f"print {format_operand(instruction.value)}"
    if isinstance(instruction, Jump):
        return f"jump {instruction.target}"
    if isinstance(instruction, Branch):
        return f"br {format_operand(instruction.cond)}, {instruction.if_true}, {instruction.if_false}"
    if isinstance(instruction, BrDec):
        return f"brdec {instruction.counter}, {instruction.taken}, {instruction.exit}"
    if isinstance(instruction, Return):
        if instruction.value is not None:
            return f"ret {format_operand(instruction.value)}"
        return "ret"
    raise TypeError(f"unknown instruction {instruction!r}")


def format_block(block: BasicBlock, indent: str = "  ") -> str:
    lines: List[str] = [f"{indent}{block.label}:"]
    inner = indent * 2
    for phi in block.phis:
        lines.append(f"{inner}{format_instruction(phi)}")
    if block.entry_pcopy is not None and not block.entry_pcopy.is_empty():
        lines.append(f"{inner}{format_instruction(block.entry_pcopy)} @entry")
    for instruction in block.body:
        lines.append(f"{inner}{format_instruction(instruction)}")
    if block.exit_pcopy is not None and not block.exit_pcopy.is_empty():
        lines.append(f"{inner}{format_instruction(block.exit_pcopy)} @exit")
    if block.terminator is not None:
        lines.append(f"{inner}{format_instruction(block.terminator)}")
    return "\n".join(lines)


def format_function(function: Function) -> str:
    """Render a whole function; the output parses back with ``parse_function``."""
    params = ", ".join(str(param) for param in function.params)
    lines = [f"function {function.name}({params}) {{"]
    # Pins print sorted by variable name so the canonical text (and therefore
    # the content digest) does not depend on pin *insertion* order; the parser
    # rebuilds the mapping, for which order is immaterial.
    for var, register in sorted(function.pinned.items(), key=lambda item: str(item[0])):
        lines.append(f"  pin {var} {register}")
    for block in function:
        lines.append(format_block(block))
    lines.append("}")
    return "\n".join(lines) + "\n"
