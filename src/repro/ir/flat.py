"""The flat arena IR core: contiguous int tables lowered once per function.

Every hot sweep in the out-of-SSA stack — the bit-set liveness worklist, the
SCC condensation walk, the interference edge scan — is a loop over the CFG
and the def/use chains.  Walking the object graph (`Function` → `BasicBlock`
→ instruction objects, label-keyed dicts at every hop) makes each step of
those loops a hash lookup plus attribute dereferences.  `FlatFunction`
lowers the function *once* into dense integer tables so the same loops run
over `array('l')` rows and int masks:

* blocks become dense ids ``0 .. n-1`` in **reverse post-order** (unreachable
  blocks appended in declaration order), so a block id *is* its RPO position
  and the worklist seeding orders are plain integer ranges;
* successor and predecessor edges are CSR tables (one offsets array, one
  flat ids array);
* per-block instruction rows are spans into per-instruction tables: a use
  mask (bit = `VariableNumbering` id), and a defs span into ``def_ids`` with
  a parallel ``def_src`` column recording the copy source id of `Copy` /
  `ParallelCopy` destinations (``-1`` otherwise — that column is what the
  CHAITIN interference variant consults);
* the per-block liveness transfer masks (defs, upward-exposed uses, φ-defs)
  and the per-edge φ-argument masks are precomputed in the same shapes
  `BitLivenessSets` uses, so the flat and object solvers are bit-for-bit
  interchangeable.

The arena is registered as a cached analysis (generation-stamped like every
other entry in :class:`~repro.pipeline.analysis.AnalysisCache`) and is
patched through the same :class:`~repro.ir.editlog.EditLog` seam the
incremental analyses use: :meth:`apply_edits` re-lowers only the touched
blocks' instruction rows and splices the untouched spans over, rebuilding
the (cheap) CFG tables from scratch.

Variable identity is shared, not duplicated: every id in the tables comes
from the one :class:`~repro.liveness.numbering.VariableNumbering` the bit-set
liveness rows and the interference bit-matrix already key on, so masks move
between the arena, the liveness rows, and the matrix rows without any
translation.  See ``docs/FLATIR.md`` for the full layout and the patching
contract.
"""

from __future__ import annotations

import time
from array import array
from typing import Dict, List, Optional, Tuple

from repro.cfg.traversal import reverse_postorder
from repro.ir.editlog import EditLog
from repro.ir.function import Function
from repro.ir.instructions import Copy, ParallelCopy, Variable
from repro.liveness.numbering import VariableNumbering

#: Per-block instruction segment: (use masks, per-row def counts, def ids,
#: def source ids, defs mask, upward-exposed mask, φ-defs mask).  The unit
#: `apply_edits` re-lowers or splices.
_Segment = Tuple[List[int], List[int], List[int], List[int], int, int, int]


class FlatFunction:
    """Dense int-table view of a :class:`Function` (see module docstring)."""

    __slots__ = (
        "function",
        "numbering",
        "labels",
        "ids",
        "entry",
        "decl",
        "params",
        "succ_off",
        "succ_ids",
        "pred_off",
        "pred_ids",
        "edge_phi",
        "phi_edge",
        "defs_mask",
        "upward_mask",
        "phi_defs_mask",
        "instr_off",
        "use_masks",
        "def_off",
        "def_ids",
        "def_src",
        "generation",
        "lowering_seconds",
        "nbytes",
    )

    def __init__(
        self, function: Function, numbering: Optional[VariableNumbering] = None
    ) -> None:
        began = time.perf_counter()
        if numbering is None:
            numbering = VariableNumbering.of_function(function)
        #: The lowered function and the shared variable numbering.  The
        #: numbering is *appended to* (``ensure``) while lowering, exactly as
        #: the bit-set liveness constructor does, so ids agree across cores.
        self.function = function
        self.numbering = numbering
        self._build({})
        self.lowering_seconds = time.perf_counter() - began

    @classmethod
    def lower(
        cls, function: Function, numbering: Optional[VariableNumbering] = None
    ) -> "FlatFunction":
        """Lower ``function`` into a fresh arena (alias of the constructor)."""
        return cls(function, numbering)

    # -- lowering -------------------------------------------------------------
    @staticmethod
    def _lower_block(block, numbering: VariableNumbering) -> _Segment:
        """Lower one block's instruction rows.

        φ rows come first (their arguments are edge uses, so their use mask
        is 0 here and lives in the φ-edge tables instead), then the
        body/pcopy/terminator rows in schedule order — the same order
        ``block.instructions(include_phis=False)`` yields.  The running defs
        mask reproduces ``BitLivenessSets._block_masks``: a use is
        upward-exposed iff no earlier row in the block defined it.

        This is the hot loop of a lowering (one pass over every instruction
        of the function), so ``Copy`` / ``ParallelCopy`` operands are read
        directly instead of through ``uses()``/``defs()`` list building, and
        the numbering's index dict is consulted first — ``ensure`` only runs
        on a genuinely new variable.
        """
        index_get = numbering._index.get
        ensure = numbering.ensure
        use_masks: List[int] = []
        def_counts: List[int] = []
        def_ids: List[int] = []
        def_src: List[int] = []
        use_append = use_masks.append
        count_append = def_counts.append
        id_append = def_ids.append
        src_append = def_src.append
        defs = 0
        upward = 0
        phi_defs = 0
        for phi in block.phis:
            dst = phi.dst
            index = index_get(dst)
            if index is None:
                index = ensure(dst)
            phi_defs |= 1 << index
            use_append(0)
            count_append(1)
            id_append(index)
            src_append(-1)
        for instruction in block.instructions(include_phis=False):
            use_mask = 0
            if isinstance(instruction, Copy):
                src = instruction.src
                if isinstance(src, Variable):
                    source = index_get(src)
                    if source is None:
                        source = ensure(src)
                    use_mask = 1 << source
                    if not defs & use_mask:
                        upward |= use_mask
                else:
                    source = -1
                dst = instruction.dst
                index = index_get(dst)
                if index is None:
                    index = ensure(dst)
                id_append(index)
                src_append(source)
                defs |= 1 << index
                count = 1
            elif isinstance(instruction, ParallelCopy):
                pairs = instruction.pairs
                for _, src in pairs:
                    if isinstance(src, Variable):
                        index = index_get(src)
                        if index is None:
                            index = ensure(src)
                        bit = 1 << index
                        use_mask |= bit
                        if not defs & bit:
                            upward |= bit
                count = 0
                for dst, src in pairs:
                    index = index_get(dst)
                    if index is None:
                        index = ensure(dst)
                    if isinstance(src, Variable):
                        source = index_get(src)
                        if source is None:
                            source = ensure(src)
                    else:
                        source = -1
                    id_append(index)
                    src_append(source)
                    defs |= 1 << index
                    count += 1
            else:
                for var in instruction.uses():
                    index = index_get(var)
                    if index is None:
                        index = ensure(var)
                    bit = 1 << index
                    use_mask |= bit
                    if not defs & bit:
                        upward |= bit
                count = 0
                for var in instruction.defs():
                    index = index_get(var)
                    if index is None:
                        index = ensure(var)
                    id_append(index)
                    src_append(-1)
                    defs |= 1 << index
                    count += 1
            use_append(use_mask)
            count_append(count)
        return (
            use_masks,
            def_counts,
            def_ids,
            def_src,
            defs | phi_defs,
            upward & ~phi_defs,
            phi_defs,
        )

    def _build(self, segments: Dict[str, _Segment]) -> None:
        """(Re)build every table; ``segments`` supplies pre-lowered per-block
        instruction rows for blocks whose contents did not change."""
        function = self.function
        blocks = function.blocks
        ensure = self.numbering.ensure

        # Block order: RPO-indexed ids (id == RPO position), unreachable
        # blocks appended in declaration order — the exact positions
        # `BitLivenessSets._rpo_positions` assigns.
        order = reverse_postorder(function)
        if len(order) != len(blocks):
            reached = set(order)
            order = order + [label for label in blocks if label not in reached]
        self.labels = order
        self.ids = ids = {label: b for b, label in enumerate(order)}
        self.entry = (
            ids[function.entry_label] if function.entry_label is not None else -1
        )
        num_blocks = len(order)
        self.decl = array("l", (ids[label] for label in blocks))
        self.params = array("l", (ensure(param) for param in function.params))

        # CFG edges as CSR: successors in terminator order; predecessors in
        # declaration order of the source block, duplicate edges preserved —
        # the orders `Function.successors` / `Function.predecessors` report.
        succ_off = array("l", [0])
        succ_ids = array("l")
        for label in order:
            for target in blocks[label].successor_labels():
                succ_ids.append(ids[target])
            succ_off.append(len(succ_ids))
        pred_lists: List[List[int]] = [[] for _ in range(num_blocks)]
        for label in blocks:
            source = ids[label]
            for position in range(succ_off[source], succ_off[source + 1]):
                pred_lists[succ_ids[position]].append(source)
        pred_off = array("l", [0])
        pred_ids = array("l")
        for preds in pred_lists:
            pred_ids.extend(preds)
            pred_off.append(len(pred_ids))
        self.succ_off = succ_off
        self.succ_ids = succ_ids
        self.pred_off = pred_off
        self.pred_ids = pred_ids

        # Per-block instruction rows and liveness transfer masks.
        defs_mask: List[int] = []
        upward_mask: List[int] = []
        phi_defs_mask: List[int] = []
        instr_off = array("l", [0])
        use_masks: List[int] = []
        def_off = array("l", [0])
        def_ids = array("l")
        def_src = array("l")
        lower_block = self._lower_block
        numbering = self.numbering
        running = 0
        for label in order:
            segment = segments.get(label)
            if segment is None:
                segment = lower_block(blocks[label], numbering)
            uses, counts, dids, dsrc, defs, upward, phi_defs = segment
            use_masks.extend(uses)
            for count in counts:
                running += count
                def_off.append(running)
            def_ids.extend(dids)
            def_src.extend(dsrc)
            instr_off.append(len(use_masks))
            defs_mask.append(defs)
            upward_mask.append(upward)
            phi_defs_mask.append(phi_defs)
        self.defs_mask = defs_mask
        self.upward_mask = upward_mask
        self.phi_defs_mask = phi_defs_mask
        self.instr_off = instr_off
        self.use_masks = use_masks
        self.def_off = def_off
        self.def_ids = def_ids
        self.def_src = def_src

        # φ-argument edge masks: label-keyed (what the object solver reads)
        # and aligned with the successor CSR (what the flat solver reads).
        phi_edge: Dict[Tuple[str, str], int] = {}
        for label, block in blocks.items():
            for phi in block.phis:
                for pred, arg in phi.args.items():
                    if isinstance(arg, Variable):
                        key = (pred, label)
                        phi_edge[key] = phi_edge.get(key, 0) | 1 << ensure(arg)
        self.phi_edge = phi_edge
        edge_phi = [0] * len(succ_ids)
        if phi_edge:
            by_ids = {
                (ids[pred], ids[succ]): mask
                for (pred, succ), mask in phi_edge.items()
                if pred in ids and succ in ids
            }
            for source in range(num_blocks):
                for position in range(succ_off[source], succ_off[source + 1]):
                    mask = by_ids.get((source, succ_ids[position]))
                    if mask:
                        edge_phi[position] = mask
        self.edge_phi = edge_phi

        self.generation = function.generation
        self.nbytes = self._measure()

    # -- EditLog patching -----------------------------------------------------
    def _segment(self, label: str) -> _Segment:
        """Extract a block's instruction rows back out of the global tables."""
        block_id = self.ids[label]
        row0 = self.instr_off[block_id]
        row1 = self.instr_off[block_id + 1]
        use_masks = self.use_masks[row0:row1]
        def_off = self.def_off
        def_counts = [def_off[row + 1] - def_off[row] for row in range(row0, row1)]
        span0 = def_off[row0]
        span1 = def_off[row1]
        return (
            use_masks,
            def_counts,
            list(self.def_ids[span0:span1]),
            list(self.def_src[span0:span1]),
            self.defs_mask[block_id],
            self.upward_mask[block_id],
            self.phi_defs_mask[block_id],
        )

    def apply_edits(self, log: EditLog) -> None:
        """Patch the arena from one edit log (the PR 3–4 incremental seam).

        The expensive part of a lowering is the per-block instruction rows;
        only the rows of blocks the log touched (or created) are re-lowered —
        every other block's segment is spliced over unchanged.  The CFG
        tables (order, edges, φ-edge masks) are small and order-sensitive,
        so they are rebuilt outright; the result is table-for-table equal to
        a fresh lowering of the edited function.
        """
        began = time.perf_counter()
        ensure = self.numbering.ensure
        for var in log.affected_variables():
            ensure(var)
        blocks = self.function.blocks
        touched = {label for label in log.touched_blocks() if label in blocks}
        touched.update(label for label in log.new_blocks if label in blocks)
        kept: Dict[str, _Segment] = {}
        for label in self.labels:
            if label in touched or label not in blocks:
                continue
            kept[label] = self._segment(label)
        self._build(kept)
        self.lowering_seconds += time.perf_counter() - began

    # -- round-trip helpers (property tests, diagnostics) ---------------------
    def successors_of(self, label: str) -> List[str]:
        block_id = self.ids[label]
        return [
            self.labels[self.succ_ids[position]]
            for position in range(
                self.succ_off[block_id], self.succ_off[block_id + 1]
            )
        ]

    def predecessors_of(self, label: str) -> List[str]:
        block_id = self.ids[label]
        return [
            self.labels[self.pred_ids[position]]
            for position in range(
                self.pred_off[block_id], self.pred_off[block_id + 1]
            )
        ]

    def block_masks(self, label: str) -> Tuple[int, int, int]:
        """(defs, upward-exposed, φ-defs) masks — ``_block_masks`` shape."""
        block_id = self.ids[label]
        return (
            self.defs_mask[block_id],
            self.upward_mask[block_id],
            self.phi_defs_mask[block_id],
        )

    def instruction_rows(self, label: str) -> List[Tuple[Tuple[int, ...], Tuple[int, ...], int]]:
        """Per-instruction ``(def ids, def source ids, use mask)`` rows."""
        block_id = self.ids[label]
        rows = []
        for row in range(self.instr_off[block_id], self.instr_off[block_id + 1]):
            span0 = self.def_off[row]
            span1 = self.def_off[row + 1]
            rows.append(
                (
                    tuple(self.def_ids[span0:span1]),
                    tuple(self.def_src[span0:span1]),
                    self.use_masks[row],
                )
            )
        return rows

    def components(self) -> List[List[int]]:
        """SCCs over the arena's edge table (block ids, same emission and
        membership order as :func:`repro.cfg.scc.strongly_connected_components`
        on the object graph — the label walk uses the same root and successor
        orders, and components are keyed by discovery order, not id)."""
        from repro.cfg.scc import flat_strongly_connected_components

        num_blocks = len(self.labels)
        if self.entry < 0:
            roots: List[int] = list(self.decl)
        else:
            entry = self.entry
            roots = [entry] + [b for b in self.decl if b != entry]
        return flat_strongly_connected_components(
            num_blocks, self.succ_off, self.succ_ids, roots
        )

    # -- memory accounting ----------------------------------------------------
    def _measure(self) -> int:
        """Measured byte size of the tables: exact for the ``array('l')``
        rows, payload bytes (``bit_length/8`` + one pointer) for the int-mask
        lists — the number `OutOfSSAStats.flat_bytes` reports next to
        ``matrix_bytes``."""
        total = 0
        for table in (
            self.decl,
            self.params,
            self.succ_off,
            self.succ_ids,
            self.pred_off,
            self.pred_ids,
            self.instr_off,
            self.def_off,
            self.def_ids,
            self.def_src,
        ):
            total += table.itemsize * len(table)
        for masks in (
            self.defs_mask,
            self.upward_mask,
            self.phi_defs_mask,
            self.use_masks,
            self.edge_phi,
        ):
            total += 8 * len(masks)
            for mask in masks:
                total += (mask.bit_length() + 7) // 8
        for mask in self.phi_edge.values():
            total += (mask.bit_length() + 7) // 8
        return total

    def footprint_bytes(self) -> int:
        return self.nbytes
