"""Structural and SSA validation of IR functions.

``validate_function`` checks the invariants any function must satisfy
(terminators present, branch targets exist, φ arguments cover exactly the
predecessors...).  ``validate_ssa`` additionally checks strict SSA form:
single assignment and the dominance property (every use dominated by its
definition).  The ``br_dec`` counter is the one documented exception — the
paper notes such counters are either "not promoted to SSA" or handled by edge
splitting — and is accepted when ``allow_counter_redefinition`` is set.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    BrDec,
    Constant,
    Instruction,
    Phi,
    Terminator,
    Variable,
)


class ValidationError(ValueError):
    """Raised when a function violates an IR or SSA invariant."""


def validate_function(function: Function) -> None:
    """Check structural sanity of ``function``; raise ValidationError if broken."""
    if not function.blocks:
        raise ValidationError(f"{function.name}: function has no blocks")
    if function.entry_label not in function.blocks:
        raise ValidationError(f"{function.name}: entry label {function.entry_label!r} missing")

    for block in function:
        if block.terminator is None:
            raise ValidationError(f"{function.name}:{block.label}: missing terminator")
        for target in block.terminator.targets():
            if target not in function.blocks:
                raise ValidationError(
                    f"{function.name}:{block.label}: branch to unknown block {target!r}"
                )
        for instruction in block.body:
            if isinstance(instruction, (Phi, Terminator)):
                raise ValidationError(
                    f"{function.name}:{block.label}: {instruction!r} may not appear in a block body"
                )

    # φ arguments must exactly cover the predecessors.  Validation is
    # read-only: refresh the predecessor cache defensively, but do not
    # advance the structural generation (that would spuriously invalidate
    # generation-stamped analyses of an unchanged function).
    function.refresh_cfg_cache()
    for block in function:
        if not block.phis:
            continue
        preds = set(function.predecessors(block.label))
        if not preds:
            raise ValidationError(
                f"{function.name}:{block.label}: phi-functions in a block with no predecessors"
            )
        for phi in block.phis:
            labels = set(phi.args)
            if labels != preds:
                raise ValidationError(
                    f"{function.name}:{block.label}: phi {phi.dst} arguments {sorted(labels)} "
                    f"do not match predecessors {sorted(preds)}"
                )

    # The entry block must not have predecessors (keeps dominance simple).
    if function.predecessors(function.entry_label):
        raise ValidationError(
            f"{function.name}: entry block {function.entry_label!r} has predecessors"
        )


def _definition_sites(function: Function) -> Dict[Variable, List[Tuple[str, Instruction]]]:
    sites: Dict[Variable, List[Tuple[str, Instruction]]] = {}
    for block in function:
        for instruction in block.instructions():
            for var in instruction.defs():
                sites.setdefault(var, []).append((block.label, instruction))
    return sites


def validate_ssa(function: Function, allow_counter_redefinition: bool = True) -> None:
    """Check strict SSA form (single defs + dominance property)."""
    validate_function(function)
    from repro.cfg.dominance import DominatorTree  # local import: avoid package cycle
    from repro.ir.positions import definition_point, use_points

    sites = _definition_sites(function)
    params = set(function.params)

    # Single assignment.
    for var, var_sites in sites.items():
        non_counter_sites = [
            site for site in var_sites
            if not (allow_counter_redefinition and isinstance(site[1], BrDec))
        ]
        limit = 1
        if var in params:
            limit = 0
        if len(non_counter_sites) > limit:
            raise ValidationError(
                f"{function.name}: variable {var} has {len(var_sites)} definitions"
            )

    # Dominance property: each use is dominated by its definition.
    domtree = DominatorTree(function)
    def_points = {var: definition_point(function, var) for var in sites}
    for var, uses in use_points(function).items():
        if var in params:
            continue  # parameters are defined at the (virtual) function entry
        def_point = def_points.get(var)
        if def_point is None:
            raise ValidationError(f"{function.name}: variable {var} used but never defined")
        for use_point in uses:
            if not def_point.dominates(use_point, domtree):
                raise ValidationError(
                    f"{function.name}: use of {var} at {use_point} not dominated by its "
                    f"definition at {def_point}"
                )


def defined_variables(function: Function) -> Set[Variable]:
    """All variables with at least one definition (or declared as parameters)."""
    result: Set[Variable] = set(function.params)
    for block in function:
        for instruction in block.instructions():
            result.update(instruction.defs())
    return result


def used_before_defined(function: Function) -> Set[Variable]:
    """Variables used somewhere but never defined anywhere (diagnostic helper)."""
    defined = defined_variables(function)
    used: Set[Variable] = set()
    for block in function:
        for instruction in block.instructions():
            used.update(instruction.uses())
    return {var for var in used if var not in defined}
