"""Structural and SSA validation of IR functions.

``validate_function`` checks the invariants any function must satisfy
(terminators present, branch targets exist, φ arguments cover exactly the
predecessors...).  ``validate_ssa`` additionally checks strict SSA form:
single assignment and the dominance property (every use dominated by its
definition).  The ``br_dec`` counter is the one documented exception — the
paper notes such counters are either "not promoted to SSA" or handled by edge
splitting — and is accepted when ``allow_counter_redefinition`` is set.

Both functions are thin raising shims over the collecting checkers of
:mod:`repro.verify.checks`: they run the corresponding checker and raise a
:class:`ValidationError` built from the first *error*-severity diagnostic.
Warning-level findings — uses inside unreachable blocks (``V204``), whose
dominance cannot be judged — do not raise; callers who want every finding
(with stable codes and anchors) should call the checkers directly or use
``repro verify``.
"""

from __future__ import annotations

from typing import List, Set

from repro.ir.function import Function
from repro.ir.instructions import Variable


class ValidationError(ValueError):
    """Raised when a function violates an IR or SSA invariant."""


def _raise_first_error(diagnostics: List) -> None:
    for diag in diagnostics:
        if diag.is_error:
            anchor = diag.anchor()
            prefix = f"{anchor}: " if anchor else ""
            raise ValidationError(f"{prefix}{diag.message}")


def validate_function(function: Function) -> None:
    """Check structural sanity of ``function``; raise ValidationError if broken."""
    from repro.verify.checks import check_structure  # lazy: repro.ir imports this module

    _raise_first_error(check_structure(function))


def validate_ssa(function: Function, allow_counter_redefinition: bool = True) -> None:
    """Check strict SSA form (single defs + dominance property)."""
    validate_function(function)
    from repro.verify.checks import check_ssa  # lazy: repro.ir imports this module

    _raise_first_error(
        check_ssa(function, allow_counter_redefinition=allow_counter_redefinition)
    )


def defined_variables(function: Function) -> Set[Variable]:
    """All variables with at least one definition (or declared as parameters)."""
    result: Set[Variable] = set(function.params)
    for block in function:
        for instruction in block.instructions():
            result.update(instruction.defs())
    return result


def used_before_defined(function: Function) -> Set[Variable]:
    """Variables used somewhere but never defined anywhere (diagnostic helper)."""
    defined = defined_variables(function)
    used: Set[Variable] = set()
    for block in function:
        for instruction in block.instructions():
            used.update(instruction.uses())
    return {var for var in used if var not in defined}
