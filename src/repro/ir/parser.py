"""Parser for the textual IR syntax produced by :mod:`repro.ir.printer`.

The grammar (one instruction per line, ``#`` starts a comment)::

    function NAME(param, ...) {
      pin VAR REGISTER
      LABEL:
        x = phi [pred: value, ...]
        x = copy value
        x = OPCODE value, ...
        x = call NAME(value, ...)
        call NAME(value, ...)
        pcopy x <- value, y <- value [@entry|@exit]
        print value
        jump LABEL
        br value, LABEL, LABEL
        brdec VAR, LABEL, LABEL
        ret [value]
    }

Values are either variable names or integer literals.
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Branch,
    BrDec,
    Call,
    Constant,
    Copy,
    Jump,
    Op,
    Operand,
    ParallelCopy,
    Phi,
    Print,
    Return,
    Variable,
)


class ParseError(ValueError):
    """Raised on malformed textual IR."""

    def __init__(self, message: str, line_number: int, line: str) -> None:
        super().__init__(f"line {line_number}: {message}: {line.strip()!r}")
        self.line_number = line_number
        self.line = line


_IDENT = r"[A-Za-z_][A-Za-z_0-9.']*"
_FUNC_NAME = r"[A-Za-z_0-9.']+"
_HEADER_RE = re.compile(rf"^function\s+({_FUNC_NAME})\s*\(([^)]*)\)\s*{{$")
_LABEL_RE = re.compile(rf"^({_IDENT}):$")
_PIN_RE = re.compile(rf"^pin\s+({_IDENT})\s+(\S+)$")
# Callees share the *function-name* grammar (which admits leading digits, as
# in the suite's "164.gzip"-style names), not the variable grammar — a
# printed call must re-parse whatever the printed header accepted.
_CALL_RE = re.compile(rf"^(?:({_IDENT})\s*=\s*)?call\s+({_FUNC_NAME})\s*\(([^)]*)\)$")
_PHI_RE = re.compile(rf"^({_IDENT})\s*=\s*phi\s*\[(.*)\]$")
_ASSIGN_RE = re.compile(rf"^({_IDENT})\s*=\s*({_IDENT})\s*(.*)$")


def _parse_value(token: str, function: Function) -> Operand:
    token = token.strip()
    if re.fullmatch(r"-?\d+", token):
        return Constant(int(token))
    if re.fullmatch(_IDENT, token):
        return function.register_variable(Variable(token))
    raise ValueError(f"bad operand {token!r}")


def _parse_values(text: str, function: Function) -> List[Operand]:
    text = text.strip()
    if not text:
        return []
    return [_parse_value(part, function) for part in text.split(",")]


def parse_function(text: str) -> Function:
    """Parse one function from ``text``."""
    function: Optional[Function] = None
    current: Optional[BasicBlock] = None
    closed = False

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if closed:
            raise ParseError("text after closing brace", line_number, raw_line)

        if function is None:
            match = _HEADER_RE.match(line)
            if not match:
                raise ParseError("expected function header", line_number, raw_line)
            name, params_text = match.groups()
            function = Function(name)
            for param in params_text.split(","):
                param = param.strip()
                if param:
                    function.params.append(function.register_variable(Variable(param)))
            continue

        if line == "}":
            closed = True
            continue

        pin_match = _PIN_RE.match(line)
        if pin_match:
            var_name, register = pin_match.groups()
            function.pin(function.register_variable(Variable(var_name)), register)
            continue

        label_match = _LABEL_RE.match(line)
        if label_match:
            current = function.add_block(label_match.group(1))
            continue

        if current is None:
            raise ParseError("instruction outside of a block", line_number, raw_line)

        try:
            _parse_instruction(line, function, current)
        except ValueError as error:
            raise ParseError(str(error), line_number, raw_line) from error

    if function is None:
        raise ParseError("empty input", 0, "")
    if not closed:
        raise ParseError("missing closing brace", 0, "")
    function.invalidate_cfg()
    return function


def _parse_instruction(line: str, function: Function, block: BasicBlock) -> None:
    # Assignment forms are matched *before* the keyword forms: a destination
    # variable is allowed to shadow a keyword ("print = add a, b" assigns to
    # a variable named "print"), and every assignment line carries an "=" no
    # keyword form ever does, so the order is unambiguous.  Within the
    # assignment forms, calls and φs must precede the generic opcode match
    # ("x = call f()" / "x = phi [...]" would otherwise parse as plain ops).
    call_match = _CALL_RE.match(line)
    if call_match:
        dst_name, callee, args_text = call_match.groups()
        dst = function.register_variable(Variable(dst_name)) if dst_name else None
        block.append(Call(dst, callee, _parse_values(args_text, function)))
        return

    phi_match = _PHI_RE.match(line)
    if phi_match:
        dst_name, args_text = phi_match.groups()
        phi = Phi(function.register_variable(Variable(dst_name)))
        args_text = args_text.strip()
        if args_text:
            for part in args_text.split(","):
                if ":" not in part:
                    raise ValueError(f"bad phi argument {part!r}")
                label, value = part.split(":", 1)
                phi.set_arg(label.strip(), _parse_value(value, function))
        block.add_phi(phi)
        return

    assign_match = _ASSIGN_RE.match(line)
    if assign_match:
        dst_name, opcode, rest = assign_match.groups()
        dst = function.register_variable(Variable(dst_name))
        if opcode == "copy":
            block.append(Copy(dst, _parse_value(rest, function)))
        else:
            block.append(Op(dst, opcode, _parse_values(rest, function)))
        return

    # Parallel copies (with optional placement annotation).
    if line.startswith("pcopy"):
        placement = "body"
        body = line[len("pcopy"):].strip()
        if body.endswith("@entry"):
            placement = "entry"
            body = body[: -len("@entry")].strip()
        elif body.endswith("@exit"):
            placement = "exit"
            body = body[: -len("@exit")].strip()
        pcopy = ParallelCopy()
        if body:
            for pair in body.split(","):
                if "<-" not in pair:
                    raise ValueError(f"bad parallel copy component {pair!r}")
                dst_text, src_text = pair.split("<-")
                dst = function.register_variable(Variable(dst_text.strip()))
                pcopy.add(dst, _parse_value(src_text, function))
        if placement == "entry":
            block.entry_pcopy = pcopy
        elif placement == "exit":
            block.exit_pcopy = pcopy
        else:
            block.body.append(pcopy)
        return

    if line.startswith("print "):
        block.append(Print(_parse_value(line[len("print "):], function)))
        return

    if line.startswith("jump "):
        block.set_terminator(Jump(line[len("jump "):].strip()))
        return

    if line.startswith("br "):
        parts = [part.strip() for part in line[len("br "):].split(",")]
        if len(parts) != 3:
            raise ValueError("br expects 'cond, label, label'")
        block.set_terminator(Branch(_parse_value(parts[0], function), parts[1], parts[2]))
        return

    if line.startswith("brdec "):
        parts = [part.strip() for part in line[len("brdec "):].split(",")]
        if len(parts) != 3:
            raise ValueError("brdec expects 'counter, label, label'")
        counter = _parse_value(parts[0], function)
        if not isinstance(counter, Variable):
            raise ValueError("brdec counter must be a variable")
        block.set_terminator(BrDec(counter, parts[1], parts[2]))
        return

    if line == "ret":
        block.set_terminator(Return(None))
        return
    if line.startswith("ret "):
        block.set_terminator(Return(_parse_value(line[len("ret "):], function)))
        return

    raise ValueError("unrecognised instruction")
