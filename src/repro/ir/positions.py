"""Program points: a total order of positions inside each basic block.

Liveness queries, live-range intersection tests, and the dominance-order
sorting of congruence classes all reason about *where* in a block a definition
or use happens.  The schedule below assigns every instruction of a block an
integer index:

====================  =====
φ-functions           0      (all of them: φs execute in parallel)
entry parallel copy   1
body instruction i    2 + i
exit parallel copy    2 + len(body)
terminator            3 + len(body)
edge / live-out       4 + len(body)  (pseudo-point where φ-uses of successors read)
====================  =====

φ-function arguments are *not* uses inside the φ's own block: following the
standard SSA convention (and the paper's parallel-copy semantics) the argument
coming from predecessor ``P`` is read "on the edge", i.e. at the pseudo-point
``EDGE`` of ``P``, after ``P``'s exit parallel copy and terminator.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Instruction, Phi, Variable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cfg.dominance import DominatorTree

PHI_INDEX = 0
ENTRY_PCOPY_INDEX = 1
BODY_START_INDEX = 2


def body_index(block: BasicBlock, position: int) -> int:
    """Index of the ``position``-th body instruction of ``block``."""
    return BODY_START_INDEX + position


def exit_pcopy_index(block: BasicBlock) -> int:
    return BODY_START_INDEX + len(block.body)


def terminator_index(block: BasicBlock) -> int:
    return BODY_START_INDEX + len(block.body) + 1


def edge_index(block: BasicBlock) -> int:
    """Pseudo-index representing the out-edges of ``block`` (φ-argument reads)."""
    return BODY_START_INDEX + len(block.body) + 2


class ProgramPoint:
    """A (block label, index) pair, optionally carrying the instruction itself."""

    __slots__ = ("block", "index", "instruction")

    def __init__(self, block: str, index: int, instruction: Optional[Instruction] = None) -> None:
        self.block = block
        self.index = index
        self.instruction = instruction

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ProgramPoint)
            and self.block == other.block
            and self.index == other.index
        )

    def __hash__(self) -> int:
        return hash((self.block, self.index))

    def __repr__(self) -> str:
        return f"ProgramPoint({self.block}, {self.index})"

    def key(self) -> Tuple[str, int]:
        return (self.block, self.index)

    def dominates(self, other: "ProgramPoint", domtree: "DominatorTree") -> bool:
        """Does this point dominate ``other``?

        Inside one block the schedule order decides; across blocks the block
        dominance relation decides.  A point is considered to dominate itself
        and any later point of the same block.
        """
        if self.block == other.block:
            return self.index <= other.index
        return domtree.dominates(self.block, other.block)

    def strictly_before(self, other: "ProgramPoint", domtree: "DominatorTree") -> bool:
        if self.block == other.block:
            return self.index < other.index
        return domtree.strictly_dominates(self.block, other.block)


def block_schedule(block: BasicBlock) -> List[Tuple[int, Instruction]]:
    """All (index, instruction) pairs of ``block`` in schedule order."""
    schedule: List[Tuple[int, Instruction]] = []
    for phi in block.phis:
        schedule.append((PHI_INDEX, phi))
    if block.entry_pcopy is not None:
        schedule.append((ENTRY_PCOPY_INDEX, block.entry_pcopy))
    for position, instruction in enumerate(block.body):
        schedule.append((body_index(block, position), instruction))
    if block.exit_pcopy is not None:
        schedule.append((exit_pcopy_index(block), block.exit_pcopy))
    if block.terminator is not None:
        schedule.append((terminator_index(block), block.terminator))
    return schedule


def definition_points(function: Function) -> Dict[Variable, ProgramPoint]:
    """Map every variable to the program point of its (first) definition.

    Function parameters are defined at a virtual point before the entry
    block's first instruction (index ``-1``).
    """
    points: Dict[Variable, ProgramPoint] = {}
    entry_label = function.entry_label
    assert entry_label is not None
    for param in function.params:
        points[param] = ProgramPoint(entry_label, -1, None)
    for block in function:
        for index, instruction in block_schedule(block):
            for var in instruction.defs():
                points.setdefault(var, ProgramPoint(block.label, index, instruction))
    return points


def definition_point(function: Function, var: Variable) -> Optional[ProgramPoint]:
    """The definition point of ``var`` or None if it is never defined."""
    return definition_points(function).get(var)


def use_points(function: Function) -> Dict[Variable, List[ProgramPoint]]:
    """Map every variable to the list of program points where it is used.

    φ-arguments are attributed to the *edge point* of the corresponding
    predecessor block (see module docstring).
    """
    uses: Dict[Variable, List[ProgramPoint]] = {}
    for block in function:
        for index, instruction in block_schedule(block):
            if isinstance(instruction, Phi):
                continue
            for var in instruction.uses():
                uses.setdefault(var, []).append(ProgramPoint(block.label, index, instruction))
        for phi in block.phis:
            for pred_label, arg in phi.args.items():
                if isinstance(arg, Variable):
                    pred_block = function.blocks[pred_label]
                    uses.setdefault(arg, []).append(
                        ProgramPoint(pred_label, edge_index(pred_block), phi)
                    )
    return uses
