"""Functions: the unit of compilation.

A :class:`Function` owns an ordered collection of basic blocks, a variable
namespace (for creating fresh names during copy insertion, sequentialization,
edge splitting, ...), the list of formal parameters, and the derived CFG
edges.  Predecessor maps are cached and invalidated whenever terminators or
blocks change.
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, List, Optional, Sequence

from repro.ir.block import BasicBlock
from repro.ir.instructions import (
    Instruction,
    Jump,
    Phi,
    Terminator,
    Variable,
)


class Function:
    """A function in the reproduction IR."""

    def __init__(self, name: str, params: Sequence[Variable] = ()) -> None:
        self.name = name
        self.params: List[Variable] = list(params)
        self.blocks: Dict[str, BasicBlock] = {}
        self.entry_label: Optional[str] = None
        #: Structural generation: bumped on every CFG mutation (blocks added,
        #: terminators edited).  The :class:`~repro.pipeline.analysis.AnalysisCache`
        #: stamps every analysis with the generation it was computed at and
        #: refuses to serve one whose stamp is stale — the guard that turns a
        #: forgotten invalidation into a loud error instead of silent misuse.
        self.generation = 0
        self._preds: Optional[Dict[str, List[str]]] = None
        self._fresh_counter = 0
        self._known_names: set = {param.name for param in self.params}
        # Pinning constraints (register renaming constraints, §III-D): maps a
        # variable to the architectural register name it is pre-allocated to.
        self.pinned: Dict[Variable, str] = {}

    # -- block management ------------------------------------------------------
    def add_block(self, label: str) -> BasicBlock:
        if label in self.blocks:
            raise ValueError(f"duplicate block label {label!r}")
        block = BasicBlock(label)
        self.blocks[label] = block
        if self.entry_label is None:
            self.entry_label = label
        self.invalidate_cfg()
        return block

    def block(self, label: str) -> BasicBlock:
        return self.blocks[label]

    @property
    def entry(self) -> BasicBlock:
        if self.entry_label is None:
            raise ValueError("function has no blocks")
        return self.blocks[self.entry_label]

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks.values())

    def __contains__(self, label: str) -> bool:
        return label in self.blocks

    def block_labels(self) -> List[str]:
        return list(self.blocks)

    # -- CFG edges --------------------------------------------------------------
    def invalidate_cfg(self) -> None:
        """Declare a CFG mutation (call after editing blocks or terminators).

        Drops the cached predecessor map and advances :attr:`generation`,
        which invalidates every generation-stamped analysis served through an
        analysis cache.  Read-only code that merely wants a fresh predecessor
        map (defensive validation) must use :meth:`refresh_cfg_cache` instead
        — this method asserts the function *changed*.
        """
        self.generation += 1
        self._preds = None

    def refresh_cfg_cache(self) -> None:
        """Drop the cached predecessor map *without* declaring a mutation.

        For read-only consumers that cannot trust the caller to have
        invalidated after its last edit; serving stale analyses is the
        caller's bug, a defensive re-read here must not turn into one.
        """
        self._preds = None

    def successors(self, label: str) -> List[str]:
        return self.blocks[label].successor_labels()

    def predecessors(self, label: str) -> List[str]:
        if self._preds is None:
            preds: Dict[str, List[str]] = {block_label: [] for block_label in self.blocks}
            for block in self.blocks.values():
                for successor in block.successor_labels():
                    if successor not in preds:
                        raise KeyError(
                            f"block {block.label!r} branches to unknown label {successor!r}"
                        )
                    preds[successor].append(block.label)
            self._preds = preds
        return self._preds[label]

    def edges(self) -> List[tuple]:
        """All CFG edges as ``(source_label, target_label)`` pairs."""
        result = []
        for block in self.blocks.values():
            for successor in block.successor_labels():
                result.append((block.label, successor))
        return result

    # -- variables ---------------------------------------------------------------
    def variables(self) -> List[Variable]:
        """All variables defined or used anywhere in the function (ordered)."""
        seen: Dict[Variable, None] = {}
        for param in self.params:
            seen.setdefault(param, None)
        for block in self.blocks.values():
            for instruction in block.instructions():
                for var in instruction.defs():
                    seen.setdefault(var, None)
                for var in instruction.uses():
                    seen.setdefault(var, None)
        return list(seen)

    def register_variable(self, var: Variable) -> Variable:
        """Record ``var``'s name so :meth:`new_variable` never collides with it."""
        self._known_names.add(var.name)
        return var

    def new_variable(self, hint: str = "t") -> Variable:
        """Create a variable with a fresh, unused name derived from ``hint``."""
        base = re.sub(r"\.\d+$", "", hint) or "t"
        while True:
            self._fresh_counter += 1
            name = f"{base}.{self._fresh_counter}"
            if name not in self._known_names:
                self._known_names.add(name)
                return Variable(name)

    def new_label(self, hint: str = "bb") -> str:
        """Create a fresh, unused block label derived from ``hint``."""
        counter = 0
        while True:
            counter += 1
            label = f"{hint}.{counter}"
            if label not in self.blocks:
                return label

    # -- convenience -------------------------------------------------------------
    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks.values():
            yield from block.instructions()

    def phis(self) -> Iterator[Phi]:
        for block in self.blocks.values():
            yield from block.phis

    def has_phis(self) -> bool:
        return any(block.phis for block in self.blocks.values())

    def pin(self, var: Variable, register: str) -> None:
        """Pre-allocate ``var`` to an architectural ``register`` (§III-D)."""
        self.pinned[var] = register

    def copy(self) -> "Function":
        """Deep-copy the function (used to compare engines on identical input)."""
        from repro.ir.parser import parse_function
        from repro.ir.printer import format_function

        clone = parse_function(format_function(self))
        clone.pinned = dict(self.pinned)
        clone._fresh_counter = self._fresh_counter
        return clone

    def __repr__(self) -> str:
        return f"Function({self.name!r}, blocks={len(self.blocks)})"

    # -- light structural edits ----------------------------------------------------
    def split_edge(self, source_label: str, target_label: str) -> BasicBlock:
        """Split the CFG edge ``source -> target`` by inserting a fresh block.

        The new block jumps unconditionally to ``target``; φ-functions of
        ``target`` are re-keyed to the new block.  Used both for critical-edge
        splitting and for the paper's Figure 2 fallback when copy insertion
        alone cannot isolate a φ (branch-with-decrement case).
        """
        source = self.blocks[source_label]
        if target_label not in source.successor_labels():
            raise ValueError(f"no edge {source_label!r} -> {target_label!r}")
        new_label = self.new_label(f"{source_label}_{target_label}")
        new_block = self.add_block(new_label)
        new_block.set_terminator(Jump(target_label))
        assert source.terminator is not None
        source.terminator.replace_target(target_label, new_label)
        for phi in self.blocks[target_label].phis:
            phi.rename_pred(source_label, new_label)
        self.invalidate_cfg()
        return new_block
