"""Poletto/Sarkar-style linear-scan register allocation.

Intervals are walked in order of increasing start point; expired intervals
free their registers; when no register is free the active interval with the
furthest end point is spilled to a stack slot.  Variables pinned to an
architectural register (calling conventions, §III-D of the paper) receive that
register; a conflicting active interval holding it is evicted to another free
register or spilled.

The result is an :class:`Allocation` mapping every variable to a
:class:`Location` (register or stack slot), plus spill statistics — what a JIT
back-end would consume right after the out-of-SSA translation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.ir.function import Function
from repro.ir.instructions import Variable
from repro.regalloc.intervals import LiveInterval, build_live_intervals


@dataclass(frozen=True)
class Location:
    """Either an architectural register or a spill slot."""

    kind: str                 #: "register" or "stack"
    name: str                 #: register name, or "slotN"

    @property
    def is_register(self) -> bool:
        return self.kind == "register"

    def __str__(self) -> str:
        return self.name


@dataclass
class Allocation:
    """Result of register allocation."""

    locations: Dict[Variable, Location] = field(default_factory=dict)
    intervals: List[LiveInterval] = field(default_factory=list)
    spilled: List[Variable] = field(default_factory=list)
    registers: Sequence[str] = ()

    def location_of(self, var: Variable) -> Optional[Location]:
        return self.locations.get(var)

    def register_of(self, var: Variable) -> Optional[str]:
        location = self.locations.get(var)
        if location is not None and location.is_register:
            return location.name
        return None

    @property
    def spill_count(self) -> int:
        return len(self.spilled)

    def used_registers(self) -> List[str]:
        used = {loc.name for loc in self.locations.values() if loc.is_register}
        return [reg for reg in self.registers if reg in used]


class AllocationError(Exception):
    """Raised when pinning constraints are unsatisfiable (unknown register)."""


def allocate_registers(
    function: Function,
    registers: Sequence[str] = ("R0", "R1", "R2", "R3", "R4", "R5", "R6", "R7"),
    intervals: Optional[List[LiveInterval]] = None,
) -> Allocation:
    """Allocate every variable of (post-SSA) ``function`` to a register or slot."""
    intervals = intervals if intervals is not None else build_live_intervals(function)
    allocation = Allocation(intervals=intervals, registers=tuple(registers))

    for interval in intervals:
        if interval.pinned is not None and interval.pinned not in registers:
            raise AllocationError(
                f"{interval.variable} is pinned to unknown register {interval.pinned!r}"
            )

    # Every variable keeps a single location for its whole lifetime (there is
    # no second splitting pass), so registers needed by pinned intervals are
    # *reserved* for those ranges up front and ordinary intervals simply avoid
    # them; this keeps the allocation valid without mid-interval moves.
    reservations: Dict[str, List[LiveInterval]] = {}
    for interval in intervals:
        if interval.pinned is not None:
            reservations.setdefault(interval.pinned, []).append(interval)

    def conflicts_with_reservation(register: str, interval: LiveInterval) -> bool:
        return any(
            reserved is not interval and reserved.overlaps(interval)
            for reserved in reservations.get(register, ())
        )

    free: List[str] = list(registers)
    active: List[LiveInterval] = []           # sorted by increasing end point
    slot_counter = 0

    def assign(interval: LiveInterval, register: str) -> None:
        allocation.locations[interval.variable] = Location("register", register)
        active.append(interval)
        active.sort(key=lambda item: item.end)

    def spill_to_slot(interval: LiveInterval) -> None:
        nonlocal slot_counter
        allocation.locations[interval.variable] = Location("stack", f"slot{slot_counter}")
        allocation.spilled.append(interval.variable)
        slot_counter += 1

    def expire(position: int) -> None:
        while active and active[0].end <= position:
            expired = active.pop(0)
            register = allocation.register_of(expired.variable)
            if register is not None:
                free.append(register)

    def register_holder(register: str) -> Optional[LiveInterval]:
        for item in active:
            if allocation.register_of(item.variable) == register:
                return item
        return None

    for interval in intervals:
        expire(interval.start)

        if interval.pinned is not None:
            register = interval.pinned
            if register in free:
                free.remove(register)
                assign(interval, register)
                continue
            holder = register_holder(register)
            if holder is None:
                # Another pinned interval was spilled away from it earlier.
                assign(interval, register)
                continue
            # The reservation check keeps ordinary intervals away from this
            # register, so the holder can only be another pinned interval
            # (overlapping pins to one register): spill the newcomer.
            spill_to_slot(interval)
            continue

        usable = [reg for reg in free if not conflicts_with_reservation(reg, interval)]
        if usable:
            register = usable[0]
            free.remove(register)
            assign(interval, register)
            continue

        # No usable register: try to spill the active interval that ends last,
        # provided its register is actually usable for the current interval.
        for candidate in reversed(active):
            if candidate.pinned is not None or candidate.end <= interval.end:
                continue
            register = allocation.register_of(candidate.variable)
            if register is None or conflicts_with_reservation(register, interval):
                continue
            active.remove(candidate)
            del allocation.locations[candidate.variable]
            spill_to_slot(candidate)
            assign(interval, register)
            break
        else:
            spill_to_slot(interval)

    return allocation


def verify_allocation(allocation: Allocation) -> None:
    """Check that no two overlapping intervals share a register.

    Raises ``AssertionError`` on violation; used by the test-suite and
    available to users as a sanity check.
    """
    register_intervals: Dict[str, List[LiveInterval]] = {}
    for interval in allocation.intervals:
        register = allocation.register_of(interval.variable)
        if register is None:
            continue
        register_intervals.setdefault(register, []).append(interval)
    for register, intervals in register_intervals.items():
        ordered = sorted(intervals, key=lambda item: item.start)
        for first, second in zip(ordered, ordered[1:]):
            assert not first.overlaps(second), (
                f"register {register} assigned to overlapping intervals "
                f"{first} and {second}"
            )
