"""Live-interval construction for linear-scan register allocation.

Blocks are linearized in reverse post-order and every instruction receives an
increasing number.  A variable's live interval is the conservative span from
its first definition (or the function entry for parameters and live-in values)
to the last point where it is live — the classic single-interval
approximation used by linear scan, extended so that variables live across a
loop back-edge cover the whole loop body.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cfg.traversal import reverse_postorder
from repro.ir.function import Function
from repro.ir.instructions import Variable
from repro.liveness.dataflow import LivenessSets


@dataclass
class LiveInterval:
    """Half-open interval ``[start, end)`` in the linearized instruction order."""

    variable: Variable
    start: int
    end: int
    #: Architectural register this variable is pinned to, if any.
    pinned: Optional[str] = None

    def overlaps(self, other: "LiveInterval") -> bool:
        return self.start < other.end and other.start < self.end

    def __repr__(self) -> str:
        pin = f", pin={self.pinned}" if self.pinned else ""
        return f"LiveInterval({self.variable}, [{self.start}, {self.end}){pin})"


def linearize_blocks(function: Function) -> List[str]:
    """The block order used for interval numbering (reverse post-order)."""
    order = reverse_postorder(function)
    # Unreachable blocks are appended at the end so every instruction gets a number.
    for label in function.blocks:
        if label not in order:
            order.append(label)
    return order


def _number_instructions(function: Function, order: List[str]) -> Tuple[Dict[str, Tuple[int, int]], int]:
    """Assign each block a [first, last] instruction-number range."""
    ranges: Dict[str, Tuple[int, int]] = {}
    counter = 0
    for label in order:
        block = function.blocks[label]
        first = counter
        size = sum(1 for _ in block.instructions())
        counter += max(size, 1)
        ranges[label] = (first, counter)  # end is exclusive
    return ranges, counter


def build_live_intervals(function: Function) -> List[LiveInterval]:
    """Compute one conservative live interval per variable.

    The intervals honour block-level liveness: if a variable is live-in
    (live-out) of a block, its interval covers the block start (end).  Within
    a block, positions of definitions and uses refine the endpoints.
    """
    order = linearize_blocks(function)
    ranges, _total = _number_instructions(function, order)
    liveness = LivenessSets(function)

    starts: Dict[Variable, int] = {}
    ends: Dict[Variable, int] = {}

    def record(var: Variable, position: int) -> None:
        if var not in starts or position < starts[var]:
            starts[var] = position
        if var not in ends or position + 1 > ends[var]:
            ends[var] = position + 1

    # Parameters are live from the very beginning.
    for param in function.params:
        record(param, 0)

    for label in order:
        block = function.blocks[label]
        block_start, block_end = ranges[label]
        for var in function.variables():
            if liveness.is_live_in(label, var):
                record(var, block_start)
            if liveness.is_live_out(label, var):
                record(var, block_end - 1)
        position = block_start
        for instruction in block.instructions():
            for var in instruction.uses():
                record(var, position)
            for var in instruction.defs():
                record(var, position)
            position += 1

    intervals = []
    for var in function.variables():
        if var not in starts:
            continue
        intervals.append(
            LiveInterval(
                variable=var,
                start=starts[var],
                end=ends[var],
                pinned=function.pinned.get(var),
            )
        )
    intervals.sort(key=lambda interval: (interval.start, interval.end, interval.variable.name))
    return intervals
