"""A small linear-scan register allocator.

The paper's motivation is JIT compilation, where "register allocation often
relies on linear scan techniques in order to save compilation time and space
by avoiding interference graphs" (§I).  This package provides the natural
downstream consumer of the out-of-SSA translation: live-interval construction
over the translated (non-SSA) code and a Poletto/Sarkar-style linear-scan
allocator that honours the pinned-register constraints of
:mod:`repro.outofssa.pinning`.
"""

from repro.regalloc.intervals import LiveInterval, build_live_intervals, linearize_blocks
from repro.regalloc.linear_scan import Allocation, Location, allocate_registers

__all__ = [
    "LiveInterval",
    "build_live_intervals",
    "linearize_blocks",
    "Allocation",
    "Location",
    "allocate_registers",
]
