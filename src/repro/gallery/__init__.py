"""The paper's running examples (Figures 1-4) as ready-made IR programs."""

from repro.gallery.figures import (
    figure1_branch_use,
    figure2_branch_with_decrement,
    figure3_swap_problem,
    figure4_lost_copy_problem,
)

__all__ = [
    "figure1_branch_use",
    "figure2_branch_with_decrement",
    "figure3_swap_problem",
    "figure4_lost_copy_problem",
]
