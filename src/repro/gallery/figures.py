"""IR encodings of the paper's Figures 1-4.

Each function returns a *fresh* SSA :class:`~repro.ir.function.Function`
reproducing the control-flow and φ structure of the corresponding figure, so
tests, examples and documentation can all exercise exactly the situations the
paper discusses:

* Figure 1 — a copy must be inserted *before* a branch that uses a variable,
  so live-out sets alone under-approximate interference;
* Figure 2 — a branch-with-decrement defines the φ-argument in the terminator
  itself, so copy insertion alone cannot isolate the φ and the edge must be
  split;
* Figure 3 — the swap problem (two φs exchanging values around a loop);
* Figure 4 — the lost-copy problem (φ result live out of the loop).
"""

from __future__ import annotations

from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function


def figure1_branch_use() -> Function:
    """Figure 1(a): the φ-argument copy lands before a branch that uses ``u``."""
    fb = FunctionBuilder("figure1", params=("c",))
    b0, b1, b2, b3, b4 = fb.blocks("B0", "B1", "B2", "B3", "B4")
    with fb.at(b0):
        u = fb.op("add", "c", 1, name="u")
        v = fb.op("mul", "c", 3, name="v")
        fb.branch("c", b1, b2)
    with fb.at(b1):
        fb.jump(b3)
    with fb.at(b2):
        # The branch itself uses u: a copy inserted "at the end" of B2 goes
        # before this use.
        fb.branch(u, b3, b4)
    with fb.at(b3):
        w = fb.phi("w", B1=u, B2=v)
        fb.print(w)
        fb.ret(w)
    with fb.at(b4):
        fb.print(v)
        fb.ret(v)
    return fb.finish()


def figure2_branch_with_decrement() -> Function:
    """Figure 2(b): a ``br_dec`` terminator defines the φ-argument itself."""
    fb = FunctionBuilder("figure2", params=("n",))
    entry, loop, exit_block = fb.blocks("entry", "loop", "exit")
    with fb.at(entry):
        u = fb.copy("u", "n")          # hardware-loop counter, not SSA-promoted
        s0 = fb.const(0, name="s0")
        fb.jump(loop)
    with fb.at(loop):
        s1 = fb.phi("s1", entry=s0, loop="s2")
        s2 = fb.op("add", s1, u, name="s2")
        fb.br_dec(u, loop, exit_block)
    with fb.at(exit_block):
        t = fb.phi("t", loop=u)        # φ-argument defined by loop's terminator
        total = fb.op("add", t, s2, name="total")
        fb.print(total)
        fb.ret(total)
    return fb.finish()


def figure3_swap_problem(iterations_param: str = "n") -> Function:
    """Figure 3(a): two φ-functions swap their values every iteration."""
    fb = FunctionBuilder("swap_problem", params=(iterations_param, "a0", "b0"))
    entry, loop, exit_block = fb.blocks("entry", "loop", "exit")
    with fb.at(entry):
        i0 = fb.const(0, name="i0")
        fb.jump(loop)
    with fb.at(loop):
        a = fb.phi("a", entry="a0", loop="b")
        b = fb.phi("b", entry="b0", loop="a")
        i1 = fb.phi("i1", entry=i0, loop="i2")
        fb.print(a)
        fb.print(b)
        i2 = fb.op("add", i1, 1, name="i2")
        p = fb.op("cmp_lt", i2, iterations_param, name="p")
        fb.branch(p, loop, exit_block)
    with fb.at(exit_block):
        r = fb.op("sub", a, b, name="r")
        fb.print(r)
        fb.ret(r)
    return fb.finish()


def figure4_lost_copy_problem() -> Function:
    """Figure 4(a): the φ result is live out of the loop (lost-copy problem)."""
    fb = FunctionBuilder("lost_copy", params=("n",))
    entry, loop, exit_block = fb.blocks("entry", "loop", "exit")
    with fb.at(entry):
        x1 = fb.const(1, name="x1")
        fb.jump(loop)
    with fb.at(loop):
        x2 = fb.phi("x2", entry=x1, loop="x3")
        x3 = fb.op("add", x2, 1, name="x3")
        p = fb.op("cmp_lt", x3, "n", name="p")
        fb.branch(p, loop, exit_block)
    with fb.at(exit_block):
        fb.print(x2)
        fb.ret(x2)
    return fb.finish()
