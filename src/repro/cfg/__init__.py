"""Control-flow graph analyses: orders, dominance, loops, frequencies, edges."""

from repro.cfg.traversal import depth_first_order, reverse_postorder, postorder, reachable_blocks
from repro.cfg.dominance import DominatorTree, dominance_frontiers
from repro.cfg.loops import LoopInfo, natural_loops, loop_nesting_depths
from repro.cfg.scc import (
    condensation_order,
    scc_block_order,
    strongly_connected_components,
)
from repro.cfg.frequency import estimate_block_frequencies
from repro.cfg.critical_edges import critical_edges, split_critical_edges

__all__ = [
    "depth_first_order",
    "reverse_postorder",
    "postorder",
    "reachable_blocks",
    "DominatorTree",
    "dominance_frontiers",
    "LoopInfo",
    "natural_loops",
    "loop_nesting_depths",
    "estimate_block_frequencies",
    "strongly_connected_components",
    "condensation_order",
    "scc_block_order",
    "critical_edges",
    "split_critical_edges",
]
