"""Strongly connected components and condensation orders of the CFG.

Worklist data-flow solvers converge fastest when the iteration order follows
the *condensation* of the CFG: collapse every strongly connected component
(a loop nest region) to one node, process the resulting DAG in dependence
order, and stabilise each component locally before moving on.  For a backward
problem such as liveness the dependence order is reverse topological — an
SCC only reads the live-in sets of SCCs it can reach, so once those are
final, one local fixpoint per SCC suffices and no global re-sweep ever
happens.  This is the "SCC-seeded" mode of
:class:`~repro.liveness.bitsets.BitLivenessSets` and the cold-solve order of
:class:`~repro.liveness.incremental.IncrementalBitLiveness`.

The implementation is Tarjan's algorithm, made iterative (stress CFGs reach
thousands of blocks, far beyond the recursion limit) and deterministic:
roots are visited entry-first then in block-declaration order, successors in
terminator order, and members of each component are reported in discovery
order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.ir.function import Function


def strongly_connected_components(function: Function) -> List[List[str]]:
    """The SCCs of the CFG, every block covered (unreachable ones included).

    Components are emitted in *reverse topological order of the condensation*:
    a component appears before every component that can reach it.  (This is
    the natural Tarjan emission order — a component is closed only after all
    components reachable from it are closed — and exactly the processing
    order a backward data-flow solver wants.)  Members of one component are
    listed in discovery order.
    """
    labels = list(function.blocks)
    entry = function.entry_label
    roots = ([entry] if entry is not None else []) + [
        label for label in labels if label != entry
    ]

    successors = function.successors
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[List[str]] = []
    counter = 0

    for root in roots:
        if root in index:
            continue
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        # Frames hold (label, iterator over remaining successors).
        work = [(root, iter(successors(root)))]
        while work:
            label, remaining = work[-1]
            descended = False
            for successor in remaining:
                if successor not in index:
                    index[successor] = lowlink[successor] = counter
                    counter += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(successors(successor))))
                    descended = True
                    break
                if successor in on_stack and index[successor] < lowlink[label]:
                    lowlink[label] = index[successor]
            if descended:
                continue
            work.pop()
            if work and lowlink[label] < lowlink[work[-1][0]]:
                lowlink[work[-1][0]] = lowlink[label]
            if lowlink[label] == index[label]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == label:
                        break
                component.sort(key=index.__getitem__)
                components.append(component)
    return components


def condensation_order(function: Function) -> List[List[str]]:
    """The SCCs in *topological order* of the condensation (sources first).

    This is the processing order for forward data-flow problems; backward
    problems use :func:`strongly_connected_components` directly.
    """
    return list(reversed(strongly_connected_components(function)))


def is_trivial_component(function: Function, component: Sequence[str]) -> bool:
    """True for a single block with no self-loop (needs no local fixpoint)."""
    if len(component) != 1:
        return False
    label = component[0]
    return label not in function.successors(label)


def scc_block_order(
    function: Function, rpo_index: Optional[Dict[str, int]] = None
) -> List[str]:
    """All block labels grouped by SCC, components in reverse topological
    order of the condensation, members of each component in reverse
    post-order position (``rpo_index``; discovery order when absent).

    Useful as a flat seeding order for backward solvers that do not iterate
    component-by-component.
    """
    order: List[str] = []
    for component in strongly_connected_components(function):
        members = list(component)
        if rpo_index is not None:
            members.sort(key=lambda label: rpo_index.get(label, len(rpo_index)))
        order.extend(members)
    return order
