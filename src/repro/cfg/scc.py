"""Strongly connected components and condensation orders of the CFG.

Worklist data-flow solvers converge fastest when the iteration order follows
the *condensation* of the CFG: collapse every strongly connected component
(a loop nest region) to one node, process the resulting DAG in dependence
order, and stabilise each component locally before moving on.  For a backward
problem such as liveness the dependence order is reverse topological — an
SCC only reads the live-in sets of SCCs it can reach, so once those are
final, one local fixpoint per SCC suffices and no global re-sweep ever
happens.  This is the "SCC-seeded" mode of
:class:`~repro.liveness.bitsets.BitLivenessSets` and the cold-solve order of
:class:`~repro.liveness.incremental.IncrementalBitLiveness`.

The implementation is Tarjan's algorithm, made iterative (stress CFGs reach
thousands of blocks, far beyond the recursion limit) and deterministic:
roots are visited entry-first then in block-declaration order, successors in
terminator order, and members of each component are reported in discovery
order.  The walk itself runs over a flat successor table
(:func:`flat_strongly_connected_components`, integer block ids + one CSR
edge array) rather than per-block label lookups — the same table layout
:class:`~repro.ir.flat.FlatFunction` keeps, so both the object path and the
flat core share one condensation walk.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Sequence, Set

from repro.ir.function import Function


def flat_strongly_connected_components(
    num_blocks: int,
    succ_off: Sequence[int],
    succ_ids: Sequence[int],
    roots: Sequence[int],
) -> List[List[int]]:
    """Tarjan over a CSR successor table (``succ_off``/``succ_ids``).

    Blocks are dense integer ids ``0 .. num_blocks-1``; block ``b``'s
    successors are ``succ_ids[succ_off[b]:succ_off[b+1]]``.  Components are
    emitted in reverse topological order of the condensation, members in
    discovery order — exactly the contract of
    :func:`strongly_connected_components`, which delegates here.
    """
    index = array("l", [-1]) * num_blocks
    lowlink = array("l", [0]) * num_blocks
    on_stack = bytearray(num_blocks)
    stack: List[int] = []
    components: List[List[int]] = []
    counter = 0

    for root in roots:
        if index[root] >= 0:
            continue
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = 1
        # Parallel frame stacks: the node and its next-successor cursor.
        work = [root]
        cursor = [succ_off[root]]
        while work:
            node = work[-1]
            position = cursor[-1]
            end = succ_off[node + 1]
            descended = False
            while position < end:
                successor = succ_ids[position]
                position += 1
                if index[successor] < 0:
                    cursor[-1] = position
                    index[successor] = lowlink[successor] = counter
                    counter += 1
                    stack.append(successor)
                    on_stack[successor] = 1
                    work.append(successor)
                    cursor.append(succ_off[successor])
                    descended = True
                    break
                if on_stack[successor] and index[successor] < lowlink[node]:
                    lowlink[node] = index[successor]
            if descended:
                continue
            cursor[-1] = position
            work.pop()
            cursor.pop()
            if work and lowlink[node] < lowlink[work[-1]]:
                lowlink[work[-1]] = lowlink[node]
            if lowlink[node] == index[node]:
                component: List[int] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = 0
                    component.append(member)
                    if member == node:
                        break
                component.sort(key=index.__getitem__)
                components.append(component)
    return components


def strongly_connected_components(function: Function) -> List[List[str]]:
    """The SCCs of the CFG, every block covered (unreachable ones included).

    Components are emitted in *reverse topological order of the condensation*:
    a component appears before every component that can reach it.  (This is
    the natural Tarjan emission order — a component is closed only after all
    components reachable from it are closed — and exactly the processing
    order a backward data-flow solver wants.)  Members of one component are
    listed in discovery order.
    """
    labels = list(function.blocks)
    ids: Dict[str, int] = {label: position for position, label in enumerate(labels)}
    succ_off = array("l", [0])
    succ_ids = array("l")
    for label in labels:
        for target in function.blocks[label].successor_labels():
            succ_ids.append(ids[target])
        succ_off.append(len(succ_ids))
    entry = function.entry_label
    if entry is None:
        roots: List[int] = list(range(len(labels)))
    else:
        entry_id = ids[entry]
        roots = [entry_id] + [i for i in range(len(labels)) if i != entry_id]
    components = flat_strongly_connected_components(
        len(labels), succ_off, succ_ids, roots
    )
    return [[labels[member] for member in component] for component in components]


def condensation_order(function: Function) -> List[List[str]]:
    """The SCCs in *topological order* of the condensation (sources first).

    This is the processing order for forward data-flow problems; backward
    problems use :func:`strongly_connected_components` directly.
    """
    return list(reversed(strongly_connected_components(function)))


def is_trivial_component(function: Function, component: Sequence[str]) -> bool:
    """True for a single block with no self-loop (needs no local fixpoint)."""
    if len(component) != 1:
        return False
    label = component[0]
    return label not in function.successors(label)


def scc_block_order(
    function: Function, rpo_index: Optional[Dict[str, int]] = None
) -> List[str]:
    """All block labels grouped by SCC, components in reverse topological
    order of the condensation, members of each component in reverse
    post-order position (``rpo_index``; discovery order when absent).

    Useful as a flat seeding order for backward solvers that do not iterate
    component-by-component.
    """
    order: List[str] = []
    for component in strongly_connected_components(function):
        members = list(component)
        if rpo_index is not None:
            members.sort(key=lambda label: rpo_index.get(label, len(rpo_index)))
        order.extend(members)
    return order
