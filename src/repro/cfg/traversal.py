"""Graph traversal orders over the CFG of a function.

All orders are deterministic: successors are visited in the order the
terminator lists them, which keeps every downstream analysis reproducible.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ir.function import Function


def depth_first_order(function: Function) -> List[str]:
    """Pre-order DFS of the CFG from the entry block (unreachable blocks excluded)."""
    order: List[str] = []
    visited: Set[str] = set()
    stack = [function.entry_label] if function.entry_label is not None else []
    # An explicit stack with reversed successor pushes reproduces the order a
    # recursive DFS would produce.
    while stack:
        label = stack.pop()
        if label in visited or label is None:
            continue
        visited.add(label)
        order.append(label)
        for successor in reversed(function.successors(label)):
            if successor not in visited:
                stack.append(successor)
    return order


def postorder(function: Function) -> List[str]:
    """Post-order DFS of the CFG from the entry block."""
    order: List[str] = []
    visited: Set[str] = set()

    entry = function.entry_label
    if entry is None:
        return order

    # Iterative post-order: (label, child cursor) frames.
    stack: List[List] = [[entry, 0]]
    visited.add(entry)
    while stack:
        frame = stack[-1]
        label, cursor = frame
        successors = function.successors(label)
        if cursor < len(successors):
            frame[1] += 1
            child = successors[cursor]
            if child not in visited:
                visited.add(child)
                stack.append([child, 0])
        else:
            order.append(label)
            stack.pop()
    return order


def reverse_postorder(function: Function) -> List[str]:
    """Reverse post-order (a topological order on the acyclic part of the CFG)."""
    return list(reversed(postorder(function)))


def reachable_blocks(function: Function) -> Set[str]:
    """Labels of all blocks reachable from the entry block."""
    return set(depth_first_order(function))
