"""Static estimation of basic-block execution frequencies.

The paper weighs each copy by the execution frequency of the block it would
end up in, "to treat in priority the copies placed in inner loops", using
profile data.  Without SPEC profiles we use the textbook static estimate:
every loop multiplies the frequency of its body by ``loop_scale`` and every
two-way branch splits the incoming frequency evenly.  This preserves the only
property the coalescer relies on — copies in inner loops weigh (much) more
than copies outside.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cfg.dominance import DominatorTree
from repro.cfg.loops import loop_nesting_depths
from repro.cfg.traversal import reverse_postorder
from repro.ir.function import Function


def estimate_block_frequencies(
    function: Function,
    loop_scale: float = 10.0,
    domtree: Optional[DominatorTree] = None,
) -> Dict[str, float]:
    """Estimate the execution frequency of each block.

    The estimate combines loop nesting depth (``loop_scale ** depth``) with a
    propagation of branch probabilities along the acyclic (forward) part of
    the CFG, so that blocks under many conditions weigh less than their
    dominators at equal loop depth.
    """
    domtree = domtree or DominatorTree(function)
    depths = loop_nesting_depths(function, domtree)

    # Acyclic propagation of probabilities: process blocks in reverse
    # post-order and split each block's probability across its successors,
    # ignoring back edges (they are accounted for by the loop-depth factor).
    probabilities: Dict[str, float] = {label: 0.0 for label in function.blocks}
    if function.entry_label is not None:
        probabilities[function.entry_label] = 1.0
    order = reverse_postorder(function)
    order_index = {label: i for i, label in enumerate(order)}
    for label in order:
        successors = [succ for succ in function.successors(label) if succ in order_index]
        forward = [succ for succ in successors if not domtree.is_back_edge(label, succ)]
        if not forward:
            continue
        share = probabilities[label] / len(forward)
        for successor in forward:
            # Loop headers regain probability 1 relative to their preheader:
            # the loop-depth factor models the iteration count instead.
            probabilities[successor] += share

    frequencies: Dict[str, float] = {}
    for label in function.blocks:
        probability = probabilities.get(label, 0.0)
        if probability <= 0.0:
            probability = 1.0 / (1 + len(function.blocks))  # unreachable or odd shape
        frequencies[label] = probability * (loop_scale ** depths.get(label, 0))
    return frequencies
