"""Critical edges: detection and splitting.

A CFG edge is *critical* when its source has several successors and its
target has several predecessors.  Critical edges are what make naive φ-copy
placement wrong (the "lost copy" problem) and what forces the Figure 2
fallback when a branch defines a variable.  The paper's translation tolerates
critical edges; splitting is only needed for the branch-with-definition case,
but the pass is exposed for engines and experiments that want a split CFG.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.ir.function import Function


def critical_edges(function: Function) -> List[Tuple[str, str]]:
    """All critical edges of ``function`` as (source, target) pairs."""
    result: List[Tuple[str, str]] = []
    for source, target in function.edges():
        if len(function.successors(source)) > 1 and len(function.predecessors(target)) > 1:
            result.append((source, target))
    return result


def split_critical_edges(function: Function) -> List[str]:
    """Split every critical edge; return the labels of the inserted blocks."""
    inserted: List[str] = []
    for source, target in critical_edges(function):
        if target not in function.successors(source):
            # A previous split already redirected this edge (e.g. a branch
            # with two identical targets).
            continue
        new_block = function.split_edge(source, target)
        inserted.append(new_block.label)
    return inserted
