"""Natural loop detection and loop nesting depth.

Copy weights in the paper's coalescer are "classic profile information"
(basic-block frequencies); our substitute derives frequencies from loop
nesting depth, so we need the natural loops of the CFG.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.cfg.dominance import DominatorTree
from repro.ir.function import Function


class LoopInfo:
    """One natural loop: a header plus the set of blocks of its body."""

    __slots__ = ("header", "blocks", "back_edges", "parent", "depth")

    def __init__(self, header: str) -> None:
        self.header = header
        self.blocks: Set[str] = {header}
        self.back_edges: List[tuple] = []
        self.parent: Optional["LoopInfo"] = None
        self.depth: int = 1

    def __repr__(self) -> str:
        return f"LoopInfo(header={self.header!r}, blocks={sorted(self.blocks)}, depth={self.depth})"


def natural_loops(function: Function, domtree: Optional[DominatorTree] = None) -> List[LoopInfo]:
    """Find all natural loops (one per header, back edges merged)."""
    domtree = domtree or DominatorTree(function)
    loops: Dict[str, LoopInfo] = {}

    for source, target in function.edges():
        if source not in domtree._rpo_index or target not in domtree._rpo_index:
            continue
        if not domtree.dominates(target, source):
            continue
        # Back edge source -> target: collect the natural loop of this edge.
        loop = loops.setdefault(target, LoopInfo(target))
        loop.back_edges.append((source, target))
        worklist = [source]
        while worklist:
            label = worklist.pop()
            if label in loop.blocks:
                continue
            loop.blocks.add(label)
            for pred in function.predecessors(label):
                if pred in domtree._rpo_index and pred not in loop.blocks:
                    worklist.append(pred)

    result = list(loops.values())
    _assign_nesting(result)
    return result


def _assign_nesting(loops: List[LoopInfo]) -> None:
    """Compute parent pointers and nesting depths by containment."""
    # Sort by body size so a loop's smallest enclosing loop is found first.
    by_size = sorted(loops, key=lambda loop: len(loop.blocks))
    for loop in by_size:
        candidates = [
            other for other in by_size
            if other is not loop and loop.header in other.blocks and loop.blocks <= other.blocks
        ]
        if candidates:
            loop.parent = min(candidates, key=lambda other: len(other.blocks))
    for loop in by_size:
        depth = 1
        parent = loop.parent
        while parent is not None:
            depth += 1
            parent = parent.parent
        loop.depth = depth


def loop_nesting_depths(function: Function, domtree: Optional[DominatorTree] = None) -> Dict[str, int]:
    """Loop nesting depth of every block (0 = not in any loop)."""
    depths: Dict[str, int] = {label: 0 for label in function.blocks}
    for loop in natural_loops(function, domtree):
        for label in loop.blocks:
            depths[label] = max(depths[label], loop.depth)
    return depths
