"""Dominator tree, dominance queries and dominance frontiers.

The dominator tree is computed with the Cooper–Harvey–Kennedy iterative
algorithm ("A simple, fast dominance algorithm"), which is quadratic in the
worst case but very fast on real CFGs and trivially correct.

Constant-time ``dominates`` queries use the classic pre/post DFS numbering of
the dominator tree — this is the O(1) ancestor test the paper relies on in its
linear congruence-class interference check ("querying if a variable is an
ancestor of another one can be achieved in O(1)").
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.cfg.traversal import reverse_postorder
from repro.ir.function import Function


class DominatorTree:
    """Immediate dominators, dominator-tree numbering and frontier helpers."""

    def __init__(self, function: Function) -> None:
        self.function = function
        self.entry = function.entry_label
        if self.entry is None:
            raise ValueError("cannot compute dominance of an empty function")
        self.rpo: List[str] = reverse_postorder(function)
        self._rpo_index: Dict[str, int] = {label: i for i, label in enumerate(self.rpo)}
        self.idom: Dict[str, Optional[str]] = {}
        self._children: Dict[str, List[str]] = {}
        self._pre: Dict[str, int] = {}
        self._post: Dict[str, int] = {}
        self._compute_idoms()
        self._number_tree()

    # -- construction -----------------------------------------------------------
    def _compute_idoms(self) -> None:
        function = self.function
        entry = self.entry
        idom: Dict[str, Optional[str]] = {entry: entry}

        def intersect(a: str, b: str) -> str:
            index = self._rpo_index
            while a != b:
                while index[a] > index[b]:
                    a = idom[a]  # type: ignore[assignment]
                while index[b] > index[a]:
                    b = idom[b]  # type: ignore[assignment]
            return a

        changed = True
        while changed:
            changed = False
            for label in self.rpo:
                if label == entry:
                    continue
                processed_preds = [
                    pred for pred in function.predecessors(label)
                    if pred in idom and pred in self._rpo_index
                ]
                if not processed_preds:
                    continue
                new_idom = processed_preds[0]
                for pred in processed_preds[1:]:
                    new_idom = intersect(pred, new_idom)
                if idom.get(label) != new_idom:
                    idom[label] = new_idom
                    changed = True

        idom[entry] = None
        self.idom = idom
        self._children = {label: [] for label in self.rpo}
        for label, parent in idom.items():
            if parent is not None:
                self._children[parent].append(label)

    def _number_tree(self) -> None:
        """Assign pre/post order numbers for O(1) ancestor tests."""
        counter = 0
        stack: List[tuple] = [(self.entry, False)]
        while stack:
            label, expanded = stack.pop()
            if expanded:
                counter += 1
                self._post[label] = counter
                continue
            counter += 1
            self._pre[label] = counter
            stack.append((label, True))
            for child in reversed(self._children.get(label, [])):
                stack.append((child, False))

    # -- queries -------------------------------------------------------------------
    def immediate_dominator(self, label: str) -> Optional[str]:
        return self.idom.get(label)

    def children(self, label: str) -> List[str]:
        return self._children.get(label, [])

    def dominates(self, a: str, b: str) -> bool:
        """Does block ``a`` dominate block ``b`` (reflexively)?"""
        if a not in self._pre or b not in self._pre:
            # Unreachable blocks dominate nothing and are dominated by nothing.
            return a == b
        return self._pre[a] <= self._pre[b] and self._post[b] <= self._post[a]

    def strictly_dominates(self, a: str, b: str) -> bool:
        return a != b and self.dominates(a, b)

    def preorder_index(self, label: str) -> int:
        """Pre-DFS index of ``label`` in the dominator tree (paper's ≺ order)."""
        return self._pre.get(label, 1 << 30)

    def dominator_tree_preorder(self) -> List[str]:
        """Block labels sorted by dominator-tree pre-order."""
        return sorted(self._pre, key=self._pre.get)  # type: ignore[arg-type]

    def dominators_of(self, label: str) -> List[str]:
        """All dominators of ``label`` from itself up to the entry block."""
        result = []
        current: Optional[str] = label
        while current is not None:
            result.append(current)
            if current == self.entry:
                break
            current = self.idom.get(current)
        return result

    def is_back_edge(self, source: str, target: str) -> bool:
        """Is the CFG edge ``source -> target`` a back edge (target dominates source)?"""
        return self.dominates(target, source)


def dominance_frontiers(function: Function, domtree: Optional[DominatorTree] = None) -> Dict[str, Set[str]]:
    """Dominance frontier of every reachable block (Cytron's algorithm).

    Used by SSA construction to decide where φ-functions are needed.
    """
    domtree = domtree or DominatorTree(function)
    frontiers: Dict[str, Set[str]] = {label: set() for label in domtree.rpo}
    for label in domtree.rpo:
        preds = [pred for pred in function.predecessors(label) if pred in domtree._rpo_index]
        if len(preds) < 2:
            continue
        for pred in preds:
            runner: Optional[str] = pred
            while runner is not None and runner != domtree.idom[label]:
                frontiers[runner].add(label)
                runner = domtree.idom[runner]
    return frontiers


def iterated_dominance_frontier(
    function: Function,
    blocks: Iterable[str],
    domtree: Optional[DominatorTree] = None,
    frontiers: Optional[Dict[str, Set[str]]] = None,
) -> Set[str]:
    """The iterated dominance frontier DF+ of a set of blocks."""
    domtree = domtree or DominatorTree(function)
    frontiers = frontiers or dominance_frontiers(function, domtree)
    result: Set[str] = set()
    worklist = [label for label in blocks if label in frontiers]
    seen = set(worklist)
    while worklist:
        label = worklist.pop()
        for frontier_block in frontiers.get(label, ()):  # pragma: no branch
            if frontier_block not in result:
                result.add(frontier_block)
                if frontier_block not in seen:
                    seen.add(frontier_block)
                    worklist.append(frontier_block)
    return result
