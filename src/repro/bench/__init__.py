"""Workload generation, metrics and the experiment harness (Figures 5-7)."""

from repro.bench.generator import GeneratorConfig, generate_program, generate_ssa_program
from repro.bench.suite import BenchmarkSpec, SUITE, build_suite, build_benchmark
from repro.bench.metrics import copy_counts, CopyCounts
from repro.bench.harness import (
    run_figure5,
    run_figure6,
    run_figure7,
    headline_summary,
    Figure5Row,
    Figure6Row,
    Figure7Row,
)

__all__ = [
    "GeneratorConfig",
    "generate_program",
    "generate_ssa_program",
    "BenchmarkSpec",
    "SUITE",
    "build_suite",
    "build_benchmark",
    "copy_counts",
    "CopyCounts",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "headline_summary",
    "Figure5Row",
    "Figure6Row",
    "Figure7Row",
]
