"""The Figure 7 memory model.

The paper reports, per engine configuration, the memory footprint of the
interference graph and the liveness structures in two flavours:

* **Measured** — what the memory allocator actually handed out while the
  translation ran (our :class:`~repro.utils.instrument.AllocationTracker`
  totals and peaks);
* **Evaluated** — closed-form "perfect memory" estimates:
  ``ceil(#vars / 8) × #vars / 2`` for the half bit-matrix,
  one word per element for ordered liveness sets or
  ``ceil(#vars / 8) × #blocks × 2`` for bit-set liveness sets, and
  ``ceil(#blocks / 8) × #blocks × 2`` for the liveness-checking structures.

Both are produced here from one :class:`~repro.outofssa.driver.OutOfSSAResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.outofssa.driver import EngineConfig, OutOfSSAResult


@dataclass
class MemoryFootprint:
    """Bytes attributed to the analysis structures of one translation run."""

    measured_total: int = 0
    measured_peak: int = 0
    evaluated_ordered_sets: int = 0
    evaluated_bit_sets: int = 0

    def __add__(self, other: "MemoryFootprint") -> "MemoryFootprint":
        return MemoryFootprint(
            measured_total=self.measured_total + other.measured_total,
            measured_peak=self.measured_peak + other.measured_peak,
            evaluated_ordered_sets=self.evaluated_ordered_sets + other.evaluated_ordered_sets,
            evaluated_bit_sets=self.evaluated_bit_sets + other.evaluated_bit_sets,
        )


def _bitmatrix_bytes(num_variables: int) -> int:
    return ((num_variables + 7) // 8) * num_variables // 2


def _liveness_bitset_bytes(num_variables: int, num_blocks: int) -> int:
    return ((num_variables + 7) // 8) * num_blocks * 2


def _livecheck_bytes(num_blocks: int) -> int:
    return ((num_blocks + 7) // 8) * num_blocks * 2


def footprint_of(result: OutOfSSAResult) -> MemoryFootprint:
    """Compute the measured and evaluated footprints of one translation run."""
    stats = result.stats
    config: EngineConfig = result.config

    evaluated_graph = _bitmatrix_bytes(stats.candidate_variables) if config.use_interference_graph else 0
    if config.liveness in ("sets", "bitsets"):
        # Both set-based backends evaluate to the same two closed forms; with
        # the "bitsets" backend the bit-set formula is additionally *measured*
        # (the oracle allocates exactly those rows, reported via the tracker
        # into ``measured_total`` / ``measured_peak``).
        evaluated_live_ordered = 8 * stats.liveness_set_entries
        evaluated_live_bitset = _liveness_bitset_bytes(stats.candidate_variables, stats.num_blocks)
    else:
        evaluated_live_ordered = _livecheck_bytes(stats.num_blocks)
        evaluated_live_bitset = _livecheck_bytes(stats.num_blocks)

    return MemoryFootprint(
        measured_total=result.memory_total_bytes,
        measured_peak=result.memory_peak_bytes,
        evaluated_ordered_sets=evaluated_graph + evaluated_live_ordered,
        evaluated_bit_sets=evaluated_graph + evaluated_live_bitset,
    )


def category_breakdown(result: OutOfSSAResult) -> Dict[str, Dict[str, int]]:
    """Measured bytes split by structure (interference graph, liveness, ...)."""
    return result.tracker.by_category()
