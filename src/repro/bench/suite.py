"""The synthetic benchmark suite standing in for SPEC CINT2000.

The paper evaluates on eleven CINT2000 benchmarks (eon, the C++ one, is
excluded).  Each synthetic counterpart below is a *bag of functions* produced
by the workload generator with per-benchmark sizes and shape knobs chosen to
echo the character of the original program (tight loop kernels for the
compression codes, branchy code for gcc/parser, call-heavy code for perlbmk
and gap, ...).  The absolute sizes are scaled down so the whole suite runs in
seconds; a ``scale`` factor lets the experiments grow the workload when more
fidelity is wanted.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List

from repro.bench.generator import GeneratorConfig, generate_ssa_program
from repro.ir.function import Function


@dataclass(frozen=True)
class BenchmarkSpec:
    """Shape of one synthetic benchmark (a bag of generated functions)."""

    name: str
    functions: int
    size: int
    seed: int
    loop_probability: float = 0.28
    if_probability: float = 0.34
    copy_probability: float = 0.30
    swap_probability: float = 0.12
    call_probability: float = 0.05
    apply_abi: bool = False
    use_br_dec: bool = True
    num_locals: int = 6


#: The eleven benchmarks of the paper's Figures 5-7 (eon excluded, as in the paper).
SUITE: List[BenchmarkSpec] = [
    BenchmarkSpec("164.gzip", functions=5, size=42, seed=164,
                  loop_probability=0.36, copy_probability=0.32, swap_probability=0.14),
    BenchmarkSpec("175.vpr", functions=5, size=46, seed=175,
                  loop_probability=0.30, if_probability=0.36),
    BenchmarkSpec("176.gcc", functions=8, size=52, seed=176,
                  if_probability=0.42, copy_probability=0.34, num_locals=8),
    BenchmarkSpec("181.mcf", functions=4, size=38, seed=181,
                  loop_probability=0.34, swap_probability=0.16),
    BenchmarkSpec("186.crafty", functions=6, size=48, seed=186,
                  if_probability=0.38, num_locals=7),
    BenchmarkSpec("197.parser", functions=6, size=44, seed=197,
                  if_probability=0.40, copy_probability=0.33),
    BenchmarkSpec("253.perlbmk", functions=7, size=50, seed=253,
                  call_probability=0.10, apply_abi=True, num_locals=7),
    BenchmarkSpec("254.gap", functions=6, size=46, seed=254,
                  call_probability=0.08, apply_abi=True),
    BenchmarkSpec("255.vortex", functions=7, size=48, seed=255,
                  if_probability=0.38, copy_probability=0.34),
    BenchmarkSpec("256.bzip2", functions=5, size=42, seed=256,
                  loop_probability=0.38, swap_probability=0.15, use_br_dec=True),
    BenchmarkSpec("300.twolf", functions=6, size=50, seed=300,
                  loop_probability=0.32, if_probability=0.36, num_locals=7),
]

_SPEC_BY_NAME: Dict[str, BenchmarkSpec] = {spec.name: spec for spec in SUITE}


def spec_by_name(name: str) -> BenchmarkSpec:
    try:
        return _SPEC_BY_NAME[name]
    except KeyError:
        known = ", ".join(spec.name for spec in SUITE)
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None


def build_benchmark(spec: BenchmarkSpec, scale: float = 1.0) -> List[Function]:
    """Generate the SSA functions of one benchmark (deterministic per spec)."""
    functions: List[Function] = []
    count = max(1, round(spec.functions * scale))
    for index in range(count):
        config = GeneratorConfig(
            seed=spec.seed * 1000 + index,
            name=f"{spec.name.replace('.', '_')}_fn{index}",
            size=max(10, int(spec.size * max(scale, 0.25))),
            num_locals=spec.num_locals,
            loop_probability=spec.loop_probability,
            if_probability=spec.if_probability,
            copy_probability=spec.copy_probability,
            swap_probability=spec.swap_probability,
            call_probability=spec.call_probability,
            apply_abi=spec.apply_abi,
            use_br_dec=spec.use_br_dec,
        )
        functions.append(generate_ssa_program(config))
    return functions


def build_suite(scale: float = 1.0, benchmarks: List[str] = None) -> Dict[str, List[Function]]:
    """Generate the whole suite (or a named subset) as ``{name: [functions]}``."""
    selected = SUITE if benchmarks is None else [spec_by_name(name) for name in benchmarks]
    return {spec.name: build_benchmark(spec, scale) for spec in selected}
