"""Copy-count metrics over translated functions.

Figure 5 reports the *remaining static copies* after each coalescing strategy
(normalised to the weakest one) and the paper notes that the frequency-
weighted ("dynamic") counts behave the same way; both are computed here from
the final, sequentialized program so that cycle-breaking copies are included.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cfg.frequency import estimate_block_frequencies
from repro.ir.function import Function
from repro.ir.instructions import Constant, Copy, ParallelCopy


@dataclass
class CopyCounts:
    """Static and weighted copy counts of one (translated) function."""

    static_copies: int = 0
    constant_moves: int = 0
    weighted_copies: float = 0.0

    def __add__(self, other: "CopyCounts") -> "CopyCounts":
        return CopyCounts(
            static_copies=self.static_copies + other.static_copies,
            constant_moves=self.constant_moves + other.constant_moves,
            weighted_copies=self.weighted_copies + other.weighted_copies,
        )


def copy_counts(function: Function, frequencies: Optional[Dict[str, float]] = None) -> CopyCounts:
    """Count the copies present in ``function`` (post-translation code)."""
    frequencies = frequencies or estimate_block_frequencies(function)
    counts = CopyCounts()
    for block in function:
        weight = frequencies.get(block.label, 1.0)
        for instruction in block.instructions():
            if isinstance(instruction, Copy):
                if isinstance(instruction.src, Constant):
                    counts.constant_moves += 1
                else:
                    counts.static_copies += 1
                    counts.weighted_copies += weight
            elif isinstance(instruction, ParallelCopy):
                for _, src in instruction.pairs:
                    if isinstance(src, Constant):
                        counts.constant_moves += 1
                    else:
                        counts.static_copies += 1
                        counts.weighted_copies += weight
    return counts
