"""Plain-text rendering of the experiment results.

The examples and the benchmark harness print the same row/series layout the
paper's figures use, so a reader can compare shapes side by side with the
publication.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.bench.harness import Figure5Row, Figure6Row, Figure7Row
from repro.coalescing.variants import VARIANTS
from repro.outofssa.driver import ENGINE_CONFIGURATIONS


def _format_table(headers: Sequence[str], rows: List[Sequence[str]]) -> str:
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_figure5(rows: List[Figure5Row]) -> str:
    """Figure 5: remaining copies, normalised to the Intersect strategy."""
    variant_names = [variant.name for variant in VARIANTS]
    headers = ["benchmark"] + [variant.label for variant in VARIANTS]
    table_rows = []
    for row in rows:
        cells = [row.benchmark]
        for name in variant_names:
            ratio = row.ratios.get(name)
            count = row.static_copies.get(name, 0)
            cells.append(f"{ratio:.3f} ({count})" if ratio is not None else "-")
        table_rows.append(cells)
    return _format_table(headers, table_rows)


def format_figure6(rows: List[Figure6Row]) -> str:
    """Figure 6: out-of-SSA time, normalised to Sreedhar III.

    Below the timing ratios the suite-wide query counters are printed per
    engine — intersection queries and pairwise class-check queries — so the
    per-backend trade (matrix memory vs. on-the-fly queries) is visible next
    to the bars it explains.
    """
    engine_names = [engine.name for engine in ENGINE_CONFIGURATIONS]
    headers = ["benchmark"] + [engine.label for engine in ENGINE_CONFIGURATIONS]
    table_rows = []
    for row in rows:
        cells = [row.benchmark]
        for name in engine_names:
            ratio = row.ratios.get(name)
            cells.append(f"{ratio:.2f}" if ratio is not None else "-")
        table_rows.append(cells)
        if row.benchmark != "sum":
            continue
        for label, counts in (
            ("  sum (intersection queries)", row.intersection_queries),
            ("  sum (pair queries)", row.pair_queries),
        ):
            if not counts:
                continue
            cells = [label]
            for name in engine_names:
                value = counts.get(name)
                cells.append(str(value) if value is not None else "-")
            table_rows.append(cells)
    return _format_table(headers, table_rows)


def format_figure7(rows: List[Figure7Row]) -> str:
    """Figure 7: memory footprint (measured + evaluated), normalised to Sreedhar III.

    Each metric prints the measured footprint first and, when the harness
    provided them, the paper's two closed-form "evaluated" estimates right
    below it — so the measured bit-set liveness rows can be read next to the
    ``ceil(#vars/8) * #blocks * 2`` formula they are supposed to realise.
    """
    engine_names = [engine.name for engine in ENGINE_CONFIGURATIONS]
    headers = ["metric"] + [engine.label for engine in ENGINE_CONFIGURATIONS]
    table_rows = []
    for row in rows:
        cells = [row.metric]
        for name in engine_names:
            measured = row.measured.get(name)
            ratio = row.ratios.get(name)
            if measured is None:
                cells.append("-")
            else:
                cells.append(f"{ratio:.2f} ({measured // 1024} KiB)")
        table_rows.append(cells)
        for label, evaluated in (
            ("evaluated ordered", row.evaluated_ordered),
            ("evaluated bit-sets", row.evaluated_bitset),
            ("measured matrix", row.measured_matrix),
            ("measured flat tables", row.measured_flat),
        ):
            if not evaluated:
                continue
            cells = [f"  {row.metric} ({label})"]
            for name in engine_names:
                value = evaluated.get(name)
                cells.append(f"{value // 1024} KiB" if value is not None else "-")
            table_rows.append(cells)
    return _format_table(headers, table_rows)


def format_stress(rows) -> str:
    """The stress-scale experiment: cold RPO vs cold SCC vs incremental.

    One line per corpus size; times are best-of-repeats, ``iters`` counts
    block evaluations until the fixpoint, and ``speedup`` is the cold full
    solve over the incremental re-solve on the same edited function.
    """
    headers = [
        "blocks", "edits", "cold rpo (ms)", "cold scc (ms)", "incremental (ms)",
        "speedup", "iters rpo", "iters scc", "iters inc", "seeded",
    ]
    table_rows = []
    for row in rows:
        table_rows.append([
            str(row.blocks),
            str(row.edits),
            f"{row.cold_rpo_seconds * 1e3:.2f}",
            f"{row.cold_scc_seconds * 1e3:.2f}",
            f"{row.incremental_seconds * 1e3:.3f}",
            f"{row.speedup_incremental:.1f}x",
            str(row.rpo_iterations),
            str(row.scc_iterations),
            str(row.incremental_iterations),
            str(row.seeded_blocks),
        ])
    return _format_table(headers, table_rows)


def format_cold_latency(rows) -> str:
    """The cold-latency experiment: flat arena core vs objects core.

    One line per corpus size; times are best-of-repeats cold end-to-end
    translations (parse-free: the generated function goes straight into the
    pipeline), ``lowering`` is the one-time arena build *inside* the flat
    time, ``tables`` the measured arena byte size, and ``speedup`` the
    objects-core wall-clock over the flat-core one.  Output bit-identity
    between the cores is asserted inside the harness on every repeat.
    """
    headers = [
        "blocks", "vars", "engine", "objects (ms)", "flat (ms)",
        "lowering (ms)", "tables (KiB)", "speedup",
    ]
    table_rows = []
    for row in rows:
        table_rows.append([
            str(row.blocks),
            str(row.variables),
            row.engine,
            f"{row.objects_seconds * 1e3:.2f}",
            f"{row.flat_seconds * 1e3:.2f}",
            f"{row.lowering_ms:.2f}",
            str(row.flat_bytes // 1024),
            f"{row.speedup:.2f}x",
        ])
    return _format_table(headers, table_rows)


def format_service_throughput(rows) -> str:
    """The service throughput experiment: cold vs warm vs sharded.

    One line per service mode over the same repeat-heavy request stream;
    ``speedup`` is each mode's wall-clock against the cold (cache-disabled)
    baseline, and ``hit rate`` the fraction of requests answered from the
    content-addressed cache without parsing or translating anything.
    """
    headers = [
        "mode", "requests", "unique", "hits", "hit rate", "seconds", "req/s", "speedup",
    ]
    table_rows = []
    for row in rows:
        table_rows.append([
            row.mode,
            str(row.requests),
            str(row.unique),
            str(row.hits),
            f"{row.hit_rate * 100:.0f}%",
            f"{row.seconds:.3f}",
            f"{row.requests_per_second:.1f}",
            f"{row.speedup_vs_cold:.1f}x",
        ])
    return _format_table(headers, table_rows)


def format_service_concurrency(rows) -> str:
    """The concurrent-clients experiment: blocking vs pipelined serving.

    One line per serving mode against the same live daemon and the same warm
    request stream.  ``p50/p95/p99`` are the daemon's own translate-latency
    percentiles from its ``metrics`` verb, ``queue peak`` the admission
    queue's high-water mark, and ``speedup`` each mode's wall-clock against
    the single blocking sequential client.
    """
    headers = [
        "mode", "clients", "requests", "hit rate", "shed", "seconds", "req/s",
        "p50 ms", "p95 ms", "p99 ms", "queue peak", "speedup",
    ]
    table_rows = []
    for row in rows:
        table_rows.append([
            row.mode,
            str(row.clients),
            str(row.requests),
            f"{row.hit_rate * 100:.0f}%",
            str(row.overloaded),
            f"{row.seconds:.3f}",
            f"{row.requests_per_second:.1f}",
            f"{row.p50_ms:.2f}" if row.p50_ms else "-",
            f"{row.p95_ms:.2f}" if row.p95_ms else "-",
            f"{row.p99_ms:.2f}" if row.p99_ms else "-",
            f"{row.queue_peak:.0f}" if row.queue_peak else "-",
            f"{row.speedup_vs_blocking:.1f}x",
        ])
    return _format_table(headers, table_rows)


def format_interference_stress(rows) -> str:
    """The interference stress experiment: cold matrix rebuild vs incremental.

    One line per corpus size; times are best-of-repeats.  ``cold`` is a fresh
    bit-set liveness solve plus a fresh matrix build of the edited function,
    ``incremental`` is the two ``apply_edits`` patches over the warm
    structures, ``dirty`` counts the blocks the incremental scan re-visited
    (out of ``blocks``), and ``matrix`` is the measured half-matrix size.
    """
    headers = [
        "blocks", "universe", "edits", "cold (ms)", "incremental (ms)",
        "speedup", "dirty", "matrix (KiB)",
    ]
    table_rows = []
    for row in rows:
        table_rows.append([
            str(row.blocks),
            str(row.universe),
            str(row.edits),
            f"{row.cold_seconds * 1e3:.2f}",
            f"{row.incremental_seconds * 1e3:.3f}",
            f"{row.speedup:.1f}x",
            str(row.dirty_blocks),
            str(row.matrix_bytes // 1024),
        ])
    return _format_table(headers, table_rows)


def format_verify_stress(rows) -> str:
    """The verify stress lane: checked vs unchecked translation wall-clock.

    One line per corpus size; ``overhead`` is the checked translation's
    wall-clock over the unchecked one, ``verify (ms)`` the checker time the
    pipeline recorded, and ``diags``/``errors``/``warnings`` the diagnostic
    counts — all zero on a healthy pipeline.
    """
    headers = [
        "blocks", "vars", "level", "unchecked (ms)", "checked (ms)",
        "overhead", "verify (ms)", "diags", "errors", "warnings",
    ]
    table_rows = []
    for row in rows:
        table_rows.append([
            str(row.blocks),
            str(row.variables),
            row.level,
            f"{row.unchecked_seconds * 1e3:.2f}",
            f"{row.checked_seconds * 1e3:.2f}",
            f"{row.overhead:.2f}x",
            f"{row.verify_ms:.2f}",
            str(row.diagnostics),
            str(row.errors),
            str(row.warnings),
        ])
    return _format_table(headers, table_rows)
