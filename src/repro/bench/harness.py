"""Experiment harness regenerating the paper's Figures 5, 6 and 7.

Each ``run_figureN`` function takes the synthetic suite (``{benchmark name:
[SSA functions]}``), runs the relevant engines/variants on *copies* of every
function, and returns one row per benchmark (plus a ``sum`` row, as in the
paper's plots).  The rows carry both raw values and the normalised ratios the
paper plots (Figure 5 normalises to the ``Intersect`` strategy, Figures 6 and
7 to the ``Sreedhar III`` engine).

Every experiment batches through one :class:`~repro.pipeline.Session` per
engine, so suite-level state (the resolved pipeline and its pass objects) is
built once and each function still gets its own allocation tracker.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.bench.memory import MemoryFootprint, footprint_of
from repro.bench.metrics import CopyCounts, copy_counts
from repro.coalescing.variants import VARIANTS, CoalescingVariant
from repro.ir.function import Function
from repro.outofssa.config import ENGINE_CONFIGURATIONS, EngineConfig
from repro.pipeline import Session


def _figure5_engine(variant: CoalescingVariant) -> EngineConfig:
    """Engine used to compare the Figure 5 coalescing strategies: no
    interference graph, liveness checking, quadratic class checks (valid for
    every interference notion)."""
    return (
        EngineConfig.builder()
        .name(f"figure5_{variant.name}")
        .label(variant.label)
        .coalescing(variant.name)
        .liveness("check")
        .interference_graph(False)
        .linear_class_check(False)
        .build()
    )


@dataclass
class Figure5Row:
    """Remaining copies per coalescing strategy for one benchmark."""

    benchmark: str
    static_copies: Dict[str, int] = field(default_factory=dict)
    weighted_copies: Dict[str, float] = field(default_factory=dict)
    ratios: Dict[str, float] = field(default_factory=dict)

    def compute_ratios(self, baseline: str = "intersect") -> None:
        base = self.static_copies.get(baseline, 0)
        for name, value in self.static_copies.items():
            self.ratios[name] = (value / base) if base else 1.0


def run_figure5(
    suite: Dict[str, List[Function]],
    variants: Sequence[CoalescingVariant] = tuple(VARIANTS),
) -> List[Figure5Row]:
    """Remaining static copies per benchmark and coalescing strategy."""
    rows: List[Figure5Row] = []
    totals: Dict[str, CopyCounts] = {variant.name: CopyCounts() for variant in variants}

    sessions = {variant.name: Session(_figure5_engine(variant)) for variant in variants}
    for benchmark, functions in suite.items():
        row = Figure5Row(benchmark=benchmark)
        for variant in variants:
            copies = [function.copy() for function in functions]
            sessions[variant.name].translate_many(copies)
            counts = CopyCounts()
            for copy in copies:
                counts = counts + copy_counts(copy)
            row.static_copies[variant.name] = counts.static_copies
            row.weighted_copies[variant.name] = counts.weighted_copies
            totals[variant.name] = totals[variant.name] + counts
        row.compute_ratios()
        rows.append(row)

    sum_row = Figure5Row(benchmark="sum")
    for name, counts in totals.items():
        sum_row.static_copies[name] = counts.static_copies
        sum_row.weighted_copies[name] = counts.weighted_copies
    sum_row.compute_ratios()
    rows.append(sum_row)
    return rows


# --------------------------------------------------------------------------- Figure 6
@dataclass
class Figure6Row:
    """Out-of-SSA translation time per engine for one benchmark.

    Besides the timed seconds the row carries the per-backend query counters
    (live-range intersection queries and pairwise class-check queries) —
    deterministic per engine, so they read as the *why* behind the timing
    bars: the query backends trade matrix memory for pairwise queries, the
    matrix backends trade queries for the build scan.
    """

    benchmark: str
    seconds: Dict[str, float] = field(default_factory=dict)
    ratios: Dict[str, float] = field(default_factory=dict)
    intersection_queries: Dict[str, int] = field(default_factory=dict)
    pair_queries: Dict[str, int] = field(default_factory=dict)

    def compute_ratios(self, baseline: str = "sreedhar_iii") -> None:
        base = self.seconds.get(baseline, 0.0)
        for name, value in self.seconds.items():
            self.ratios[name] = (value / base) if base else 1.0


def run_figure6(
    suite: Dict[str, List[Function]],
    engines: Sequence[EngineConfig] = tuple(ENGINE_CONFIGURATIONS),
    repeats: int = 1,
) -> List[Figure6Row]:
    """Time to go out of SSA, per benchmark and engine configuration."""
    rows: List[Figure6Row] = []
    totals: Dict[str, float] = {engine.name: 0.0 for engine in engines}
    total_intersections: Dict[str, int] = {engine.name: 0 for engine in engines}
    total_pairs: Dict[str, int] = {engine.name: 0 for engine in engines}

    sessions = {engine.name: Session(engine) for engine in engines}
    for benchmark, functions in suite.items():
        row = Figure6Row(benchmark=benchmark)
        for engine in engines:
            session = sessions[engine.name]
            best = None
            for _ in range(max(1, repeats)):
                results = session.translate_many(function.copy() for function in functions)
                elapsed = sum(result.stats.elapsed_seconds for result in results)
                best = elapsed if best is None else min(best, elapsed)
                # Deterministic per engine: any repeat reports the same counts.
                row.intersection_queries[engine.name] = sum(
                    result.stats.intersection_queries for result in results
                )
                row.pair_queries[engine.name] = sum(
                    result.stats.pair_queries for result in results
                )
            row.seconds[engine.name] = best or 0.0
            totals[engine.name] += best or 0.0
            total_intersections[engine.name] += row.intersection_queries[engine.name]
            total_pairs[engine.name] += row.pair_queries[engine.name]
        row.compute_ratios()
        rows.append(row)

    sum_row = Figure6Row(
        benchmark="sum",
        seconds=dict(totals),
        intersection_queries=dict(total_intersections),
        pair_queries=dict(total_pairs),
    )
    sum_row.compute_ratios()
    rows.append(sum_row)
    return rows


# --------------------------------------------------------------------------- Figure 7
@dataclass
class Figure7Row:
    """Memory footprint per engine (suite-wide, as in the paper's bars)."""

    metric: str                                   #: "maximum" or "total"
    measured: Dict[str, int] = field(default_factory=dict)
    evaluated_ordered: Dict[str, int] = field(default_factory=dict)
    evaluated_bitset: Dict[str, int] = field(default_factory=dict)
    #: Measured bytes of the interference bit-matrix alone (0 for the query
    #: backend) — read next to the ``ceil(n/8) * n/2`` evaluated formula.
    measured_matrix: Dict[str, int] = field(default_factory=dict)
    #: Measured bytes of the flat arena tables (``OutOfSSAStats.flat_bytes``;
    #: 0 when the objects core ran) — the price of the ``--core flat`` sweeps.
    measured_flat: Dict[str, int] = field(default_factory=dict)
    ratios: Dict[str, float] = field(default_factory=dict)

    def compute_ratios(self, baseline: str = "sreedhar_iii") -> None:
        base = self.measured.get(baseline, 0)
        for name, value in self.measured.items():
            self.ratios[name] = (value / base) if base else 1.0


def run_figure7(
    suite: Dict[str, List[Function]],
    engines: Sequence[EngineConfig] = tuple(ENGINE_CONFIGURATIONS),
) -> List[Figure7Row]:
    """Memory footprint (maximum and total) per engine configuration."""
    maxima: Dict[str, int] = {engine.name: 0 for engine in engines}
    totals: Dict[str, MemoryFootprint] = {engine.name: MemoryFootprint() for engine in engines}
    matrix_totals: Dict[str, int] = {engine.name: 0 for engine in engines}
    flat_totals: Dict[str, int] = {engine.name: 0 for engine in engines}
    sessions = {engine.name: Session(engine) for engine in engines}

    for functions in suite.values():
        for function in functions:
            for engine in engines:
                result = sessions[engine.name].translate(function.copy())
                footprint = footprint_of(result)
                totals[engine.name] = totals[engine.name] + footprint
                maxima[engine.name] = max(maxima[engine.name], footprint.measured_peak)
                matrix_totals[engine.name] += result.stats.matrix_bytes
                flat_totals[engine.name] += result.stats.flat_bytes

    # The evaluated closed forms are accumulated suite-wide, so they are only
    # meaningful next to the "total" metric; the maximum row carries none
    # (printing suite totals under "maximum" would misread as a ~20x formula
    # error when comparing against the measured peak).
    maximum_row = Figure7Row(metric="maximum", measured=dict(maxima))
    maximum_row.compute_ratios()

    total_row = Figure7Row(
        metric="total",
        measured={name: fp.measured_total for name, fp in totals.items()},
        evaluated_ordered={name: fp.evaluated_ordered_sets for name, fp in totals.items()},
        evaluated_bitset={name: fp.evaluated_bit_sets for name, fp in totals.items()},
        measured_matrix=dict(matrix_totals),
        measured_flat=dict(flat_totals),
    )
    total_row.compute_ratios()
    return [maximum_row, total_row]


# --------------------------------------------------------------------------- cold latency
@dataclass
class ColdLatencyRow:
    """Flat-core vs objects-core cold translation of one stress corpus spec."""

    engine: str = ""
    blocks: int = 0
    variables: int = 0
    objects_seconds: float = 0.0   #: best-of-repeats, ``--core objects``
    flat_seconds: float = 0.0      #: best-of-repeats, ``--core flat``
    #: Arena lowering time inside the best flat run (already included in
    #: ``flat_seconds`` — reported so the one-time cost is visible).
    lowering_ms: float = 0.0
    flat_bytes: int = 0            #: arena table bytes of the best flat run

    @property
    def speedup(self) -> float:
        """Objects-core wall-clock over flat-core wall-clock (cold)."""
        if not self.flat_seconds:
            return 0.0
        return self.objects_seconds / self.flat_seconds


#: Stats fields excluded from the cross-core identity comparison: wall-clock
#: and representation-provenance values, everything else must agree exactly.
_CORE_TIMING_FIELDS = ("elapsed_seconds", "core", "lowering_ms", "flat_bytes", "verify_ms")


def run_cold_latency(
    specs,
    engine: "EngineLike" = "us_i",
    repeats: int = 3,
    check_identical: bool = True,
) -> List[ColdLatencyRow]:
    """Cold end-to-end translation: the flat arena core vs the objects core.

    Per repeat the spec's function is regenerated *fresh for each core*
    (translation mutates its input) and pushed through the full out-of-SSA
    pipeline; the two cores are interleaved inside every repeat so machine
    load spikes hit both sides, and the rows carry best-of-repeats
    wall-clocks.  With ``check_identical`` (the default) every repeat asserts
    the two cores produced the same output IR text *and* the same stats
    counters (timing and representation-provenance fields excepted) — the
    speedup claim is only meaningful over bit-identical work.
    """
    from dataclasses import asdict
    from dataclasses import replace as dc_replace

    from repro.bench.corpus import generate_stress_cfg
    from repro.ir.printer import format_function
    from repro.pipeline.pipeline import Pipeline, resolve_engine

    base = resolve_engine(engine)
    pipelines = {
        core: Pipeline.for_engine(dc_replace(base, core=core))
        for core in ("objects", "flat")
    }

    rows: List[ColdLatencyRow] = []
    for spec in specs:
        row = ColdLatencyRow(engine=base.name)
        best: Dict[str, Optional[float]] = {"objects": None, "flat": None}
        for repeat in range(max(1, repeats)):
            outputs = {}
            for core, pipeline in pipelines.items():
                function = generate_stress_cfg(spec)
                row.blocks = len(function.blocks)
                row.variables = len(function.variables())
                began = time.perf_counter()
                result = pipeline.run(function)
                seconds = time.perf_counter() - began
                stats = asdict(result.stats)
                for name in _CORE_TIMING_FIELDS:
                    stats.pop(name, None)
                outputs[core] = (format_function(function), stats)
                if best[core] is None or seconds < best[core]:
                    best[core] = seconds
                    if core == "flat":
                        row.lowering_ms = result.stats.lowering_ms
                        row.flat_bytes = result.stats.flat_bytes
            if check_identical and outputs["objects"] != outputs["flat"]:
                raise AssertionError(
                    f"cores diverged on {spec.describe()} (repeat {repeat})"
                )
        row.objects_seconds = best["objects"] or 0.0
        row.flat_seconds = best["flat"] or 0.0
        rows.append(row)
    return rows


# --------------------------------------------------------------------------- headline
@dataclass
class HeadlineSummary:
    """The paper's headline claims: ~2× faster, ~10× less memory."""

    speedup_vs_sreedhar: float
    memory_reduction_vs_sreedhar: float
    copies_ratio_vs_sreedhar: float


def headline_summary(
    suite: Dict[str, List[Function]],
    fast_engine: str = "us_i_linear_intercheck_livecheck",
    baseline_engine: str = "sreedhar_iii",
) -> HeadlineSummary:
    """Aggregate speed / memory / quality of the paper's engine vs Sreedhar III."""
    engines = [
        engine for engine in ENGINE_CONFIGURATIONS if engine.name in (fast_engine, baseline_engine)
    ]
    # min-of-3 timing keeps the headline ratio stable against machine noise.
    time_rows = run_figure6(suite, engines, repeats=3)
    memory_rows = run_figure7(suite, engines)
    figure5 = run_figure5(suite)

    sum_time = next(row for row in time_rows if row.benchmark == "sum")
    total_memory = next(row for row in memory_rows if row.metric == "total")
    sum_quality = next(row for row in figure5 if row.benchmark == "sum")

    speedup = (
        sum_time.seconds[baseline_engine] / sum_time.seconds[fast_engine]
        if sum_time.seconds.get(fast_engine) else 0.0
    )
    memory_reduction = (
        total_memory.measured[baseline_engine] / total_memory.measured[fast_engine]
        if total_memory.measured.get(fast_engine) else 0.0
    )
    copies_ratio = (
        sum_quality.static_copies.get("value", 0)
        / sum_quality.static_copies.get("sreedhar_iii", 1)
        if sum_quality.static_copies.get("sreedhar_iii") else 1.0
    )
    return HeadlineSummary(
        speedup_vs_sreedhar=speedup,
        memory_reduction_vs_sreedhar=memory_reduction,
        copies_ratio_vs_sreedhar=copies_ratio,
    )


# --------------------------------------------------------------------------- service throughput
@dataclass
class ServiceThroughputRow:
    """Requests/second of one service mode over one request stream."""

    mode: str
    requests: int = 0
    unique: int = 0
    hits: int = 0
    seconds: float = 0.0
    #: vs the cold row of the same experiment (1.0 for the cold row itself).
    speedup_vs_cold: float = 1.0

    @property
    def requests_per_second(self) -> float:
        return self.requests / self.seconds if self.seconds else 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


def service_request_stream(
    blocks: int = 5000,
    functions: int = 3,
    repeat: int = 6,
    seed: int = 0,
    scale: float = 1.0,
    loop_depth: int = 4,
    variables: int = 10,
) -> List[str]:
    """A repeat-heavy request stream over the stress corpus.

    ``functions`` distinct stress CFGs of ``blocks * scale`` blocks each,
    printed to text and round-robined ``repeat`` times — the JIT-shaped
    traffic profile where a few hot functions dominate: every program after
    the first round is a re-request of something already translated.
    """
    from repro.bench.corpus import CorpusSpec, generate_stress_cfg
    from repro.ir.printer import format_function

    texts = []
    for index in range(functions):
        spec = CorpusSpec(
            name="serve",
            seed=seed + index,
            blocks=max(64, int(blocks * scale)),
            loop_depth=loop_depth,
            variables=variables,
        )
        texts.append(format_function(generate_stress_cfg(spec)))
    return [texts[i % len(texts)] for i in range(len(texts) * max(1, repeat))]


def run_service_throughput(
    blocks: int = 5000,
    functions: int = 3,
    repeat: int = 6,
    shards: int = 4,
    engine: str = "us_i",
    scale: float = 1.0,
    mode: str = "thread",
    parallel_coalescing: int = 0,
    seed: int = 0,
    stream: Optional[List[str]] = None,
) -> List[ServiceThroughputRow]:
    """Cold vs warm vs sharded requests/second over the stress corpus.

    Three service configurations run the *same* repeat-heavy stream:

    * ``cold`` — a service with caching disabled (``capacity=0``): every
      request parses and translates, the baseline a batch pipeline pays;
    * ``warm`` — one content-addressed cache: the first occurrence of each
      program translates cold, every repeat is a hit;
    * ``sharded[N]`` — the :class:`~repro.service.scheduler.ShardedScheduler`
      over N digest-affine warm shards, batch-submitted.

    All three produce bit-identical responses (asserted here on every run);
    the rows report wall-clock seconds, requests/second and hit rate.
    """
    from repro.service.scheduler import ShardedScheduler
    from repro.service.translator import TranslationService

    if stream is None:
        stream = service_request_stream(
            blocks=blocks, functions=functions, repeat=repeat, seed=seed, scale=scale
        )
    unique = len(set(stream))
    rows: List[ServiceThroughputRow] = []

    cold_service = TranslationService(
        engine, capacity=0, parallel_coalescing=parallel_coalescing,
        keep_warm_state=False,
    )
    began = time.perf_counter()
    cold_results = [cold_service.translate_text(text) for text in stream]
    cold_seconds = time.perf_counter() - began
    rows.append(
        ServiceThroughputRow(
            mode="cold", requests=len(stream), unique=unique, hits=0,
            seconds=cold_seconds,
        )
    )

    warm_service = TranslationService(engine, parallel_coalescing=parallel_coalescing)
    began = time.perf_counter()
    warm_results = [warm_service.translate_text(text) for text in stream]
    warm_seconds = time.perf_counter() - began
    rows.append(
        ServiceThroughputRow(
            mode="warm", requests=len(stream), unique=unique,
            hits=sum(1 for result in warm_results if result.cached),
            seconds=warm_seconds,
            speedup_vs_cold=(cold_seconds / warm_seconds) if warm_seconds else 0.0,
        )
    )

    scheduler = ShardedScheduler(
        engine, shards=shards, mode=mode, parallel_coalescing=parallel_coalescing
    )
    began = time.perf_counter()
    sharded_results = scheduler.translate_batch(stream)
    sharded_seconds = time.perf_counter() - began
    rows.append(
        ServiceThroughputRow(
            mode=f"sharded[{shards};{mode}]", requests=len(stream), unique=unique,
            hits=sum(1 for result in sharded_results if result.cached),
            seconds=sharded_seconds,
            speedup_vs_cold=(cold_seconds / sharded_seconds) if sharded_seconds else 0.0,
        )
    )

    # The throughput claim is only meaningful if all three modes answered
    # every request identically — check it on every run, like the stress
    # experiments check bit-identity inside their timing loops.
    for index in range(len(stream)):
        if not (
            cold_results[index].ir_text
            == warm_results[index].ir_text
            == sharded_results[index].ir_text
        ):
            raise AssertionError(
                f"service modes diverged on request {index} "
                f"(digest {cold_results[index].digest[:12]})"
            )
    return rows


# --------------------------------------------------------------------------- service concurrency
@dataclass
class ServiceConcurrencyRow:
    """One serving mode of the concurrent-clients experiment."""

    mode: str
    clients: int = 0
    requests: int = 0
    hits: int = 0
    overloaded: int = 0
    seconds: float = 0.0
    #: Daemon-side translate latency percentiles observed during the run.
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    p99_ms: float = 0.0
    #: High-water admission queue depth the daemon recorded.
    queue_peak: float = 0.0
    #: vs the single blocking sequential client (1.0 for that row itself).
    speedup_vs_blocking: float = 1.0

    @property
    def requests_per_second(self) -> float:
        return self.requests / self.seconds if self.seconds else 0.0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


def run_service_concurrency(
    clients: int = 32,
    requests_per_client: int = 12,
    blocks: int = 600,
    functions: int = 4,
    engine: str = "us_i",
    shards: int = 4,
    workers: Optional[int] = None,
    scale: float = 1.0,
    seed: int = 0,
) -> List[ServiceConcurrencyRow]:
    """Blocking sequential serving vs N pipelined concurrent clients.

    One live asyncio daemon serves the same warm repeat-heavy traffic two
    ways: a single blocking client issuing ``clients × requests_per_client``
    requests one at a time (the old thread-per-connection profile — each
    request pays a full round trip before the next starts), then ``clients``
    concurrent connections each pipelining ``requests_per_client`` requests
    with no per-request thread anywhere.  Every response in both phases is
    checked bit-identical to the cold pipeline reference; the pipelined row
    carries the daemon's own latency percentiles and admission-queue
    high-water mark from its ``metrics`` verb.

    The daemon runs as a *subprocess* (``python -m repro serve``), exactly
    like a deployment: in-process serving would put the clients and the
    daemon under one GIL, where pipelining can only add contention —
    cross-process, client-side serialization genuinely overlaps
    server-side serving, which is the effect this experiment measures.
    """
    import asyncio
    import os
    import subprocess
    import sys

    import repro
    from repro.bench.corpus import CorpusSpec, generate_stress_cfg
    from repro.ir.parser import parse_function
    from repro.ir.printer import format_function
    from repro.pipeline.pipeline import Pipeline
    from repro.service.client import AsyncServiceClient, ServiceClient

    pool: List[str] = []
    references: Dict[str, str] = {}
    for index in range(functions):
        spec = CorpusSpec(
            name="async_serve",
            seed=seed + index,
            blocks=max(64, int(blocks * scale)),
            loop_depth=3,
            variables=8,
        )
        text = format_function(generate_stress_cfg(spec))
        pool.append(text)
        function = parse_function(text)
        Pipeline.for_engine(engine).run(function)
        references[text] = format_function(function)

    total = clients * requests_per_client
    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    command = [
        sys.executable, "-m", "repro", "serve",
        "--engine", engine, "--shards", str(shards),
        "--max-pending", str(max(64, total)),
    ]
    if workers is not None:
        command += ["--workers", str(workers)]
    daemon = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    port = 0
    assert daemon.stdout is not None
    for line in daemon.stdout:
        if "listening on" in line:
            port = int(line.rsplit(":", 1)[1].split()[0])
            break
    if not port:
        daemon.wait(timeout=15)
        raise RuntimeError("repro serve subprocess exited before binding a port")
    rows: List[ServiceConcurrencyRow] = []
    try:
        # Prewarm: both timed phases measure warm serving, not translation.
        with ServiceClient(port=port) as warmup:
            for text in pool:
                if warmup.translate(text)["ir"] != references[text]:
                    raise AssertionError("warmup response diverged from cold pipeline")

        with ServiceClient(port=port) as blocking:
            hits = 0
            began = time.perf_counter()
            for index in range(total):
                response = blocking.translate(pool[index % len(pool)])
                hits += 1 if response["cached"] else 0
            blocking_seconds = time.perf_counter() - began
        rows.append(
            ServiceConcurrencyRow(
                mode="blocking[1]", clients=1, requests=total, hits=hits,
                seconds=blocking_seconds,
            )
        )

        async def run_client(client_index: int) -> List[Dict[str, object]]:
            client = AsyncServiceClient(port)
            await client.connect()
            try:
                return await client.pipeline([
                    {"verb": "translate",
                     "ir": pool[(client_index + offset) % len(pool)]}
                    for offset in range(requests_per_client)
                ])
            finally:
                await client.close()

        async def run_fleet() -> List[List[Dict[str, object]]]:
            return await asyncio.gather(
                *(run_client(index) for index in range(clients))
            )

        began = time.perf_counter()
        fleet_responses = asyncio.run(run_fleet())
        pipelined_seconds = time.perf_counter() - began

        hits = overloaded = 0
        for client_index, responses in enumerate(fleet_responses):
            for offset, response in enumerate(responses):
                if response.get("overloaded"):
                    overloaded += 1
                    continue
                text = pool[(client_index + offset) % len(pool)]
                if not response.get("ok") or response["ir"] != references[text]:
                    raise AssertionError(
                        f"pipelined client {client_index} request {offset} "
                        f"diverged from the cold reference"
                    )
                hits += 1 if response["cached"] else 0

        with ServiceClient(port=port) as probe:
            metrics = probe.metrics()
        latency = metrics["metrics"]["latency"].get("latency_translate", {})
        gauges = metrics["metrics"]["gauges"]
        rows.append(
            ServiceConcurrencyRow(
                mode=f"pipelined[{clients}]",
                clients=clients, requests=total, hits=hits,
                overloaded=overloaded, seconds=pipelined_seconds,
                p50_ms=float(latency.get("p50_ms", 0.0)),
                p95_ms=float(latency.get("p95_ms", 0.0)),
                p99_ms=float(latency.get("p99_ms", 0.0)),
                queue_peak=float(gauges.get("queue_depth_peak", 0.0)),
                speedup_vs_blocking=(
                    blocking_seconds / pipelined_seconds if pipelined_seconds else 0.0
                ),
            )
        )
    finally:
        try:
            with ServiceClient(port=port) as closer:
                closer.shutdown()
            daemon.wait(timeout=15)
        except Exception:
            daemon.kill()
            daemon.wait(timeout=15)
        finally:
            daemon.stdout.close()
    return rows


# --------------------------------------------------------------------------- verify stress
@dataclass
class VerifyStressRow:
    """Checked vs unchecked translation of one stress corpus spec."""

    blocks: int = 0
    variables: int = 0
    level: str = "fast"
    unchecked_seconds: float = 0.0
    checked_seconds: float = 0.0
    verify_ms: float = 0.0
    diagnostics: int = 0
    errors: int = 0
    warnings: int = 0

    @property
    def overhead(self) -> float:
        """Checked wall-clock over unchecked (1.0 means the checks are free)."""
        if not self.unchecked_seconds:
            return 0.0
        return self.checked_seconds / self.unchecked_seconds


def run_verify_stress(
    specs,
    level: str = "fast",
    engine: EngineLike = "us_i_linear_intercheck_livecheck",
    repeats: int = 1,
) -> List["VerifyStressRow"]:
    """Translate every corpus spec with the invariant checkers on and off.

    Each repeat regenerates the spec's function twice (translation mutates the
    function, so checked and unchecked runs each get a fresh copy) and times a
    plain translation against one at ``verify_level=level``; the row carries
    best-of-repeats wall-clocks, the checker time the stats recorded, and the
    diagnostic counts — zero diagnostics on the clean corpus is the lane's
    pass condition.
    """
    from dataclasses import replace as dc_replace

    from repro.bench.corpus import generate_stress_cfg
    from repro.pipeline.pipeline import Pipeline, resolve_engine

    config = resolve_engine(engine)
    unchecked_pipeline = Pipeline.for_engine(dc_replace(config, verify_level="off"))
    checked_pipeline = Pipeline.for_engine(dc_replace(config, verify_level=level))

    rows: List[VerifyStressRow] = []
    for spec in specs:
        row = VerifyStressRow(level=level)
        best_plain = best_checked = None
        for _ in range(max(1, repeats)):
            function = generate_stress_cfg(spec)
            row.blocks = len(function.blocks)
            row.variables = len(function.variables())

            began = time.perf_counter()
            unchecked_pipeline.run(generate_stress_cfg(spec))
            plain_seconds = time.perf_counter() - began

            began = time.perf_counter()
            result = checked_pipeline.run(function)
            checked_seconds = time.perf_counter() - began

            if best_plain is None or plain_seconds < best_plain:
                best_plain = plain_seconds
            if best_checked is None or checked_seconds < best_checked:
                best_checked = checked_seconds
                row.verify_ms = result.stats.verify_ms
                row.diagnostics = result.stats.verify_diagnostics
                row.errors = result.stats.verify_errors
                row.warnings = result.stats.verify_warnings
        row.unchecked_seconds = best_plain or 0.0
        row.checked_seconds = best_checked or 0.0
        rows.append(row)
    return rows
