"""Scalable random-CFG stress corpus and the liveness stress experiment.

The synthetic SPEC stand-in (:mod:`repro.bench.suite`) is sized for whole
out-of-SSA translations — dozens of blocks per function.  The liveness
subsystem, however, claims to scale ("as fast as the hardware allows") and
its three solving strategies only separate on CFGs far past the hand-built
gallery: thousands of blocks, loops nested many levels deep, dozens of live
variables.  This module generates exactly those *functions-as-graphs*:

* :func:`generate_stress_cfg` — a deterministic (seeded) structured random
  CFG: nested natural loops up to ``loop_depth``, if/else diamonds, straight
  chains, with every block reading and writing a bounded pool of
  ``variables`` (the pressure knob).  The construction is budget-driven, so
  ``blocks=5000`` really produces ≈5000 blocks.  With ``irreducible > 0``
  some loops gain a second entry (a dispatch block branching both to the
  header and into the middle of the body) — the multi-entry regions where
  reverse post-order has no good visit order and condensation-ordered SCC
  seeding must win outright.
* :func:`random_edit_batch` — a materialization-shaped batch of structural
  edits (copies inserted, edges split, localized renames) applied to the
  function *and* described as an :class:`~repro.ir.editlog.EditLog`, the way
  the isolation/materialization passes describe their own edits.
* :func:`run_stress` — the experiment behind ``repro stress`` and
  ``benchmarks/test_stress_scale.py``: cold RPO-seeded solve vs cold
  SCC-seeded solve vs incremental re-solve after the edit batch, with the
  bit-identity of all three checked on every run.
* :func:`run_interference_stress` — the companion experiment for the
  ``incremental`` interference backend: the warm matrix patched from the
  same edit batch vs a cold bit-set liveness solve plus matrix rebuild,
  with row-for-row matrix identity checked on every run.

Everything is driven by a seeded :class:`random.Random`; the same spec
always yields the same function, edits, and convergence counts.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set

from repro.ir.block import BasicBlock
from repro.ir.editlog import EditLog
from repro.ir.function import Function
from repro.ir.instructions import Branch, Constant, Copy, Jump, Op, Return, Variable
from repro.liveness.bitsets import BitLivenessSets
from repro.liveness.flatcore import FlatBitLiveness, FlatIncrementalBitLiveness
from repro.liveness.incremental import IncrementalBitLiveness

_OPCODES = ("add", "sub", "mul", "and", "or", "xor", "min", "max")


@dataclass(frozen=True)
class CorpusSpec:
    """Shape of one stress CFG (all knobs deterministic under ``seed``)."""

    name: str = "stress"
    seed: int = 0
    #: Target number of basic blocks (hit within a few percent).
    blocks: int = 1000
    #: Maximum loop-nest depth (diamonds may nest further).
    loop_depth: int = 4
    #: Per-region working-set size (pressure).  Every region (loop body,
    #: diamond arm) works on this many variables: two inherited from its
    #: parent region — values flow across region boundaries — and the rest
    #: fresh, so names have the *locality* real programs have (a local edit
    #: dirties a neighbourhood, not the world).  The function's total variable
    #: count therefore grows with its region count, as in real code.
    variables: int = 12
    loop_probability: float = 0.30
    branch_probability: float = 0.30
    ops_per_block: int = 3
    #: Probability that a loop gets a *second* entry edge (a dispatch block
    #: branching both to the header and into the middle of the body), making
    #: it a multi-entry — irreducible — region.  Reverse post-order has no
    #: good answer for such regions (there is no single header to visit
    #: first), which is exactly where condensation-ordered SCC seeding should
    #: beat RPO seeding on block evaluations, not just tie it.
    irreducible: float = 0.0

    def describe(self) -> str:
        extra = f", irreducible {self.irreducible:.2f}" if self.irreducible else ""
        return (
            f"{self.blocks} blocks, depth {self.loop_depth}, "
            f"{self.variables} variables, seed {self.seed}{extra}"
        )


class _StressBuilder:
    """Budget-driven structured CFG construction."""

    def __init__(self, spec: CorpusSpec) -> None:
        self.spec = spec
        self.rng = random.Random(spec.seed)
        self.function = Function(f"{spec.name}_{spec.seed}")
        self._counter = 0
        self._var_counter = 0

    # -- variable windows ------------------------------------------------------
    def _window(
        self,
        parent: Optional[List[Variable]] = None,
        parent_initialized: Optional[Set[Variable]] = None,
    ) -> List[Variable]:
        """A fresh region-local working set, seeded with two (initialized)
        parent variables so liveness flows across region boundaries."""
        size = max(3, self.spec.variables)
        window: List[Variable] = []
        if parent:
            candidates = parent
            if parent_initialized:
                candidates = [var for var in parent if var in parent_initialized] or parent
            window.extend(self.rng.sample(candidates, min(2, len(candidates))))
        while len(window) < size:
            self._var_counter += 1
            window.append(
                self.function.register_variable(Variable(f"v{self._var_counter}"))
            )
        return window

    # -- blocks ---------------------------------------------------------------
    def _block(self, window: List[Variable], initialized: Set[Variable]) -> BasicBlock:
        """One block reading *initialized* window variables and defining
        window variables.  Reads never reach an uninitialized name, so every
        variable's live range starts at a def — without this, region-local
        names would be upward-exposed all the way to the function entry and
        liveness would saturate (every variable live in every block), which
        no real program exhibits."""
        self._counter += 1
        block = self.function.add_block(f"b{self._counter}")
        rng = self.rng
        pick = rng.choice
        readable = [var for var in window if var in initialized]
        for _ in range(rng.randint(1, self.spec.ops_per_block)):
            dst = pick(window)
            if not readable:
                block.append(Op(dst, "const", [Constant(rng.randint(0, 9))]))
            elif rng.random() < 0.2:
                block.append(Copy(dst, pick(readable)))
            else:
                a = pick(readable)
                b: object = (
                    pick(readable) if rng.random() < 0.8 else Constant(rng.randint(0, 9))
                )
                block.append(Op(dst, pick(_OPCODES), [a, b]))
            if dst not in initialized:
                initialized.add(dst)
                readable.append(dst)
        return block

    def _used(self) -> int:
        return self._counter

    # -- structured regions ---------------------------------------------------
    def _chain(
        self,
        depth: int,
        quota: int,
        window: List[Variable],
        initialized: Set[Variable],
    ):
        """A chain of regions; returns ``(entry_label, open_tail_block)``
        where the tail still lacks a terminator (the caller links it).
        ``initialized`` tracks which window variables are defined on every
        path through the chain so far (mutated as the chain grows)."""
        first = self._block(window, initialized)
        entry = first.label
        tail = first
        start = self._used()
        rng = self.rng
        spec = self.spec
        while self._used() - start < quota:
            budget = quota - (self._used() - start)
            roll = rng.random()
            if depth < spec.loop_depth and budget >= 4 and roll < spec.loop_probability:
                sub = max(2, int(budget * rng.uniform(0.3, 0.7)))
                element_entry, element_tail = self._loop(depth + 1, sub, window, initialized)
            elif budget >= 4 and roll < spec.loop_probability + spec.branch_probability:
                sub = max(2, int(budget * rng.uniform(0.3, 0.7)))
                element_entry, element_tail = self._diamond(depth + 1, sub, window, initialized)
            else:
                element = self._block(window, initialized)
                element_entry, element_tail = element.label, element
            tail.set_terminator(Jump(element_entry))
            tail = element_tail
        return entry, tail

    def _loop(
        self,
        depth: int,
        quota: int,
        parent_window: List[Variable],
        parent_initialized: Set[Variable],
    ):
        """``header -> body... -> latch -(back|exit)->``; SCC = whole loop."""
        window = self._window(parent_window, parent_initialized)
        initialized = {var for var in window if var in parent_initialized}
        header = self._block(window, initialized)
        body_start = self._used()
        body_entry, body_tail = self._chain(depth, max(1, quota - 3), window, initialized)
        body_end = self._used()
        latch = self._block(window, initialized)
        exit_block = self._block(window, initialized)
        header.set_terminator(Jump(body_entry))
        body_tail.set_terminator(Jump(latch.label))
        latch.set_terminator(
            Branch(self.rng.choice(sorted(initialized, key=str)), header.label, exit_block.label)
        )
        if self.rng.random() < self.spec.irreducible and body_end > body_start:
            # Multi-entry loop: a dispatch block outside the region branches
            # both to the header and *into the middle of the body* (possibly
            # inside a nested sub-loop), so the SCC has two entries and no
            # dominating header — an irreducible CFG region.
            target = f"b{self.rng.randint(body_start + 1, body_end)}"
            dispatch = self._block(parent_window, parent_initialized)
            cond = self.rng.choice(sorted(parent_initialized, key=str))
            dispatch.set_terminator(Branch(cond, header.label, target))
            return dispatch.label, exit_block
        return header.label, exit_block

    def _diamond(
        self,
        depth: int,
        quota: int,
        parent_window: List[Variable],
        parent_initialized: Set[Variable],
    ):
        window = self._window(parent_window, parent_initialized)
        initialized = {var for var in window if var in parent_initialized}
        cond_block = self._block(window, initialized)
        # The branch condition must be defined before the arms run.
        cond = self.rng.choice(sorted(initialized, key=str))
        # Each arm initializes independently; after the join only variables
        # defined on *both* paths count as initialized.
        then_initialized = set(initialized)
        else_initialized = set(initialized)
        then_entry, then_tail = self._chain(
            depth, max(1, quota // 2 - 1), window, then_initialized
        )
        else_entry, else_tail = self._chain(
            depth, max(1, quota // 2 - 1), window, else_initialized
        )
        initialized |= then_initialized & else_initialized
        join = self._block(window, initialized)
        cond_block.set_terminator(Branch(cond, then_entry, else_entry))
        then_tail.set_terminator(Jump(join.label))
        else_tail.set_terminator(Jump(join.label))
        return cond_block.label, join

    def build(self) -> Function:
        window = self._window()
        initialized: Set[Variable] = set()
        entry, tail = self._chain(0, max(1, self.spec.blocks - 1), window, initialized)
        tail.set_terminator(
            Return(self.rng.choice(sorted(initialized, key=str) or window))
        )
        assert self.function.entry_label == entry
        return self.function


def generate_stress_cfg(spec: CorpusSpec) -> Function:
    """Generate one deterministic stress CFG from its spec."""
    return _StressBuilder(spec).build()


# --------------------------------------------------------------------------- edits
def random_edit_batch(
    function: Function,
    seed: int = 0,
    copies: int = 12,
    splits: int = 4,
    renames: int = 2,
) -> EditLog:
    """Apply a materialization-shaped random edit batch; return its log.

    The batch mirrors what the out-of-SSA passes actually do to a function:

    * *copies inserted* — ``fresh = nearby`` into random blocks, the shape of
      Method I primed copies and sequentialization temporaries (a fresh
      destination: the passes never introduce new kill points for existing
      long-range variables);
    * *edges split* — the Figure 2 fallback;
    * *variables renamed* — a block-local variable renamed consistently at
      *every* occurrence (as congruence-class renaming does), each rewritten
      block logged.

    The function is edited *in place* and the returned
    :class:`~repro.ir.editlog.EditLog` describes every edit, exactly as the
    passes themselves log them.
    """
    rng = random.Random(seed)
    log = EditLog()
    labels = list(function.blocks)

    def local_variables(label: str) -> List[Variable]:
        """Variables the block already works on — the paper's edits are
        φ-web-local, not random global names."""
        found: Dict[Variable, None] = {}
        for instruction in function.blocks[label].instructions():
            for var in instruction.defs():
                found.setdefault(var, None)
            for var in instruction.uses():
                found.setdefault(var, None)
        return list(found)

    for _ in range(copies):
        label = rng.choice(labels)
        block = function.blocks[label]
        # Copy a value at a point where it is manifestly available — right
        # after one of its occurrences — the way Method I copies a φ operand
        # where it is live.  (Reviving a long-dead name instead would be a
        # legitimate but unrepresentative function-wide liveness change.)
        occurrences = [
            (index, var)
            for index, instruction in enumerate(block.body)
            for var in list(instruction.defs()) + list(instruction.uses())
        ]
        dst = function.new_variable("patch")
        if occurrences:
            index, src = rng.choice(occurrences)
            block.body.insert(index + 1, Copy(dst, src))
        else:
            src = dst
            block.body.insert(0, Copy(dst, src))
        log.copy_inserted(label, dst, src)

    edges = function.edges()
    for _ in range(min(splits, len(edges))):
        source, target = rng.choice(edges)
        if target not in function.successors(source):
            continue  # an earlier split already rewired this edge
        new_block = function.split_edge(source, target)
        log.block_split(source, target, new_block.label)
        edges = function.edges()

    occurrence_blocks: Dict[Variable, List[str]] = {}
    for label in labels:
        for instruction in function.blocks[label].instructions():
            for var in instruction.defs():
                occurrence_blocks.setdefault(var, []).append(label)
            for var in instruction.uses():
                occurrence_blocks.setdefault(var, []).append(label)

    for _ in range(renames):
        if not labels:
            break
        candidates = local_variables(rng.choice(labels))
        if not candidates:
            continue
        # Congruence-class renames are φ-web-local: rename the candidate with
        # the fewest occurrence blocks, not an inherited long-range variable.
        old = min(candidates, key=lambda var: (len(occurrence_blocks.get(var, ())), str(var)))
        new = function.new_variable("rn")
        mapping = {old: new}
        for label in dict.fromkeys(occurrence_blocks.get(old, ())):
            block = function.blocks[label]
            changed = False
            for instruction in block.instructions():
                if old in instruction.uses() or old in instruction.defs():
                    instruction.replace_uses(mapping)
                    instruction.replace_defs(mapping)
                    changed = True
            if changed:
                log.block_rewritten(label, [old, new])
    return log


# --------------------------------------------------------------------------- experiment
@dataclass
class StressRow:
    """Measurements for one corpus spec (times are best-of-``repeats``)."""

    spec: CorpusSpec
    blocks: int = 0
    edits: int = 0
    cold_rpo_seconds: float = 0.0
    cold_scc_seconds: float = 0.0
    incremental_seconds: float = 0.0
    rpo_iterations: int = 0
    scc_iterations: int = 0
    incremental_iterations: int = 0
    seeded_blocks: int = 0

    @property
    def speedup_incremental(self) -> float:
        """Cold (RPO) full solve over incremental re-solve, on the edited CFG."""
        if not self.incremental_seconds:
            return 0.0
        return self.cold_rpo_seconds / self.incremental_seconds


def _rows_by_name(oracle: BitLivenessSets) -> Dict[str, Set[str]]:
    decoded: Dict[str, Set[str]] = {}
    for label in oracle.function.blocks:
        decoded[f"in:{label}"] = {str(v) for v in oracle.live_in_variables(label)}
        decoded[f"out:{label}"] = {str(v) for v in oracle.live_out_variables(label)}
    return decoded


def run_stress(
    specs: Sequence[CorpusSpec],
    repeats: int = 3,
    edit_seed: int = 1,
    check_identical: bool = True,
    core: str = "flat",
) -> List[StressRow]:
    """Run the three-way liveness comparison over every spec.

    Each repeat regenerates the *same* function and applies the *same* edit
    batch (generation and the batch are deterministic under their seeds), so
    best-of-repeats timings all describe one program and the ratio between
    them is meaningful.  A repeat warms an incremental solver, applies the
    batch, and measures:

    * cold RPO-seeded solve of the *edited* function (the recompute a
      non-incremental pipeline would pay),
    * cold SCC-seeded solve of the same,
    * the incremental re-solve (``apply_edits``) patching the warm rows.

    ``core`` picks the solver classes: ``"flat"`` (the engine default) runs
    the cold solves over a privately lowered :class:`~repro.ir.flat.FlatFunction`
    arena — each cold time *includes* that lowering, and the SCC seeding
    reuses the arena's edge table for its Tarjan walk, so condensation
    ordering no longer taxes the cold solve; ``"objects"`` keeps the
    original object-graph walks.  Convergence counts are identical between
    the cores (the property suite diffs them row-for-row).

    With ``check_identical`` (the default) every repeat asserts that all
    three agree row-for-row on every block.
    """
    if core == "flat":
        cold_class, warm_class = FlatBitLiveness, FlatIncrementalBitLiveness
    else:
        cold_class, warm_class = BitLivenessSets, IncrementalBitLiveness
    rows: List[StressRow] = []
    for spec in specs:
        row = StressRow(spec=spec)
        best_rpo = best_scc = best_inc = None
        for repeat in range(max(1, repeats)):
            function = generate_stress_cfg(spec)
            warm = warm_class(function)
            log = random_edit_batch(function, seed=edit_seed)

            began = time.perf_counter()
            delta = warm.apply_edits(log)
            inc_seconds = time.perf_counter() - began

            began = time.perf_counter()
            cold_rpo = cold_class(function, seed="rpo")
            rpo_seconds = time.perf_counter() - began

            began = time.perf_counter()
            cold_scc = cold_class(function, seed="scc")
            scc_seconds = time.perf_counter() - began

            if check_identical:
                warm_rows = _rows_by_name(warm)
                if not (warm_rows == _rows_by_name(cold_rpo) == _rows_by_name(cold_scc)):
                    raise AssertionError(
                        f"liveness rows diverged on {spec.describe()} (repeat {repeat})"
                    )

            best_rpo = rpo_seconds if best_rpo is None else min(best_rpo, rpo_seconds)
            best_scc = scc_seconds if best_scc is None else min(best_scc, scc_seconds)
            best_inc = inc_seconds if best_inc is None else min(best_inc, inc_seconds)
            row.blocks = len(function.blocks)
            row.edits = len(log)
            row.rpo_iterations = cold_rpo.solver_iterations
            row.scc_iterations = cold_scc.solver_iterations
            row.incremental_iterations = delta.iterations
            row.seeded_blocks = delta.seeded_blocks
        row.cold_rpo_seconds = best_rpo or 0.0
        row.cold_scc_seconds = best_scc or 0.0
        row.incremental_seconds = best_inc or 0.0
        rows.append(row)
    return rows


# --------------------------------------------------------------------------- interference
@dataclass
class InterferenceStressRow:
    """Incremental interference matrix vs cold rebuild on one corpus spec."""

    spec: CorpusSpec
    blocks: int = 0
    universe: int = 0           #: matrix universe size (variables)
    edits: int = 0
    cold_seconds: float = 0.0          #: cold liveness solve + cold matrix build
    incremental_seconds: float = 0.0   #: liveness patch + matrix patch
    matrix_bytes: int = 0
    dirty_blocks: int = 0              #: blocks the incremental scan re-visited

    @property
    def speedup(self) -> float:
        """Cold full rebuild over incremental patch, on the edited CFG."""
        if not self.incremental_seconds:
            return 0.0
        return self.cold_seconds / self.incremental_seconds


def run_interference_stress(
    specs: Sequence[CorpusSpec],
    repeats: int = 3,
    edit_seed: int = 1,
    check_identical: bool = True,
) -> List[InterferenceStressRow]:
    """Incremental interference-matrix maintenance vs cold rebuilds.

    Per repeat: generate the spec's CFG, warm an incremental liveness and an
    incremental interference matrix over the full variable universe (the
    intersection notion — the stress corpus is not SSA, so the scan-based
    construction is the well-defined one), apply the materialization-shaped
    edit batch, and measure

    * the incremental path — ``apply_edits`` on the liveness rows then on the
      matrix (what a pipeline pass pays), against
    * the cold path — a fresh bit-set liveness solve of the edited function
      plus a fresh matrix build over the *same* universe ordering.

    With ``check_identical`` every repeat asserts the patched matrix is
    bit-identical (row for row, same slot assignment) to the cold rebuild.
    """
    from repro.interference.base import InterferenceKind
    from repro.interference.graph import IncrementalMatrixInterference, MatrixInterference
    from repro.liveness.intersection import IntersectionOracle

    rows: List[InterferenceStressRow] = []
    for spec in specs:
        row = InterferenceStressRow(spec=spec)
        best_cold = best_inc = None
        for repeat in range(max(1, repeats)):
            function = generate_stress_cfg(spec)
            warm_live = IncrementalBitLiveness(function)
            warm = IncrementalMatrixInterference(
                function,
                IntersectionOracle(function, warm_live),
                InterferenceKind.INTERSECT,
            )
            log = random_edit_batch(function, seed=edit_seed)

            began = time.perf_counter()
            warm_live.apply_edits(log)
            delta = warm.apply_edits(log)
            inc_seconds = time.perf_counter() - began

            # Cold rebuild over the warm matrix's exact universe ordering, so
            # slot assignments coincide and rows compare bit-for-bit.
            began = time.perf_counter()
            cold_live = BitLivenessSets(function)
            cold = MatrixInterference(
                function,
                IntersectionOracle(function, cold_live),
                InterferenceKind.INTERSECT,
                universe=warm.graph.variables(),
            )
            cold_seconds = time.perf_counter() - began

            if check_identical and warm.graph.row_bits() != cold.graph.row_bits():
                raise AssertionError(
                    f"interference rows diverged on {spec.describe()} (repeat {repeat})"
                )

            best_cold = cold_seconds if best_cold is None else min(best_cold, cold_seconds)
            best_inc = inc_seconds if best_inc is None else min(best_inc, inc_seconds)
            row.blocks = len(function.blocks)
            row.universe = len(warm.graph)
            row.edits = len(log)
            row.matrix_bytes = warm.matrix_bytes()
            row.dirty_blocks = delta.dirty_blocks
        row.cold_seconds = best_cold or 0.0
        row.incremental_seconds = best_inc or 0.0
        rows.append(row)
    return rows


def scaled_specs(
    sizes: Sequence[int],
    scale: float = 1.0,
    seed: int = 0,
    loop_depth: int = 5,
    variables: int = 12,
    irreducible: float = 0.0,
) -> List[CorpusSpec]:
    """Specs for the standard stress ladder, scaled for the environment."""
    specs = []
    for size in sizes:
        blocks = max(64, int(size * scale))
        specs.append(
            CorpusSpec(
                name="stress",
                seed=seed + size,
                blocks=blocks,
                loop_depth=loop_depth,
                variables=variables,
                irreducible=irreducible,
            )
        )
    return specs


#: Block counts of the standard ladder (1k–10k, the JIT-scale range).
STANDARD_SIZES = (1000, 2500, 5000, 10000)
