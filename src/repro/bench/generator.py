"""Synthetic workload generator (the SPEC CINT2000 substitute).

The paper evaluates its algorithms on SPEC CINT2000 compiled by a production
compiler; we cannot ship that, so this module generates *structured random
programs* with the features that matter for out-of-SSA translation:

* nested loops (back-edge φs, inner-loop copy weights), including optional
  hardware-loop ``br_dec`` counters;
* if/else ladders creating join-point φs and critical edges;
* plenty of copies and redundant computations, so that SSA construction
  followed by copy folding / value numbering produces genuinely
  non-conventional SSA (overlapping φ-webs: swaps, rotations, lost copies);
* observable effects (``print``) and a bounded iteration structure so the
  interpreter can compare behaviour before and after translation;
* optional calls with calling-convention pinning (register renaming
  constraints).

All randomness is drawn from a seeded :class:`random.Random`, so workloads are
fully reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.instructions import Constant, Copy, Variable
from repro.ir.validate import validate_function, validate_ssa
from repro.outofssa.pinning import apply_calling_convention
from repro.ssa.cleanup import remove_dead_code, remove_trivial_phis
from repro.ssa.construction import construct_ssa
from repro.ssa.copy_folding import fold_copies, value_number


_BINARY_OPCODES = ["add", "sub", "mul", "and", "or", "xor", "min", "max"]
_COMPARE_OPCODES = ["cmp_lt", "cmp_le", "cmp_gt", "cmp_ge", "cmp_eq", "cmp_ne"]


@dataclass
class GeneratorConfig:
    """Tunable shape of one generated function."""

    seed: int = 0
    name: str = "generated"
    num_params: int = 2
    num_locals: int = 6
    #: Overall statement budget (drives the number of blocks).
    size: int = 40
    max_depth: int = 3
    loop_probability: float = 0.28
    if_probability: float = 0.34
    copy_probability: float = 0.30
    print_probability: float = 0.08
    call_probability: float = 0.05
    swap_probability: float = 0.12
    #: Probability of emitting "b = a; c = a" style duplicated copies whose
    #: targets stay live together — the situations where value-based
    #: interference wins over Chaitin / intersection (paper §III-A).
    dup_copy_probability: float = 0.12
    use_br_dec: bool = True
    max_loop_iterations: int = 6
    #: Post-SSA cleanups that make the program non-conventional.
    fold_copies: bool = True
    #: Fraction of foldable copies that actually get folded; the rest survive
    #: as explicit copies, as in real optimizers (rematerialization,
    #: scheduling and range-splitting decisions keep some copies around).
    fold_fraction: float = 0.5
    value_number: bool = True
    #: Insert calling-convention pinning copies around calls.
    apply_abi: bool = False


class _ProgramGenerator:
    """Builds one structured random (non-SSA) function."""

    def __init__(self, config: GeneratorConfig) -> None:
        self.config = config
        self.rng = random.Random(config.seed)
        params = tuple(f"p{i}" for i in range(config.num_params))
        self.fb = FunctionBuilder(config.name, params=params)
        self.variables: List[Variable] = [self.fb.var(name) for name in params]
        self.locals: List[Variable] = [self.fb.var(f"v{i}") for i in range(config.num_locals)]
        self.budget = config.size
        self._block_counter = 0
        self._loop_counter = 0

    # -- helpers ------------------------------------------------------------------
    def _new_block(self, hint: str):
        self._block_counter += 1
        return self.fb.block(f"{hint}{self._block_counter}")

    def _pick_var(self) -> Variable:
        return self.rng.choice(self.variables + self.locals)

    def _pick_local(self) -> Variable:
        return self.rng.choice(self.locals)

    def _pick_operand(self):
        if self.rng.random() < 0.25:
            return self.rng.randint(-4, 10)
        return self._pick_var()

    # -- statement emission -----------------------------------------------------------
    def _emit_straight_line(self) -> None:
        roll = self.rng.random()
        config = self.config
        fb = self.fb
        if roll < config.dup_copy_probability:
            # Duplicated copies of one source, all kept live by later prints:
            # after SSA + partial folding these become the overlapping
            # same-value live ranges that distinguish the Value rule.
            source = self._pick_var()
            # Live-range-split style copies: the optimizer is required to keep
            # them (see the ``should_fold`` hook in ``generate_ssa_program``),
            # so after SSA construction the two targets and the source have
            # genuinely overlapping, same-value live ranges — the situation of
            # the paper's §III-A example (b = a; c = a).
            first = fb.fresh("split")
            second = fb.fresh("split")
            fb.copy(first, source)
            fb.copy(second, source)
            # Keep source and both targets live past each other's definitions.
            fb.print(source)
            fb.print(first)
            fb.print(second)
            if self.rng.random() < 0.5:
                fb.copy(self._pick_local(), self.rng.choice([first, second]))
        elif roll < config.dup_copy_probability + config.copy_probability:
            fb.copy(self._pick_local(), self._pick_var())
        elif roll < config.dup_copy_probability + config.copy_probability + config.swap_probability:
            # A source-level swap: the classic generator of φ-cycles.
            a, b = self._pick_local(), self._pick_local()
            if a != b:
                temp = fb.fresh("tmp")
                fb.copy(temp, a)
                fb.copy(a, b)
                fb.copy(b, temp)
            else:
                fb.copy(a, self._pick_var())
        elif roll < (config.dup_copy_probability + config.copy_probability
                     + config.swap_probability + config.print_probability):
            fb.print(self._pick_var())
        elif roll < (config.dup_copy_probability + config.copy_probability
                     + config.swap_probability + config.print_probability
                     + config.call_probability):
            args = [self._pick_operand() for _ in range(self.rng.randint(1, 3))]
            result = fb.call(f"ext{self.rng.randint(0, 3)}", *args)
            fb.copy(self._pick_local(), result)
        else:
            opcode = self.rng.choice(_BINARY_OPCODES)
            dst = self._pick_local()
            fb.op(opcode, self._pick_operand(), self._pick_operand(), name=dst.name)

    def _emit_sequence(self, depth: int, length: int) -> None:
        """Emit ``length`` statements into the current block chain."""
        for _ in range(length):
            if self.budget <= 0:
                return
            roll = self.rng.random()
            if depth < self.config.max_depth and roll < self.config.loop_probability:
                self._emit_loop(depth)
            elif depth < self.config.max_depth and roll < self.config.loop_probability + self.config.if_probability:
                self._emit_if(depth)
            else:
                self.budget -= 1
                self._emit_straight_line()

    def _emit_if(self, depth: int) -> None:
        self.budget -= 2
        fb = self.fb
        then_block = self._new_block("then")
        else_block = self._new_block("else")
        join_block = self._new_block("join")

        cond = fb.op(self.rng.choice(_COMPARE_OPCODES), self._pick_var(), self._pick_operand())
        fb.branch(cond, then_block, else_block)

        inner = max(1, self.rng.randint(1, 3))
        with fb.at(then_block):
            self._emit_sequence(depth + 1, inner)
            fb.jump(join_block)
        with fb.at(else_block):
            if self.rng.random() < 0.3:
                # One empty arm: creates a critical edge after SSA construction.
                fb.jump(join_block)
            else:
                self._emit_sequence(depth + 1, inner)
                fb.jump(join_block)

        self.fb._current = join_block  # continue emitting in the join block

    def _emit_loop(self, depth: int) -> None:
        self.budget -= 3
        fb = self.fb
        config = self.config
        self._loop_counter += 1
        iterations = self.rng.randint(2, config.max_loop_iterations)

        use_br_dec = config.use_br_dec and self.rng.random() < 0.25
        if use_br_dec:
            counter = fb.var(f"hwloop{self._loop_counter}")
            fb.op("const", iterations, name=counter.name)
            body_block = self._new_block("hwbody")
            exit_block = self._new_block("hwexit")
            fb.jump(body_block)
            with fb.at(body_block):
                self._emit_sequence(depth + 1, self.rng.randint(1, 3))
                fb.br_dec(counter, body_block, exit_block)
            self.fb._current = exit_block
            return

        counter = fb.var(f"i{self._loop_counter}")
        limit = fb.var(f"lim{self._loop_counter}")
        fb.op("const", 0, name=counter.name)
        fb.op("const", iterations, name=limit.name)
        header = self._new_block("header")
        body_block = self._new_block("body")
        exit_block = self._new_block("exit")
        fb.jump(header)
        with fb.at(header):
            cond = fb.op("cmp_lt", counter, limit)
            fb.branch(cond, body_block, exit_block)
        with fb.at(body_block):
            self._emit_sequence(depth + 1, self.rng.randint(1, 4))
            fb.op("add", counter, 1, name=counter.name)
            fb.jump(header)
        self.fb._current = exit_block

    # -- top level ------------------------------------------------------------------------
    def build(self) -> Function:
        fb = self.fb
        entry = self._new_block("entry")
        self.fb._current = entry
        # Initialise every local so no path reads an undefined value.
        for index, local in enumerate(self.locals):
            fb.op("const", (index * 7 + 3) % 11, name=local.name)

        self._emit_sequence(0, max(3, self.config.size // 3))

        # Observable epilogue: print and return a mix of the locals.
        result = self.locals[0]
        for local in self.locals[1:3]:
            result = fb.op("add", result, local, name=fb.fresh("sum").name)
        for local in self.locals[:2]:
            fb.print(local)
        fb.print(result)
        fb.ret(result)

        function = fb.finish()
        validate_function(function)
        return function


def generate_program(config: GeneratorConfig) -> Function:
    """Generate a structured random *non-SSA* function."""
    return _ProgramGenerator(config).build()


def generate_ssa_program(config: GeneratorConfig) -> Function:
    """Generate a random function and bring it to (generally non-CSSA) SSA form."""
    function = generate_program(config)
    construct_ssa(function)
    if config.value_number:
        value_number(function)
    if config.fold_copies:
        fold_rng = random.Random(config.seed ^ 0x5F5F5F)

        def should_fold(copy: Copy) -> bool:
            # Live-range-split copies are kept by construction (they model the
            # copies a real optimizer must preserve); the rest fold with
            # probability ``fold_fraction``.
            if copy.dst.name.startswith("split"):
                return False
            return fold_rng.random() < config.fold_fraction

        fold_copies(function, should_fold=should_fold)
    remove_trivial_phis(function)
    remove_dead_code(function)
    if config.apply_abi:
        apply_calling_convention(function)
    validate_ssa(function)
    return function
