"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``translate``
    Parse a textual IR file, (optionally) build SSA and run the CSSA-breaking
    optimizations, translate out of SSA with a chosen engine/strategy, and
    print the resulting code plus statistics.  The whole run is one
    :class:`~repro.pipeline.Pipeline`.
``run``
    Interpret a textual IR file on the given integer arguments and print its
    observable behaviour.
``bench``
    Regenerate one of the paper's figures (5, 6 or 7) on the synthetic suite
    (batched through :class:`~repro.pipeline.Session`).
``stress``
    Run the stress-scale experiments on the deterministic random-CFG corpus:
    liveness (cold RPO / cold SCC / incremental re-solve) and/or the
    incremental interference matrix vs cold rebuilds
    (``--experiment {liveness,interference,both}``).
``list``
    List the available engine configurations, coalescing strategies,
    liveness backends and interference backends.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.bench.corpus import (
    STANDARD_SIZES,
    run_interference_stress,
    run_stress,
    scaled_specs,
)
from repro.bench.harness import run_figure5, run_figure6, run_figure7
from repro.bench.metrics import copy_counts
from repro.bench.reporting import (
    format_figure5,
    format_figure6,
    format_figure7,
    format_interference_stress,
    format_stress,
)
from repro.bench.suite import SUITE, build_suite
from repro.coalescing.variants import VARIANTS
from repro.interp import run_function
from repro.ir import format_function, parse_function
from repro.outofssa.config import (
    ENGINE_CONFIGURATIONS,
    INTERFERENCE_BACKENDS,
    LIVENESS_BACKENDS,
    EngineConfig,
    engine_by_name,
)
from repro.pipeline import Pipeline


def _load_function(path: str):
    with open(path) as handle:
        return parse_function(handle.read())


def _parse_args_list(text: str) -> List[int]:
    text = text.strip()
    if not text:
        return []
    return [int(part) for part in text.split(",")]


def _resolve_engine_config(args: argparse.Namespace) -> EngineConfig:
    """Resolve ``--engine`` / ``--variant`` / ``--liveness`` / ``--interference``
    into one config.

    Unknown names raise :class:`SystemExit` with the lookup error's message,
    so the user sees "unknown engine 'x'; known engines: ..." instead of a
    traceback.
    """
    try:
        if args.variant:
            builder = (
                EngineConfig.builder()
                .name(f"cli_{args.variant}")
                .label(args.variant)
                .coalescing(args.variant)
                .liveness("check")
                .interference("query")
                .linear_class_check(False)
            )
        else:
            builder = EngineConfig.builder(engine_by_name(args.engine))
        if args.liveness:
            builder.liveness(args.liveness)
        if getattr(args, "interference", None):
            builder.interference(args.interference)
        return builder.build()
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args else str(error)
        raise SystemExit(f"repro translate: {message}") from None


# --------------------------------------------------------------------------- commands
def command_translate(args: argparse.Namespace) -> int:
    config = _resolve_engine_config(args)
    function = _load_function(args.file)

    pipeline = Pipeline.for_engine(
        config,
        construct_ssa=args.construct_ssa,
        optimize=args.construct_ssa and args.optimize,
        abi=args.abi,
    )
    result = pipeline.run(function)
    print(format_function(function), end="")

    if args.stats:
        counts = copy_counts(function)
        print(f"# engine               : {result.config.label}", file=sys.stderr)
        print(f"# pipeline             : {pipeline.describe()}", file=sys.stderr)
        print(f"# phi copies inserted  : {result.stats.inserted_phi_copies}", file=sys.stderr)
        print(f"# copies coalesced     : {result.stats.coalesced}", file=sys.stderr)
        print(f"# copies remaining     : {counts.static_copies}", file=sys.stderr)
        print(f"# constant moves       : {counts.constant_moves}", file=sys.stderr)
        print(f"# translation time (ms): {result.stats.elapsed_seconds * 1e3:.3f}", file=sys.stderr)
    return 0


def command_run(args: argparse.Namespace) -> int:
    function = _load_function(args.file)
    result = run_function(function, _parse_args_list(args.args))
    print("return:", result.return_value)
    print("trace :", " ".join(str(value) for value in result.trace))
    print("steps :", result.steps)
    return 0


def command_bench(args: argparse.Namespace) -> int:
    names = None
    if args.benchmarks != "all":
        names = [name.strip() for name in args.benchmarks.split(",") if name.strip()]
    try:
        suite = build_suite(scale=args.scale, benchmarks=names)
    except KeyError as error:
        message = error.args[0] if error.args else str(error)
        raise SystemExit(f"repro bench: {message}") from None
    if args.figure == 5:
        print(format_figure5(run_figure5(suite)))
    elif args.figure == 6:
        print(format_figure6(run_figure6(suite)))
    elif args.figure == 7:
        print(format_figure7(run_figure7(suite)))
    else:
        raise SystemExit(f"unknown figure {args.figure}; expected 5, 6 or 7")
    return 0


def command_stress(args: argparse.Namespace) -> int:
    try:
        sizes = [int(part) for part in str(args.blocks).split(",") if part.strip()]
    except ValueError:
        raise SystemExit(f"repro stress: invalid --blocks {args.blocks!r}") from None
    if not sizes:
        sizes = list(STANDARD_SIZES)
    specs = scaled_specs(
        sizes,
        scale=args.scale,
        seed=args.seed,
        loop_depth=args.loop_depth,
        variables=args.variables,
        irreducible=args.irreducible,
    )
    tables = []
    if args.experiment in ("liveness", "both"):
        tables.append(format_stress(run_stress(specs, repeats=args.repeats)))
    if args.experiment in ("interference", "both"):
        tables.append(
            format_interference_stress(
                run_interference_stress(specs, repeats=args.repeats)
            )
        )
    table = "\n\n".join(tables)
    print(table)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(table + "\n")
        print(f"# written to {args.output}", file=sys.stderr)
    return 0


def command_list(_args: argparse.Namespace) -> int:
    print("engine configurations (Figures 6/7):")
    for config in ENGINE_CONFIGURATIONS:
        print(f"  {config.name:40s} {config.describe()}")
    print()
    print("coalescing strategies (Figure 5):")
    for variant in VARIANTS:
        print(f"  {variant.name:14s} {variant.label}")
    print()
    print("liveness backends (--liveness):")
    for kind, description in LIVENESS_BACKENDS.items():
        print(f"  {kind:14s} {description}")
    print()
    print("interference backends (--interference):")
    for kind, description in INTERFERENCE_BACKENDS.items():
        print(f"  {kind:14s} {description}")
    print()
    print("synthetic benchmarks:")
    for spec in SUITE:
        print(f"  {spec.name:14s} {spec.functions} functions, size {spec.size}")
    return 0


# --------------------------------------------------------------------------- parser
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Out-of-SSA translation (Boissinot et al., CGO 2009) — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    translate = sub.add_parser("translate", help="translate a textual IR file out of SSA")
    translate.add_argument("file", help="path to a textual IR file")
    translate.add_argument("--engine", default="us_i_linear_intercheck_livecheck",
                           help="engine configuration name (see 'repro list')")
    translate.add_argument("--variant", default=None,
                           help="coalescing strategy name (overrides --engine's strategy)")
    translate.add_argument("--liveness", default=None,
                           help="liveness backend (see 'repro list'): ordered sets, bit-set "
                                "worklist, or liveness checking (overrides the engine's backend)")
    translate.add_argument("--interference", default=None,
                           choices=sorted(INTERFERENCE_BACKENDS),
                           help="interference backend (see 'repro list'): eager bit-matrix, "
                                "on-the-fly queries, or the incrementally patched matrix "
                                "(overrides the engine's backend)")
    translate.add_argument("--construct-ssa", action="store_true",
                           help="build SSA first (for non-SSA input files)")
    translate.add_argument("--optimize", action="store_true",
                           help="run copy folding / value numbering after SSA construction")
    translate.add_argument("--abi", action="store_true",
                           help="apply calling-convention pinning around calls")
    translate.add_argument("--stats", action="store_true", help="print statistics to stderr")
    translate.set_defaults(handler=command_translate)

    run = sub.add_parser("run", help="interpret a textual IR file")
    run.add_argument("file", help="path to a textual IR file")
    run.add_argument("--args", default="", help="comma-separated integer arguments")
    run.set_defaults(handler=command_run)

    bench = sub.add_parser("bench", help="regenerate one of the paper's figures")
    bench.add_argument("--figure", type=int, default=5, choices=(5, 6, 7))
    bench.add_argument("--scale", type=float, default=0.4)
    bench.add_argument("--benchmarks", default="164.gzip,176.gcc,254.gap")
    bench.set_defaults(handler=command_bench)

    stress = sub.add_parser(
        "stress",
        help="liveness stress-scale experiment on the random-CFG corpus",
    )
    stress.add_argument("--blocks", default=",".join(str(s) for s in STANDARD_SIZES),
                        help="comma-separated corpus sizes in basic blocks")
    stress.add_argument("--scale", type=float, default=1.0,
                        help="multiply every corpus size (quick runs: 0.1)")
    stress.add_argument("--seed", type=int, default=0, help="corpus base seed")
    stress.add_argument("--loop-depth", type=int, default=5, help="maximum loop nesting")
    stress.add_argument("--variables", type=int, default=12,
                        help="per-region working-set size (variable pressure)")
    stress.add_argument("--irreducible", type=float, default=0.0,
                        help="probability of a second (irreducible) loop entry")
    stress.add_argument("--experiment", default="liveness",
                        choices=("liveness", "interference", "both"),
                        help="which incremental subsystem to stress")
    stress.add_argument("--repeats", type=int, default=3,
                        help="timing repeats (best-of)")
    stress.add_argument("--output", default=None,
                        help="also write the table to this file")
    stress.set_defaults(handler=command_stress)

    listing = sub.add_parser("list", help="list engines, strategies, liveness backends, benchmarks")
    listing.set_defaults(handler=command_list)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
