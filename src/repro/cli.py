"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``translate``
    Parse a textual IR file, (optionally) build SSA and run the CSSA-breaking
    optimizations, translate out of SSA with a chosen engine/strategy, and
    print the resulting code plus statistics.  The whole run is one
    :class:`~repro.pipeline.Pipeline`.
``run``
    Interpret a textual IR file on the given integer arguments and print its
    observable behaviour.
``bench``
    Regenerate one of the paper's figures (5, 6 or 7) on the synthetic suite
    (batched through :class:`~repro.pipeline.Session`).
``stress``
    Run the stress-scale experiments on the deterministic random-CFG corpus:
    liveness (cold RPO / cold SCC / incremental re-solve) and/or the
    incremental interference matrix vs cold rebuilds
    (``--experiment {liveness,interference,both}``).
``serve``
    Run the translation daemon: a sharded scheduler with content-addressed
    warm caches behind a newline-delimited-JSON socket (see docs/SERVICE.md).
``request``
    Drive a running daemon: ``translate`` one or more IR files, or issue the
    ``stats`` / ``flush`` / ``ping`` / ``shutdown`` maintenance verbs.
``bench-serve``
    The service throughput experiment: cold vs warm vs sharded requests/sec
    over a repeat-heavy stream from the stress corpus.
``list``
    List the available engine configurations, coalescing strategies,
    liveness backends and interference backends (``--json`` emits the same
    catalogue machine-readably, with engine fingerprints for cache-key
    negotiation).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.bench.corpus import (
    STANDARD_SIZES,
    run_interference_stress,
    run_stress,
    scaled_specs,
)
from repro.bench.harness import (
    run_figure5,
    run_figure6,
    run_figure7,
    run_service_concurrency,
    run_service_throughput,
)
from repro.bench.metrics import copy_counts
from repro.bench.reporting import (
    format_figure5,
    format_figure6,
    format_figure7,
    format_interference_stress,
    format_service_concurrency,
    format_service_throughput,
    format_stress,
)
from repro.bench.suite import SUITE, build_suite
from repro.coalescing.variants import VARIANTS
from repro.interp import run_function
from repro.ir import ValidationError, format_function, parse_function, validate_function
from repro.outofssa.config import (
    CORE_BACKENDS,
    ENGINE_CONFIGURATIONS,
    INTERFERENCE_BACKENDS,
    LIVENESS_BACKENDS,
    EngineConfig,
    engine_by_name,
)
from repro.pipeline import Pipeline


def _load_function(path: str, validate: bool = True):
    """Parse a textual IR file, structurally validating by default.

    Validation-before-use means malformed text fails at the ingest boundary
    with a located diagnostic instead of deep inside a pass; ``--no-validate``
    is the escape hatch for deliberately broken inputs.
    """
    with open(path) as handle:
        function = parse_function(handle.read())
    if validate:
        try:
            validate_function(function)
        except ValidationError as error:
            raise SystemExit(
                f"repro: {path}: {error} (use --no-validate to skip this check)"
            ) from None
    return function


def _parse_args_list(text: str) -> List[int]:
    text = text.strip()
    if not text:
        return []
    return [int(part) for part in text.split(",")]


def _resolve_engine_config(args: argparse.Namespace) -> EngineConfig:
    """Resolve ``--engine`` / ``--variant`` / ``--liveness`` / ``--interference``
    into one config.

    Unknown names raise :class:`SystemExit` with the lookup error's message,
    so the user sees "unknown engine 'x'; known engines: ..." instead of a
    traceback.
    """
    try:
        if args.variant:
            builder = (
                EngineConfig.builder()
                .name(f"cli_{args.variant}")
                .label(args.variant)
                .coalescing(args.variant)
                .liveness("check")
                .interference("query")
                .linear_class_check(False)
            )
        else:
            builder = EngineConfig.builder(engine_by_name(args.engine))
        if args.liveness:
            builder.liveness(args.liveness)
        if getattr(args, "interference", None):
            builder.interference(args.interference)
        if getattr(args, "verify", None):
            builder.verify(args.verify)
        if getattr(args, "core", None):
            builder.core(args.core)
        return builder.build()
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args else str(error)
        raise SystemExit(f"repro translate: {message}") from None


# --------------------------------------------------------------------------- commands
def command_translate(args: argparse.Namespace) -> int:
    config = _resolve_engine_config(args)
    function = _load_function(args.file, validate=not args.no_validate)

    pipeline = Pipeline.for_engine(
        config,
        construct_ssa=args.construct_ssa,
        optimize=args.construct_ssa and args.optimize,
        abi=args.abi,
    )
    result = pipeline.run(function)
    print(format_function(function), end="")

    report = result.verify_report
    if report is not None and report.diagnostics:
        print(report.render(), file=sys.stderr)

    if args.stats:
        counts = copy_counts(function)
        print(f"# engine               : {result.config.label}", file=sys.stderr)
        print(f"# pipeline             : {pipeline.describe()}", file=sys.stderr)
        print(f"# phi copies inserted  : {result.stats.inserted_phi_copies}", file=sys.stderr)
        print(f"# copies coalesced     : {result.stats.coalesced}", file=sys.stderr)
        print(f"# copies remaining     : {counts.static_copies}", file=sys.stderr)
        print(f"# constant moves       : {counts.constant_moves}", file=sys.stderr)
        print(f"# translation time (ms): {result.stats.elapsed_seconds * 1e3:.3f}", file=sys.stderr)
        print(f"# ir core              : {result.stats.core}", file=sys.stderr)
        if result.stats.core == "flat":
            print(f"# arena lowering (ms)  : {result.stats.lowering_ms:.3f}", file=sys.stderr)
            print(f"# arena tables (bytes) : {result.stats.flat_bytes}", file=sys.stderr)
        if report is not None:
            print(f"# verify time (ms)     : {result.stats.verify_ms:.3f}", file=sys.stderr)
    if report is not None and report.errors:
        return 1
    return 0


def command_run(args: argparse.Namespace) -> int:
    function = _load_function(args.file, validate=not args.no_validate)
    result = run_function(function, _parse_args_list(args.args))
    print("return:", result.return_value)
    print("trace :", " ".join(str(value) for value in result.trace))
    print("steps :", result.steps)
    return 0


def _gallery_programs():
    from repro.gallery import (
        figure1_branch_use,
        figure2_branch_with_decrement,
        figure3_swap_problem,
        figure4_lost_copy_problem,
    )

    return [
        figure1_branch_use(),
        figure2_branch_with_decrement(),
        figure3_swap_problem(),
        figure4_lost_copy_problem(),
    ]


def command_verify(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.verify.checks import check_structure
    from repro.verify.diagnostics import VerifyReport

    config = _resolve_engine_config(args)
    targets = []
    for path in args.files:
        with open(path) as handle:
            try:
                targets.append((path, parse_function(handle.read())))
            except ValueError as error:
                raise SystemExit(f"repro verify: {path}: {error}") from None
    if args.gallery:
        targets.extend((f"gallery:{fn.name}", fn) for fn in _gallery_programs())
    if not targets:
        raise SystemExit("repro verify: no targets (give IR files and/or --gallery)")

    reports = []
    for name, function in targets:
        structural = check_structure(function)
        if any(diag.is_error for diag in structural):
            # Translation would crash on a structurally broken function;
            # report what the input checks found and stop there.
            report = VerifyReport(function=function.name, level=args.level)
            report.stages_run.append("input")
            report.extend(structural)
        else:
            checked = dataclasses.replace(config, verify_level=args.level)
            report = Pipeline.for_engine(checked).run(function).verify_report
        reports.append((name, report))

    failed = sum(1 for _name, report in reports if not report.ok)
    if args.json:
        payload = {
            "level": args.level,
            "engine": config.name,
            "ok": failed == 0,
            "targets": [
                {"target": name, **report.to_payload()} for name, report in reports
            ],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for name, report in reports:
            print(f"== {name}")
            print(report.render())
    return 1 if failed else 0


def command_bench(args: argparse.Namespace) -> int:
    names = None
    if args.benchmarks != "all":
        names = [name.strip() for name in args.benchmarks.split(",") if name.strip()]
    try:
        suite = build_suite(scale=args.scale, benchmarks=names)
    except KeyError as error:
        message = error.args[0] if error.args else str(error)
        raise SystemExit(f"repro bench: {message}") from None
    if args.figure == 5:
        print(format_figure5(run_figure5(suite)))
    elif args.figure == 6:
        print(format_figure6(run_figure6(suite)))
    elif args.figure == 7:
        print(format_figure7(run_figure7(suite)))
    else:
        raise SystemExit(f"unknown figure {args.figure}; expected 5, 6 or 7")
    return 0


def command_stress(args: argparse.Namespace) -> int:
    try:
        sizes = [int(part) for part in str(args.blocks).split(",") if part.strip()]
    except ValueError:
        raise SystemExit(f"repro stress: invalid --blocks {args.blocks!r}") from None
    if not sizes:
        sizes = list(STANDARD_SIZES)
    specs = scaled_specs(
        sizes,
        scale=args.scale,
        seed=args.seed,
        loop_depth=args.loop_depth,
        variables=args.variables,
        irreducible=args.irreducible,
    )
    profiler = None
    if args.profile:
        # Profile exactly the experiment loops (corpus generation included —
        # it is part of what a cold run pays), not the argument parsing or
        # the report formatting; see docs/ARCHITECTURE.md ("Profiling").
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        tables = []
        if args.experiment in ("liveness", "both"):
            tables.append(format_stress(run_stress(specs, repeats=args.repeats)))
        if args.experiment in ("interference", "both"):
            tables.append(
                format_interference_stress(
                    run_interference_stress(specs, repeats=args.repeats)
                )
            )
        if args.verify != "off":
            from repro.bench.harness import run_verify_stress
            from repro.bench.reporting import format_verify_stress

            tables.append(
                format_verify_stress(
                    run_verify_stress(specs, level=args.verify, engine=args.engine)
                )
            )
    finally:
        if profiler is not None:
            profiler.disable()
            profiler.dump_stats(args.profile)
            print(
                f"# profile written to {args.profile} "
                f"(inspect: python -m pstats {args.profile})",
                file=sys.stderr,
            )
    table = "\n\n".join(tables)
    print(table)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(table + "\n")
        print(f"# written to {args.output}", file=sys.stderr)
    return 0


def command_serve(args: argparse.Namespace) -> int:
    from repro.service.server import TranslationServer

    try:
        config = engine_by_name(args.engine)
    except KeyError as error:
        message = error.args[0] if error.args else str(error)
        raise SystemExit(f"repro serve: {message}") from None
    try:
        server = TranslationServer(
            (args.host, args.port),
            engine=config,
            shards=args.shards,
            mode=args.mode,
            capacity=args.capacity,
            parallel_coalescing=args.parallel_coalescing,
            workers=args.workers,
            max_pending=args.max_pending,
            max_pipeline=args.max_pipeline,
            metrics_interval=args.metrics_interval,
        )
    except (OSError, ValueError) as error:
        raise SystemExit(f"repro serve: {error}") from None
    # Scripts (the CI lane) parse this exact line to learn the bound port.
    print(f"repro serve: listening on {server.host}:{server.port} "
          f"(engine {config.name}, {args.shards} shards, {args.mode} mode)",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    print("repro serve: stopped", flush=True)
    return 0


def command_request(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient, ServiceError

    verb = args.verb
    if verb in ("translate", "translate_batch", "verify") and not args.files:
        raise SystemExit(f"repro request: {verb} needs at least one IR file")
    try:
        with ServiceClient(port=args.port, host=args.host, timeout=args.timeout) as client:
            if verb in ("translate", "translate_batch"):
                texts = []
                for path in args.files:
                    with open(path) as handle:
                        texts.append(handle.read())
                responses = client.translate_batch(texts, engine=args.engine)
                for path, response in zip(args.files, responses):
                    print(response["ir"], end="")
                    print(
                        f"# {path}: engine {response['engine']}, "
                        f"{'cache hit' if response['cached'] else response['kind']}, "
                        f"digest {str(response['digest'])[:12]}",
                        file=sys.stderr,
                    )
            elif verb == "verify":
                exit_code = 0
                for path in args.files:
                    with open(path) as handle:
                        response = client.verify(
                            handle.read(), engine=args.engine, level=args.level
                        )
                    print(json.dumps({"target": path, **response},
                                     indent=2, sort_keys=True))
                    if response.get("errors"):
                        exit_code = 1
                return exit_code
            elif verb == "stats":
                print(json.dumps(client.stats(), indent=2, sort_keys=True))
            elif verb == "metrics":
                print(json.dumps(client.metrics(), indent=2, sort_keys=True))
            elif verb == "flush":
                print(f"flushed {client.flush()} cache entries")
            elif verb == "ping":
                print(json.dumps(client.ping(), indent=2, sort_keys=True))
            elif verb == "shutdown":
                client.shutdown()
                print("daemon stopping")
    except (ServiceError, OSError) as error:
        raise SystemExit(f"repro request: {error}") from None
    return 0


def command_bench_serve(args: argparse.Namespace) -> int:
    try:
        rows = run_service_throughput(
            blocks=args.blocks,
            functions=args.functions,
            repeat=args.repeat,
            shards=args.shards,
            engine=args.engine,
            scale=args.scale,
            mode=args.mode,
            parallel_coalescing=args.parallel_coalescing,
            seed=args.seed,
        )
    except KeyError as error:
        message = error.args[0] if error.args else str(error)
        raise SystemExit(f"repro bench-serve: {message}") from None
    table = format_service_throughput(rows)
    if args.clients:
        concurrency_rows = run_service_concurrency(
            clients=args.clients,
            blocks=args.blocks,
            functions=args.functions,
            engine=args.engine,
            shards=args.shards,
            scale=args.scale,
            seed=args.seed,
        )
        table += "\n\n" + format_service_concurrency(concurrency_rows)
    print(table)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(table + "\n")
        print(f"# written to {args.output}", file=sys.stderr)
    return 0


def _list_catalogue() -> dict:
    """The machine-readable ``repro list --json`` document."""
    return {
        "engines": [
            {
                "name": config.name,
                "label": config.label,
                "coalescing": config.coalescing,
                "liveness": config.liveness,
                "interference": config.interference,
                "linear_class_check": config.linear_class_check,
                "on_branch_def": config.on_branch_def,
                "core": config.core,
                "fingerprint": config.fingerprint(),
                "describe": config.describe(),
            }
            for config in ENGINE_CONFIGURATIONS
        ],
        "coalescing_strategies": [
            {"name": variant.name, "label": variant.label} for variant in VARIANTS
        ],
        "liveness_backends": dict(LIVENESS_BACKENDS),
        "interference_backends": dict(INTERFERENCE_BACKENDS),
        "cores": dict(CORE_BACKENDS),
        "benchmarks": [
            {"name": spec.name, "functions": spec.functions, "size": spec.size}
            for spec in SUITE
        ],
    }


def command_list(args: argparse.Namespace) -> int:
    if getattr(args, "json", False):
        print(json.dumps(_list_catalogue(), indent=2, sort_keys=True))
        return 0
    print("engine configurations (Figures 6/7):")
    for config in ENGINE_CONFIGURATIONS:
        print(f"  {config.name:40s} {config.describe()}")
    print()
    print("coalescing strategies (Figure 5):")
    for variant in VARIANTS:
        print(f"  {variant.name:14s} {variant.label}")
    print()
    print("liveness backends (--liveness):")
    for kind, description in LIVENESS_BACKENDS.items():
        print(f"  {kind:14s} {description}")
    print()
    print("interference backends (--interference):")
    for kind, description in INTERFERENCE_BACKENDS.items():
        print(f"  {kind:14s} {description}")
    print()
    print("IR cores (--core):")
    for kind, description in CORE_BACKENDS.items():
        print(f"  {kind:14s} {description}")
    print()
    print("synthetic benchmarks:")
    for spec in SUITE:
        print(f"  {spec.name:14s} {spec.functions} functions, size {spec.size}")
    return 0


# --------------------------------------------------------------------------- parser
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Out-of-SSA translation (Boissinot et al., CGO 2009) — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    translate = sub.add_parser("translate", help="translate a textual IR file out of SSA")
    translate.add_argument("file", help="path to a textual IR file")
    translate.add_argument("--engine", default="us_i_linear_intercheck_livecheck",
                           help="engine configuration name (see 'repro list')")
    translate.add_argument("--variant", default=None,
                           help="coalescing strategy name (overrides --engine's strategy)")
    translate.add_argument("--liveness", default=None,
                           help="liveness backend (see 'repro list'): ordered sets, bit-set "
                                "worklist, or liveness checking (overrides the engine's backend)")
    translate.add_argument("--interference", default=None,
                           choices=sorted(INTERFERENCE_BACKENDS),
                           help="interference backend (see 'repro list'): eager bit-matrix, "
                                "on-the-fly queries, or the incrementally patched matrix "
                                "(overrides the engine's backend)")
    translate.add_argument("--core", default=None, choices=sorted(CORE_BACKENDS),
                           help="IR core driving the hot sweeps (see 'repro list'): the "
                                "flat int-array arena (default) or the object-graph "
                                "reference walks (differential baseline)")
    translate.add_argument("--construct-ssa", action="store_true",
                           help="build SSA first (for non-SSA input files)")
    translate.add_argument("--optimize", action="store_true",
                           help="run copy folding / value numbering after SSA construction")
    translate.add_argument("--abi", action="store_true",
                           help="apply calling-convention pinning around calls")
    translate.add_argument("--stats", action="store_true", help="print statistics to stderr")
    translate.add_argument("--verify", default="off", choices=("off", "fast", "full"),
                           help="run the staged invariant checkers during translation; "
                                "findings print to stderr and errors fail the command")
    translate.add_argument("--no-validate", action="store_true",
                           help="skip the structural validation of the input file")
    translate.set_defaults(handler=command_translate)

    run = sub.add_parser("run", help="interpret a textual IR file")
    run.add_argument("file", help="path to a textual IR file")
    run.add_argument("--args", default="", help="comma-separated integer arguments")
    run.add_argument("--no-validate", action="store_true",
                     help="skip the structural validation of the input file")
    run.set_defaults(handler=command_run)

    verify = sub.add_parser(
        "verify",
        help="run the staged invariant checkers over IR files (see docs/VERIFY.md)",
    )
    verify.add_argument("files", nargs="*", help="textual IR files to check")
    verify.add_argument("--gallery", action="store_true",
                        help="also check the paper's gallery programs")
    verify.add_argument("--engine", default="us_i_linear_intercheck_livecheck",
                        help="engine configuration to translate under (see 'repro list')")
    verify.add_argument("--variant", default=None,
                        help="coalescing strategy name (overrides --engine's strategy)")
    verify.add_argument("--liveness", default=None,
                        help="liveness backend override (see 'repro list')")
    verify.add_argument("--interference", default=None,
                        choices=sorted(INTERFERENCE_BACKENDS),
                        help="interference backend override (see 'repro list')")
    verify.add_argument("--core", default=None, choices=sorted(CORE_BACKENDS),
                        help="IR core override (see 'repro list')")
    verify.add_argument("--level", default="full", choices=("fast", "full"),
                        help="checker depth (fast: structural in/out; full: every stage)")
    verify.add_argument("--json", action="store_true",
                        help="emit the diagnostics as JSON")
    verify.set_defaults(handler=command_verify)

    bench = sub.add_parser("bench", help="regenerate one of the paper's figures")
    bench.add_argument("--figure", type=int, default=5, choices=(5, 6, 7))
    bench.add_argument("--scale", type=float, default=0.4)
    bench.add_argument("--benchmarks", default="164.gzip,176.gcc,254.gap")
    bench.set_defaults(handler=command_bench)

    stress = sub.add_parser(
        "stress",
        help="liveness stress-scale experiment on the random-CFG corpus",
    )
    stress.add_argument("--blocks", default=",".join(str(s) for s in STANDARD_SIZES),
                        help="comma-separated corpus sizes in basic blocks")
    stress.add_argument("--scale", type=float, default=1.0,
                        help="multiply every corpus size (quick runs: 0.1)")
    stress.add_argument("--seed", type=int, default=0, help="corpus base seed")
    stress.add_argument("--loop-depth", type=int, default=5, help="maximum loop nesting")
    stress.add_argument("--variables", type=int, default=12,
                        help="per-region working-set size (variable pressure)")
    stress.add_argument("--irreducible", type=float, default=0.0,
                        help="probability of a second (irreducible) loop entry")
    stress.add_argument("--experiment", default="liveness",
                        choices=("liveness", "interference", "both"),
                        help="which incremental subsystem to stress")
    stress.add_argument("--repeats", type=int, default=3,
                        help="timing repeats (best-of)")
    stress.add_argument("--verify", default="off", choices=("off", "fast", "full"),
                        help="also translate the corpus in checked mode and report "
                             "diagnostic counts plus checker overhead")
    stress.add_argument("--engine", default="us_i_linear_intercheck_livecheck",
                        help="engine configuration for the --verify table")
    stress.add_argument("--output", default=None,
                        help="also write the table to this file")
    stress.add_argument("--profile", default=None, metavar="OUT.prof",
                        help="dump a cProfile of the experiment loops to this "
                             "file (inspect with python -m pstats, or snakeviz "
                             "where available)")
    stress.set_defaults(handler=command_stress)

    serve = sub.add_parser(
        "serve",
        help="run the translation daemon (newline-delimited JSON over TCP)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="interface to bind")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (0 picks a free one; the bound port is printed)")
    serve.add_argument("--engine", default="us_i",
                       help="default engine configuration (see 'repro list')")
    serve.add_argument("--shards", type=int, default=2,
                       help="digest-affine translation shards")
    serve.add_argument("--mode", default="thread", choices=("serial", "thread", "process"),
                       help="how batch requests fan out across shards")
    serve.add_argument("--capacity", type=int, default=256,
                       help="cache entries per shard (0 disables caching)")
    serve.add_argument("--parallel-coalescing", type=int, default=0,
                       help="worker threads for the in-shard class-row merge prefilter "
                            "(0/1 = serial coalescing)")
    serve.add_argument("--workers", type=int, default=None,
                       help="translation worker threads (default: max(2, shards))")
    serve.add_argument("--max-pending", type=int, default=64,
                       help="admission limit: queued+running items before requests "
                            "are shed with an 'overloaded' response")
    serve.add_argument("--max-pipeline", type=int, default=32,
                       help="in-flight requests per connection before reads pause")
    serve.add_argument("--metrics-interval", type=float, default=0.0,
                       help="seconds between metrics log lines (0 disables)")
    serve.set_defaults(handler=command_serve)

    request = sub.add_parser("request", help="drive a running translation daemon")
    request.add_argument("verb",
                         choices=("translate", "translate_batch", "verify", "stats",
                                  "metrics", "flush", "ping", "shutdown"),
                         help="protocol verb to issue")
    request.add_argument("files", nargs="*",
                         help="textual IR files (translate/translate_batch/verify)")
    request.add_argument("--level", default="full", choices=("fast", "full"),
                         help="checker depth for the verify verb")
    request.add_argument("--host", default="127.0.0.1")
    request.add_argument("--port", type=int, required=True,
                         help="port the daemon printed at startup")
    request.add_argument("--engine", default=None,
                         help="engine configuration override for this request")
    request.add_argument("--timeout", type=float, default=60.0,
                         help="socket timeout in seconds")
    request.set_defaults(handler=command_request)

    bench_serve = sub.add_parser(
        "bench-serve",
        help="service throughput experiment: cold vs warm vs sharded req/s",
    )
    bench_serve.add_argument("--blocks", type=int, default=5000,
                             help="stress-CFG size per request function")
    bench_serve.add_argument("--functions", type=int, default=3,
                             help="distinct hot functions in the stream")
    bench_serve.add_argument("--repeat", type=int, default=6,
                             help="times the stream revisits each function")
    bench_serve.add_argument("--shards", type=int, default=4,
                             help="shards for the sharded mode row")
    bench_serve.add_argument("--engine", default="us_i",
                             help="engine configuration (see 'repro list')")
    bench_serve.add_argument("--scale", type=float, default=1.0,
                             help="multiply the corpus size (quick runs: 0.1)")
    bench_serve.add_argument("--mode", default="thread",
                             choices=("serial", "thread", "process"),
                             help="scheduler mode for the sharded row")
    bench_serve.add_argument("--parallel-coalescing", type=int, default=0,
                             help="in-shard parallel coalescing workers")
    bench_serve.add_argument("--clients", type=int, default=0,
                             help="also run the pipelined concurrent-clients "
                                  "experiment with this many connections (0 skips)")
    bench_serve.add_argument("--seed", type=int, default=0, help="corpus base seed")
    bench_serve.add_argument("--output", default=None,
                             help="also write the table to this file")
    bench_serve.set_defaults(handler=command_bench_serve)

    listing = sub.add_parser("list", help="list engines, strategies, liveness backends, benchmarks")
    listing.add_argument("--json", action="store_true",
                         help="emit the catalogue as JSON (includes per-engine "
                              "liveness/interference backends and cache fingerprints)")
    listing.set_defaults(handler=command_list)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
