"""repro — a reproduction of "Revisiting Out-of-SSA Translation for
Correctness, Code Quality, and Efficiency" (Boissinot, Darte, Rastello,
Dupont de Dinechin, Guillon — CGO 2009).

The package is organised in small sub-packages (see README.md / DESIGN.md).
The whole SSA → out-of-SSA stack runs as a *pass pipeline* over a *shared
analysis cache*:

* building / parsing programs: :class:`~repro.ir.builder.FunctionBuilder`,
  :func:`~repro.ir.parser.parse_function`, :func:`~repro.ir.printer.format_function`;
* composing a run: :class:`~repro.pipeline.Pipeline` — e.g.
  ``Pipeline.for_engine("us_i", construct_ssa=True, optimize=True).run(fn)``
  chains SSA construction, the conventionality-breaking optimizations and the
  paper's four out-of-SSA phases (isolation, interference, coalescing,
  materialization) as introspectable passes; each pass declares which analyses
  (dominator tree, variable numbering, liveness, intersection, SSA values,
  block frequencies) it preserves and the
  :class:`~repro.pipeline.AnalysisCache` invalidates the rest, so one
  :class:`~repro.liveness.numbering.VariableNumbering` instance backs both the
  bit-set liveness rows and the interference bit-matrix of a run;
* configuring engines: the seven Figure 6/7 configurations in
  :data:`~repro.outofssa.config.ENGINE_CONFIGURATIONS`
  (:func:`~repro.outofssa.config.engine_by_name`), custom ones via the fluent
  :class:`~repro.outofssa.config.EngineConfigBuilder`
  (``EngineConfig.builder("us_i").liveness("sets").build()``), and the
  Figure 5 coalescing strategies in :data:`~repro.coalescing.variants.VARIANTS`;
* batch translation: :class:`~repro.pipeline.Session` —
  ``Session("us_i").translate_many(functions)`` reuses one pipeline across a
  whole suite with per-function allocation trackers (what the benchmark
  harness runs on);
* one-shot convenience: :func:`~repro.outofssa.driver.destruct_ssa`, a thin
  wrapper over the pipeline kept for backward compatibility;
* checking behaviour: :func:`~repro.interp.interpreter.run_function`;
* regenerating the paper's experiments: :mod:`repro.bench`;
* serving translations as a daemon: :mod:`repro.service` —
  :class:`~repro.service.translator.TranslationService` (a content-addressed
  warm cache keyed by IR digest × ``EngineConfig.fingerprint()`` in front of
  warm sessions), :class:`~repro.service.scheduler.ShardedScheduler`
  (digest-affine shards, threads for warm traffic / processes for cold
  batches, in-shard parallel coalescing over the congruence-class matrix
  rows), and the ``repro serve`` / ``repro request`` daemon pair speaking
  newline-delimited JSON (see ``docs/SERVICE.md``).
"""

from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.parser import parse_function
from repro.ir.printer import format_function
from repro.interp.interpreter import run_function
from repro.outofssa.driver import (
    DEFAULT_ENGINE,
    ENGINE_CONFIGURATIONS,
    INTERFERENCE_BACKENDS,
    LIVENESS_BACKENDS,
    EngineConfig,
    EngineConfigBuilder,
    OutOfSSAResult,
    destruct_ssa,
    engine_by_name,
)
from repro.pipeline import AnalysisCache, Pass, PassManager, Pipeline, Session
from repro.service import (
    ServiceClient,
    ShardedScheduler,
    TranslationCache,
    TranslationServer,
    TranslationService,
)
from repro.coalescing.variants import VARIANTS, variant_by_name
from repro.ssa.construction import construct_ssa
from repro.ssa.copy_folding import fold_copies, value_number

__version__ = "1.3.0"

__all__ = [
    "Function",
    "FunctionBuilder",
    "parse_function",
    "format_function",
    "run_function",
    "destruct_ssa",
    "DEFAULT_ENGINE",
    "ENGINE_CONFIGURATIONS",
    "INTERFERENCE_BACKENDS",
    "LIVENESS_BACKENDS",
    "EngineConfig",
    "EngineConfigBuilder",
    "OutOfSSAResult",
    "engine_by_name",
    "AnalysisCache",
    "Pass",
    "PassManager",
    "Pipeline",
    "ServiceClient",
    "Session",
    "ShardedScheduler",
    "TranslationCache",
    "TranslationServer",
    "TranslationService",
    "VARIANTS",
    "variant_by_name",
    "construct_ssa",
    "fold_copies",
    "value_number",
    "__version__",
]
