"""repro — a reproduction of "Revisiting Out-of-SSA Translation for
Correctness, Code Quality, and Efficiency" (Boissinot, Darte, Rastello,
Dupont de Dinechin, Guillon — CGO 2009).

The package is organised in small sub-packages (see README.md / DESIGN.md);
this top-level module re-exports the handful of entry points most users need:

* building / parsing programs: :class:`~repro.ir.builder.FunctionBuilder`,
  :func:`~repro.ir.parser.parse_function`, :func:`~repro.ir.printer.format_function`;
* bringing code to (non-conventional) SSA: :func:`~repro.ssa.construction.construct_ssa`,
  :func:`~repro.ssa.copy_folding.fold_copies`, :func:`~repro.ssa.copy_folding.value_number`;
* leaving SSA: :func:`~repro.outofssa.driver.destruct_ssa` with
  :data:`~repro.outofssa.driver.ENGINE_CONFIGURATIONS` (the paper's Figure 6/7
  engines) and the Figure 5 coalescing strategies in
  :data:`~repro.coalescing.variants.VARIANTS`;
* checking behaviour: :func:`~repro.interp.interpreter.run_function`;
* regenerating the paper's experiments: :mod:`repro.bench`.
"""

from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.parser import parse_function
from repro.ir.printer import format_function
from repro.interp.interpreter import run_function
from repro.outofssa.driver import (
    DEFAULT_ENGINE,
    ENGINE_CONFIGURATIONS,
    EngineConfig,
    OutOfSSAResult,
    destruct_ssa,
    engine_by_name,
)
from repro.coalescing.variants import VARIANTS, variant_by_name
from repro.ssa.construction import construct_ssa
from repro.ssa.copy_folding import fold_copies, value_number

__version__ = "1.0.0"

__all__ = [
    "Function",
    "FunctionBuilder",
    "parse_function",
    "format_function",
    "run_function",
    "destruct_ssa",
    "DEFAULT_ENGINE",
    "ENGINE_CONFIGURATIONS",
    "EngineConfig",
    "OutOfSSAResult",
    "engine_by_name",
    "VARIANTS",
    "variant_by_name",
    "construct_ssa",
    "fold_copies",
    "value_number",
    "__version__",
]
