"""Interference: definitions, graph representation, congruence classes."""

from repro.interference.definitions import (
    InterferenceKind,
    InterferenceTest,
    make_interference_test,
)
from repro.interference.graph import InterferenceGraph
from repro.interference.congruence import CongruenceClass, CongruenceClasses

__all__ = [
    "InterferenceKind",
    "InterferenceTest",
    "make_interference_test",
    "InterferenceGraph",
    "CongruenceClass",
    "CongruenceClasses",
]
