"""Interference: the pluggable backend stack, graph representation, congruence classes.

The stack mirrors the liveness one: one protocol
(:class:`~repro.interference.base.InterferenceOracle`), three backends —
``query`` (pairwise dominance/value queries, the paper's contribution),
``matrix`` (eager half bit-matrix) and ``incremental`` (the matrix kept valid
across pass-emitted edit logs) — selected per engine via
``EngineConfig.interference`` / CLI ``--interference``.
"""

from repro.interference.base import (
    InterferenceKind,
    InterferenceOracle,
    QueryInterference,
)
from repro.interference.definitions import InterferenceTest, make_interference_test
from repro.interference.graph import (
    IncrementalMatrixInterference,
    InterferenceGraph,
    MatrixInterference,
    scan_interference_edges,
)
from repro.interference.congruence import CongruenceClass, CongruenceClasses

__all__ = [
    "InterferenceKind",
    "InterferenceOracle",
    "QueryInterference",
    "MatrixInterference",
    "IncrementalMatrixInterference",
    "InterferenceTest",
    "make_interference_test",
    "InterferenceGraph",
    "scan_interference_edges",
    "CongruenceClass",
    "CongruenceClasses",
]
