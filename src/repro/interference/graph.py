"""Explicit interference graph stored as a half bit-matrix.

This is the memory-hungry baseline representation the paper's "Sreedhar III"
and plain "Us I"/"Us III" configurations use; the ``InterCheck``/``LiveCheck``
configurations avoid building it altogether.  The class therefore exists for
two reasons: as a faithful baseline for the Figure 6/7 experiments, and as a
cross-check for the query-based tests.

The universe of indexed variables can be restricted (the paper restricts it to
φ-related and copy-related variables) and grows dynamically when virtualized
copies are materialized, exactly like in Method III.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.ir.function import Function
from repro.ir.instructions import Variable
from repro.interference.definitions import InterferenceKind, InterferenceTest
from repro.liveness.numbering import VariableNumbering
from repro.utils.bitset import BitMatrix
from repro.utils.instrument import current_tracker


class InterferenceGraph:
    """Half bit-matrix over an (extensible) universe of variables.

    Variable-to-index mapping is a
    :class:`~repro.liveness.numbering.VariableNumbering` — the same dense,
    append-only numbering the bit-set liveness backend uses — so both bit
    structures agree on what "variable i" means when they are built over the
    same universe.
    """

    def __init__(self, universe: Iterable[Variable] = ()) -> None:
        self._numbering = VariableNumbering()
        self._matrix = BitMatrix()
        for var in universe:
            self.add_variable(var)

    # -- universe management -------------------------------------------------------
    def add_variable(self, var: Variable) -> int:
        """Add ``var`` to the universe (idempotent); return its index."""
        numbering = self._numbering
        before = len(numbering)
        index = numbering.ensure(var)
        if index < before:          # already numbered: single-lookup fast path
            return index
        old_bytes = self._matrix.footprint_bytes()
        self._matrix.grow(index + 1)
        tracker = current_tracker()
        if tracker is not None:
            tracker.resize("interference_graph", old_bytes, self._matrix.footprint_bytes())
        return index

    def __contains__(self, var: Variable) -> bool:
        return var in self._numbering

    def variables(self) -> List[Variable]:
        return list(self._numbering)

    def __len__(self) -> int:
        return len(self._numbering)

    # -- edges ------------------------------------------------------------------------
    def add_edge(self, a: Variable, b: Variable) -> None:
        if a == b:
            return
        self._matrix.set(self.add_variable(a), self.add_variable(b))

    def interferes(self, a: Variable, b: Variable) -> bool:
        index_a = self._numbering.get(a)
        index_b = self._numbering.get(b)
        if index_a is None or index_b is None or index_a == index_b:
            return False
        return self._matrix.test(index_a, index_b)

    def neighbours(self, var: Variable) -> List[Variable]:
        index = self._numbering.get(var)
        if index is None:
            return []
        variable = self._numbering.variable
        return [variable(other) for other in self._matrix.neighbours(index)]

    def edge_count(self) -> int:
        return sum(
            1
            for i in range(len(self._numbering))
            for j in range(i)
            if self._matrix.test(i, j)
        )

    # -- memory accounting ----------------------------------------------------------------
    def footprint_bytes(self) -> int:
        return self._matrix.footprint_bytes()

    @staticmethod
    def evaluated_footprint(num_variables: int) -> int:
        return BitMatrix.evaluated_footprint(num_variables)

    # -- construction from a pairwise test ---------------------------------------------------
    @classmethod
    def build_all_pairs(
        cls,
        function: Function,
        test: InterferenceTest,
        universe: Optional[Iterable[Variable]] = None,
    ) -> "InterferenceGraph":
        """Reference construction: test every pair of the universe.

        Quadratic; kept as a cross-check for :meth:`build`, which is the
        construction the engines use.
        """
        candidates = list(universe) if universe is not None else function.variables()
        graph = cls(candidates)
        for i, a in enumerate(candidates):
            for b in candidates[i + 1:]:
                if test.interferes(a, b):
                    graph.add_edge(a, b)
        return graph

    @classmethod
    def build(
        cls,
        function: Function,
        test: InterferenceTest,
        universe: Optional[Iterable[Variable]] = None,
    ) -> "InterferenceGraph":
        """Build the graph by one backward scan per block ("costly traversal of
        the program", §IV): at every definition point, the defined variables
        get an edge to every universe variable live across that point, filtered
        by the interference notion (Chaitin's copy exemption, value equality).

        Requires ``test.oracle.liveness``; the universe defaults to all
        variables but the paper (and the driver) restrict it to the φ-related
        and copy-related ones.
        """
        from repro.ir.instructions import Copy, ParallelCopy, Phi
        from repro.ir.positions import block_schedule  # local import, avoids cycles
        from repro.liveness.bitsets import BitLivenessSets

        liveness = test.oracle.liveness
        candidates = list(universe) if universe is not None else function.variables()
        in_universe = set(candidates)
        graph = cls(candidates)
        kind = test.kind

        # With the bit-set liveness backend the per-block "universe variables
        # live at the end of the block" set is one mask intersection plus a
        # decode of the surviving bits, instead of one oracle query per
        # universe variable per block.
        bit_liveness = liveness if isinstance(liveness, BitLivenessSets) else None
        universe_mask = 0
        if bit_liveness is not None:
            for var in candidates:
                index = bit_liveness.numbering.get(var)
                if index is not None:
                    universe_mask |= 1 << index

        def live_out_universe(block_label: str) -> set:
            if bit_liveness is None:
                return {var for var in in_universe if liveness.is_live_out(block_label, var)}
            variable = bit_liveness.numbering.variable
            mask = bit_liveness.live_out[block_label].bits & universe_mask
            live = set()
            while mask:
                low = mask & -mask
                live.add(variable(low.bit_length() - 1))
                mask ^= low
            return live

        def copy_source_of(instruction, defined: Variable):
            if isinstance(instruction, Copy) and instruction.dst == defined:
                return instruction.src
            if isinstance(instruction, ParallelCopy):
                for dst, src in instruction.pairs:
                    if dst == defined:
                        return src
            return None

        for block in function:
            # Live universe variables at the end of the block.
            live = live_out_universe(block.label)
            for _index, instruction in reversed(block_schedule(block)):
                defs = list(instruction.defs())
                if defs:
                    for defined in defs:
                        if defined not in in_universe:
                            continue
                        source = copy_source_of(instruction, defined)
                        for other in live:
                            if other == defined:
                                continue
                            # ``other`` is live right after the definition of
                            # ``defined``: the live ranges intersect; apply the
                            # notion-specific refinement.
                            if kind is InterferenceKind.VALUE and test.same_value(defined, other):
                                continue
                            if kind is InterferenceKind.CHAITIN and source == other:
                                continue
                            graph.add_edge(defined, other)
                    for defined in defs:
                        live.discard(defined)
                # φ-arguments are read on the incoming edges, not inside this
                # block: they are already accounted for by the predecessors'
                # live-out sets and must not extend liveness here.
                if not isinstance(instruction, Phi):
                    for used in instruction.uses():
                        if used in in_universe:
                            live.add(used)

            if block.label == function.entry_label:
                # Function parameters are defined by a virtual instruction
                # before the entry block: at this point ``live`` holds the
                # universe variables live-in at the entry, which is exactly
                # what each parameter is simultaneously live with (a parameter
                # that is never used is not in ``live`` and, having an empty
                # live range and no real defining instruction, interferes with
                # nothing).
                for param in function.params:
                    if param not in in_universe:
                        continue
                    for other in live:
                        if other == param:
                            continue
                        if kind is InterferenceKind.VALUE and test.same_value(param, other):
                            continue
                        graph.add_edge(param, other)
        return graph
