"""Explicit interference graph (half bit-matrix) and the matrix backends.

This module holds the memory side of the pluggable interference stack:

* :class:`InterferenceGraph` — the half bit-matrix representation the
  paper's "Sreedhar III" and plain "Us I"/"Us III" configurations use, over
  an (extensible) universe of variables addressed through the shared
  :class:`~repro.liveness.numbering.VariableNumbering`;
* :func:`scan_interference_edges` — the one-backward-scan-per-block
  construction ("costly traversal of the program", §IV), shared between the
  cold build and the incremental re-scan so both produce the same edges by
  construction;
* :class:`MatrixInterference` — the ``matrix`` backend: the graph is built
  eagerly at construction and answers every in-universe pair; pairs outside
  the restricted universe fall back to the query path;
* :class:`IncrementalMatrixInterference` — the ``incremental`` backend: the
  same matrix kept valid across isolation / materialization by consuming the
  :class:`~repro.ir.editlog.EditLog`\\ s those passes emit, re-scanning only
  the dirty neighbourhood instead of the whole program.

The universe of indexed variables can be restricted (the paper restricts it
to φ-related and copy-related variables) and grows dynamically when
virtualized copies are materialized, exactly like in Method III.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Set

from repro.interference.base import InterferenceKind, QueryInterference
from repro.ir.function import Function
from repro.ir.instructions import Variable
from repro.liveness.bitsets import BitLivenessSets
from repro.liveness.numbering import VariableNumbering
from repro.utils.bitset import BitMatrix
from repro.utils.instrument import current_tracker


class InterferenceGraph:
    """Half bit-matrix over an (extensible) universe of variables.

    Variable identity comes from a
    :class:`~repro.liveness.numbering.VariableNumbering` — the same dense,
    append-only numbering the bit-set liveness backend uses — and an existing
    numbering can be passed in (the pipeline shares one instance between the
    liveness rows and this matrix, so it is built only once per run).  A
    shared numbering covers variables outside the graph's restricted universe,
    so matrix *rows* are addressed through a private dense slot table: the
    matrix stays at the paper's ``candidates²/2`` bits regardless of how many
    variables the shared numbering knows, and queries about non-universe
    variables report "not in the graph" and fall back to the pairwise test.
    """

    def __init__(
        self,
        universe: Iterable[Variable] = (),
        numbering: Optional[VariableNumbering] = None,
    ) -> None:
        self._numbering = numbering if numbering is not None else VariableNumbering()
        self._slot_of: dict = {}              #: numbering index -> dense matrix slot
        self._slot_vars: List[Variable] = []  #: dense matrix slot -> variable
        self._matrix = BitMatrix()
        for var in universe:
            self.add_variable(var)

    # -- universe management -------------------------------------------------------
    def add_variable(self, var: Variable) -> int:
        """Add ``var`` to the universe (idempotent); return its matrix slot."""
        index = self._numbering.ensure(var)
        slot = self._slot_of.get(index)
        if slot is not None:        # already a member: single-lookup fast path
            return slot
        slot = len(self._slot_vars)
        self._slot_of[index] = slot
        self._slot_vars.append(var)
        old_bytes = self._matrix.footprint_bytes()
        self._matrix.grow(slot + 1)
        tracker = current_tracker()
        if tracker is not None:
            tracker.resize("interference_graph", old_bytes, self._matrix.footprint_bytes())
        return slot

    def _slot(self, var: Variable) -> Optional[int]:
        index = self._numbering.get(var)
        return self._slot_of.get(index) if index is not None else None

    def slot(self, var: Variable) -> Optional[int]:
        """Dense matrix slot of ``var``, or ``None`` for non-universe variables."""
        return self._slot(var)

    @property
    def numbering(self) -> VariableNumbering:
        """The (possibly shared) variable numbering providing identity."""
        return self._numbering

    def __contains__(self, var: Variable) -> bool:
        return self._slot(var) is not None

    def variables(self) -> List[Variable]:
        return list(self._slot_vars)

    def __len__(self) -> int:
        return len(self._slot_vars)

    # -- edges ------------------------------------------------------------------------
    def add_edge(self, a: Variable, b: Variable) -> None:
        if a == b:
            return
        self._matrix.set(self.add_variable(a), self.add_variable(b))

    def interferes(self, a: Variable, b: Variable) -> bool:
        slot_a = self._slot(a)
        slot_b = self._slot(b)
        if slot_a is None or slot_b is None or slot_a == slot_b:
            return False
        return self._matrix.test(slot_a, slot_b)

    def neighbours(self, var: Variable) -> List[Variable]:
        slot = self._slot(var)
        if slot is None:
            return []
        slot_vars = self._slot_vars
        return [slot_vars[other] for other in self._matrix.neighbours(slot)]

    def adjacency_bits(self, var: Variable) -> int:
        """Symmetric adjacency row of ``var`` as a bit mask over matrix slots."""
        slot = self._slot(var)
        return self._matrix.full_row(slot) if slot is not None else 0

    def clear_variable(self, var: Variable) -> None:
        """Drop every edge involving ``var`` (its slot is kept)."""
        slot = self._slot(var)
        if slot is not None:
            self._matrix.clear_all(slot)

    def edge_count(self) -> int:
        return sum(
            1
            for i in range(len(self._slot_vars))
            for j in range(i)
            if self._matrix.test(i, j)
        )

    def row_bits(self) -> List[int]:
        """Raw half-matrix rows, one int mask per slot (for identity checks:
        two graphs built over the *same* slot assignment are bit-identical
        iff these lists are equal)."""
        return self._matrix.row_bits()

    # -- memory accounting ----------------------------------------------------------------
    def footprint_bytes(self) -> int:
        return self._matrix.footprint_bytes()

    @staticmethod
    def evaluated_footprint(num_variables: int) -> int:
        return BitMatrix.evaluated_footprint(num_variables)

    # -- construction from a pairwise test ---------------------------------------------------
    @classmethod
    def build_all_pairs(
        cls,
        function: Function,
        test,
        universe: Optional[Iterable[Variable]] = None,
        numbering: Optional[VariableNumbering] = None,
    ) -> "InterferenceGraph":
        """Reference construction: test every pair of the universe.

        Quadratic; kept as a cross-check for :meth:`build`, which is the
        construction the engines use.
        """
        candidates = list(universe) if universe is not None else function.variables()
        graph = cls(candidates, numbering=numbering)
        for i, a in enumerate(candidates):
            for b in candidates[i + 1:]:
                if test.interferes(a, b):
                    graph.add_edge(a, b)
        return graph

    @classmethod
    def build(
        cls,
        function: Function,
        test,
        universe: Optional[Iterable[Variable]] = None,
        numbering: Optional[VariableNumbering] = None,
    ) -> "InterferenceGraph":
        """Build the graph by one backward scan per block ("costly traversal of
        the program", §IV): at every definition point, the defined variables
        get an edge to every universe variable live across that point, filtered
        by the interference notion (Chaitin's copy exemption, value equality).

        Requires ``test.oracle.liveness``; the universe defaults to all
        variables but the paper (and the driver) restrict it to the φ-related
        and copy-related ones.
        """
        candidates = list(universe) if universe is not None else function.variables()
        graph = cls(candidates, numbering=numbering)
        scan_interference_edges(graph, function, test, set(candidates), function.blocks)
        return graph


def scan_interference_edges(
    graph: InterferenceGraph,
    function: Function,
    test,
    in_universe: Set[Variable],
    labels: Iterable[str],
) -> None:
    """One backward scan per block of ``labels``, adding the discovered edges.

    This is the shared construction primitive: the cold :meth:`InterferenceGraph.build`
    runs it over every block, the incremental backend re-runs it over the
    dirty neighbourhood of an edit batch.  Adding an edge is idempotent, so
    re-scanning a block never corrupts the matrix — exactness only requires
    that every block able to *originate* an edge of interest is scanned.
    """
    from repro.ir.instructions import Copy, ParallelCopy, Phi
    from repro.ir.positions import block_schedule  # local import, avoids cycles

    liveness = test.oracle.liveness
    kind = test.kind

    # With the bit-set liveness backend the per-block "universe variables
    # live at the end of the block" set is one mask intersection plus a
    # decode of the surviving bits, instead of one oracle query per
    # universe variable per block.
    bit_liveness = liveness if isinstance(liveness, BitLivenessSets) else None
    universe_mask = 0
    if bit_liveness is not None:
        for var in in_universe:
            index = bit_liveness.numbering.get(var)
            if index is not None:
                universe_mask |= 1 << index

    def live_out_universe(block_label: str) -> set:
        if bit_liveness is None:
            return {var for var in in_universe if liveness.is_live_out(block_label, var)}
        variable = bit_liveness.numbering.variable
        mask = bit_liveness.live_out[block_label].bits & universe_mask
        live = set()
        while mask:
            low = mask & -mask
            live.add(variable(low.bit_length() - 1))
            mask ^= low
        return live

    def copy_source_of(instruction, defined: Variable):
        if isinstance(instruction, Copy) and instruction.dst == defined:
            return instruction.src
        if isinstance(instruction, ParallelCopy):
            for dst, src in instruction.pairs:
                if dst == defined:
                    return src
        return None

    for label in labels:
        block = function.blocks[label]
        # Live universe variables at the end of the block.
        live = live_out_universe(block.label)
        for _index, instruction in reversed(block_schedule(block)):
            defs = list(instruction.defs())
            if defs:
                for defined in defs:
                    if defined not in in_universe:
                        continue
                    source = copy_source_of(instruction, defined)
                    for other in live:
                        if other == defined:
                            continue
                        # ``other`` is live right after the definition of
                        # ``defined``: the live ranges intersect; apply the
                        # notion-specific refinement.
                        if kind is InterferenceKind.VALUE and test.same_value(defined, other):
                            continue
                        if kind is InterferenceKind.CHAITIN and source == other:
                            continue
                        graph.add_edge(defined, other)
                for defined in defs:
                    live.discard(defined)
            # φ-arguments are read on the incoming edges, not inside this
            # block: they are already accounted for by the predecessors'
            # live-out sets and must not extend liveness here.
            if not isinstance(instruction, Phi):
                for used in instruction.uses():
                    if used in in_universe:
                        live.add(used)

        if block.label == function.entry_label:
            # Function parameters are defined by a virtual instruction
            # before the entry block: at this point ``live`` holds the
            # universe variables live-in at the entry, which is exactly
            # what each parameter is simultaneously live with (a parameter
            # that is never used is not in ``live`` and, having an empty
            # live range and no real defining instruction, interferes with
            # nothing).
            for param in function.params:
                if param not in in_universe:
                    continue
                for other in live:
                    if other == param:
                        continue
                    if kind is InterferenceKind.VALUE and test.same_value(param, other):
                        continue
                    graph.add_edge(param, other)


# --------------------------------------------------------------------------- backends
class MatrixInterference(QueryInterference):
    """The ``matrix`` backend: an eager half bit-matrix over the universe.

    In-universe pairs are answered from the matrix (``matrix_hits`` counts
    them); pairs involving a non-universe variable fall back to the pairwise
    query path of :class:`~repro.interference.base.QueryInterference` — the
    behaviour the engines have always had when the restricted candidate
    universe did not cover a query.
    """

    backend_name = "matrix"
    supports_class_rows = True

    def __init__(
        self,
        function: Function,
        oracle,
        kind: InterferenceKind,
        values=None,
        universe: Optional[Iterable[Variable]] = None,
        numbering: Optional[VariableNumbering] = None,
    ) -> None:
        super().__init__(function, oracle, kind, values)
        self.graph = self._build_graph(function, universe, numbering)
        #: Pairwise queries answered straight from the matrix.
        self.matrix_hits = 0

    def _build_graph(
        self,
        function: Function,
        universe: Optional[Iterable[Variable]],
        numbering: Optional[VariableNumbering],
    ) -> InterferenceGraph:
        """Construct and populate the adjacency structure.  The flat core
        (:mod:`repro.interference.flatcore`) overrides this to scan the
        `FlatFunction` arena instead of the object graph; everything else —
        the incremental patch path included — runs over the returned graph
        through the same ``add_edge`` / ``clear_variable`` interface."""
        return InterferenceGraph.build(
            function, self, universe=universe, numbering=numbering
        )

    # -- pairwise test -------------------------------------------------------------
    def interferes(self, a, b) -> bool:
        graph = self.graph
        if a in graph and b in graph:
            self.matrix_hits += 1
            return graph.interferes(a, b)
        return super().interferes(a, b)

    # -- class-row support ---------------------------------------------------------
    def slot(self, var) -> Optional[int]:
        return self.graph.slot(var)

    def adjacency_bits(self, var) -> int:
        return self.graph.adjacency_bits(var)

    # -- accounting ----------------------------------------------------------------
    def matrix_bytes(self) -> int:
        return self.graph.footprint_bytes()


@dataclass
class MatrixResolveDelta:
    """What one :meth:`IncrementalMatrixInterference.apply_edits` call did."""

    edits: int              #: entries in the applied log
    affected_variables: int  #: variables whose rows could gain edges
    cleared_variables: int  #: rows restarted from zero (may have lost edges)
    dirty_blocks: int       #: blocks the edge scan re-visited
    seconds: float          #: wall-clock of the matrix patch itself


class IncrementalMatrixInterference(MatrixInterference):
    """The ``incremental`` backend: the bit-matrix kept valid across edits.

    The mutating out-of-SSA passes describe what they did as an
    :class:`~repro.ir.editlog.EditLog` (the very logs the incremental
    liveness backend consumes); :meth:`apply_edits` patches the matrix from
    them instead of rebuilding:

    1. every *affected* variable joins the universe (pass edits only mention
       φ-, copy- and rename-related names, which belong there by the paper's
       own restriction);
    2. rows of variables that may have *lost* an occurrence (the log's
       ``removed`` set) are cleared — stale edges, like stale liveness around
       a loop, would otherwise survive re-scanning;
    3. the shared per-block scan re-runs over the **dirty neighbourhood**:
       the touched blocks plus every block where an affected variable is
       live-in, live-out or defined (queried in bulk from the patched bit-set
       liveness rows).  All edges involving an affected variable originate in
       that neighbourhood, and re-adding an unaffected edge is idempotent, so
       the result is bit-identical to a cold rebuild of the edited function.

    Requires the backing liveness to be a (patched)
    :class:`~repro.liveness.bitsets.BitLivenessSets` — in the pipeline that is
    the shared :class:`~repro.liveness.incremental.IncrementalBitLiveness`,
    which must have consumed the same log *before* this backend does.

    Value-notion caveat: re-scans refine edges through the backend's
    :class:`~repro.ssa.values.ValueTable`, which is *not* incrementally
    maintained.  Variables created after the table was built (renames,
    sequentialization temporaries) compare as carrying their own value, so
    post-materialization patches under the ``value`` notion are conservative
    — at worst extra edges, never a missed interference.  The bit-identity
    guarantee is stated against a cold rebuild over the *same* value table
    (what the stress experiment and the property suite check; the intersect
    notion, which the stress corpus uses, has no table at all).
    """

    backend_name = "incremental"

    def __init__(
        self,
        function: Function,
        oracle,
        kind: InterferenceKind,
        values=None,
        universe: Optional[Iterable[Variable]] = None,
        numbering: Optional[VariableNumbering] = None,
    ) -> None:
        if not isinstance(oracle.liveness, BitLivenessSets):
            raise ValueError(
                "the incremental interference backend needs bit-set liveness "
                f"rows to locate dirty blocks, not {type(oracle.liveness).__name__}"
            )
        super().__init__(function, oracle, kind, values, universe=universe, numbering=numbering)
        #: Number of :meth:`apply_edits` patches served from the warm matrix.
        self.resolve_count = 0
        self.last_delta: Optional[MatrixResolveDelta] = None

    # -- incremental re-scan -------------------------------------------------------
    def _dirty_blocks(
        self,
        affected: List[Variable],
        cleared: List[Variable],
        touched: Set[str],
    ) -> Set[str]:
        """The blocks whose re-scan restores every edge the edits could change.

        Three sources, each exact for its variable class:

        * ``touched`` — blocks whose instruction lists changed (every new
          occurrence, hence every new in-block liveness, lives here);
        * the liveness patch's visited rows (``last_dirty_rows``) — a
          superset of every block whose boundary liveness changed, which
          bounds the new edges of *grow-only* affected variables (their old
          edges are still in the matrix); available only when the backing
          rows are an :class:`~repro.liveness.incremental.IncrementalBitLiveness`
          patched with the same log, otherwise the conservative fallback
          re-scans every block mentioning an affected variable;
        * every block mentioning a *cleared* variable — its row restarted
          from zero, so all its edges must be rediscovered, changed or not.
        """
        blocks = self.function.blocks
        dirty = {label for label in touched if label in blocks}
        liveness: BitLivenessSets = self.oracle.liveness
        changed_rows = getattr(liveness, "last_dirty_rows", None)
        if changed_rows is None:
            dirty |= liveness.blocks_touching(affected)
        else:
            dirty |= {label for label in changed_rows if label in blocks}
            dirty |= liveness.blocks_touching(cleared)
        if affected and any(var in self.function.params for var in affected):
            # Parameter edges are discovered at the (virtual) entry definition.
            if self.function.entry_label is not None:
                dirty.add(self.function.entry_label)
        return dirty

    def apply_edits(self, log) -> MatrixResolveDelta:
        """Patch the matrix for one edit log; the backing liveness rows must
        already reflect the same log (the passes patch liveness first)."""
        began = time.perf_counter()
        super().apply_edits(log)   # drop the intersection oracle's stale ≺ keys
        graph = self.graph
        affected = list(log.affected_variables())
        for var in affected:
            graph.add_variable(var)
        removed = [var for var in log.removed_variables() if var in graph]
        for var in removed:
            graph.clear_variable(var)
        dirty = self._dirty_blocks(
            affected, removed, log.touched_blocks() | set(log.new_blocks)
        )
        if dirty:
            scan_interference_edges(
                graph, self.function, self, set(graph.variables()), dirty
            )
        self.resolve_count += 1
        delta = MatrixResolveDelta(
            edits=len(log),
            affected_variables=len(affected),
            cleared_variables=len(removed),
            dirty_blocks=len(dirty),
            seconds=time.perf_counter() - began,
        )
        self.last_delta = delta
        return delta

    def extend_universe(self, variables: Iterable[Variable]) -> int:
        """Add ``variables`` to the universe and scan in their edges.

        Used on warm re-runs (JIT re-translation through one
        :class:`~repro.pipeline.analysis.AnalysisCache`): the new run's
        candidate universe may name variables the warm matrix has never seen;
        their edges all originate in the blocks where they are live or
        defined, so only that neighbourhood is scanned.  Returns the number
        of variables actually added.
        """
        graph = self.graph
        fresh = [var for var in variables if var not in graph]
        for var in fresh:
            graph.add_variable(var)
        if fresh:
            # Full discovery for the newcomers: every block mentioning them
            # (their rows start empty, so changed-liveness bounds don't apply).
            liveness: BitLivenessSets = self.oracle.liveness
            dirty = liveness.blocks_touching(fresh)
            if any(var in self.function.params for var in fresh):
                if self.function.entry_label is not None:
                    dirty.add(self.function.entry_label)
            if dirty:
                scan_interference_edges(
                    graph, self.function, self, set(graph.variables()), dirty
                )
        return len(fresh)
