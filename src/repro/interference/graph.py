"""Explicit interference graph stored as a half bit-matrix.

This is the memory-hungry baseline representation the paper's "Sreedhar III"
and plain "Us I"/"Us III" configurations use; the ``InterCheck``/``LiveCheck``
configurations avoid building it altogether.  The class therefore exists for
two reasons: as a faithful baseline for the Figure 6/7 experiments, and as a
cross-check for the query-based tests.

The universe of indexed variables can be restricted (the paper restricts it to
φ-related and copy-related variables) and grows dynamically when virtualized
copies are materialized, exactly like in Method III.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.ir.function import Function
from repro.ir.instructions import Variable
from repro.interference.definitions import InterferenceKind, InterferenceTest
from repro.liveness.numbering import VariableNumbering
from repro.utils.bitset import BitMatrix
from repro.utils.instrument import current_tracker


class InterferenceGraph:
    """Half bit-matrix over an (extensible) universe of variables.

    Variable identity comes from a
    :class:`~repro.liveness.numbering.VariableNumbering` — the same dense,
    append-only numbering the bit-set liveness backend uses — and an existing
    numbering can be passed in (the pipeline shares one instance between the
    liveness rows and this matrix, so it is built only once per run).  A
    shared numbering covers variables outside the graph's restricted universe,
    so matrix *rows* are addressed through a private dense slot table: the
    matrix stays at the paper's ``candidates²/2`` bits regardless of how many
    variables the shared numbering knows, and queries about non-universe
    variables report "not in the graph" and fall back to the pairwise test.
    """

    def __init__(
        self,
        universe: Iterable[Variable] = (),
        numbering: Optional[VariableNumbering] = None,
    ) -> None:
        self._numbering = numbering if numbering is not None else VariableNumbering()
        self._slot_of: dict = {}              #: numbering index -> dense matrix slot
        self._slot_vars: List[Variable] = []  #: dense matrix slot -> variable
        self._matrix = BitMatrix()
        for var in universe:
            self.add_variable(var)

    # -- universe management -------------------------------------------------------
    def add_variable(self, var: Variable) -> int:
        """Add ``var`` to the universe (idempotent); return its matrix slot."""
        index = self._numbering.ensure(var)
        slot = self._slot_of.get(index)
        if slot is not None:        # already a member: single-lookup fast path
            return slot
        slot = len(self._slot_vars)
        self._slot_of[index] = slot
        self._slot_vars.append(var)
        old_bytes = self._matrix.footprint_bytes()
        self._matrix.grow(slot + 1)
        tracker = current_tracker()
        if tracker is not None:
            tracker.resize("interference_graph", old_bytes, self._matrix.footprint_bytes())
        return slot

    def _slot(self, var: Variable) -> Optional[int]:
        index = self._numbering.get(var)
        return self._slot_of.get(index) if index is not None else None

    @property
    def numbering(self) -> VariableNumbering:
        """The (possibly shared) variable numbering providing identity."""
        return self._numbering

    def __contains__(self, var: Variable) -> bool:
        return self._slot(var) is not None

    def variables(self) -> List[Variable]:
        return list(self._slot_vars)

    def __len__(self) -> int:
        return len(self._slot_vars)

    # -- edges ------------------------------------------------------------------------
    def add_edge(self, a: Variable, b: Variable) -> None:
        if a == b:
            return
        self._matrix.set(self.add_variable(a), self.add_variable(b))

    def interferes(self, a: Variable, b: Variable) -> bool:
        slot_a = self._slot(a)
        slot_b = self._slot(b)
        if slot_a is None or slot_b is None or slot_a == slot_b:
            return False
        return self._matrix.test(slot_a, slot_b)

    def neighbours(self, var: Variable) -> List[Variable]:
        slot = self._slot(var)
        if slot is None:
            return []
        slot_vars = self._slot_vars
        return [slot_vars[other] for other in self._matrix.neighbours(slot)]

    def edge_count(self) -> int:
        return sum(
            1
            for i in range(len(self._slot_vars))
            for j in range(i)
            if self._matrix.test(i, j)
        )

    # -- memory accounting ----------------------------------------------------------------
    def footprint_bytes(self) -> int:
        return self._matrix.footprint_bytes()

    @staticmethod
    def evaluated_footprint(num_variables: int) -> int:
        return BitMatrix.evaluated_footprint(num_variables)

    # -- construction from a pairwise test ---------------------------------------------------
    @classmethod
    def build_all_pairs(
        cls,
        function: Function,
        test: InterferenceTest,
        universe: Optional[Iterable[Variable]] = None,
        numbering: Optional[VariableNumbering] = None,
    ) -> "InterferenceGraph":
        """Reference construction: test every pair of the universe.

        Quadratic; kept as a cross-check for :meth:`build`, which is the
        construction the engines use.
        """
        candidates = list(universe) if universe is not None else function.variables()
        graph = cls(candidates, numbering=numbering)
        for i, a in enumerate(candidates):
            for b in candidates[i + 1:]:
                if test.interferes(a, b):
                    graph.add_edge(a, b)
        return graph

    @classmethod
    def build(
        cls,
        function: Function,
        test: InterferenceTest,
        universe: Optional[Iterable[Variable]] = None,
        numbering: Optional[VariableNumbering] = None,
    ) -> "InterferenceGraph":
        """Build the graph by one backward scan per block ("costly traversal of
        the program", §IV): at every definition point, the defined variables
        get an edge to every universe variable live across that point, filtered
        by the interference notion (Chaitin's copy exemption, value equality).

        Requires ``test.oracle.liveness``; the universe defaults to all
        variables but the paper (and the driver) restrict it to the φ-related
        and copy-related ones.
        """
        from repro.ir.instructions import Copy, ParallelCopy, Phi
        from repro.ir.positions import block_schedule  # local import, avoids cycles
        from repro.liveness.bitsets import BitLivenessSets

        liveness = test.oracle.liveness
        candidates = list(universe) if universe is not None else function.variables()
        in_universe = set(candidates)
        graph = cls(candidates, numbering=numbering)
        kind = test.kind

        # With the bit-set liveness backend the per-block "universe variables
        # live at the end of the block" set is one mask intersection plus a
        # decode of the surviving bits, instead of one oracle query per
        # universe variable per block.
        bit_liveness = liveness if isinstance(liveness, BitLivenessSets) else None
        universe_mask = 0
        if bit_liveness is not None:
            for var in candidates:
                index = bit_liveness.numbering.get(var)
                if index is not None:
                    universe_mask |= 1 << index

        def live_out_universe(block_label: str) -> set:
            if bit_liveness is None:
                return {var for var in in_universe if liveness.is_live_out(block_label, var)}
            variable = bit_liveness.numbering.variable
            mask = bit_liveness.live_out[block_label].bits & universe_mask
            live = set()
            while mask:
                low = mask & -mask
                live.add(variable(low.bit_length() - 1))
                mask ^= low
            return live

        def copy_source_of(instruction, defined: Variable):
            if isinstance(instruction, Copy) and instruction.dst == defined:
                return instruction.src
            if isinstance(instruction, ParallelCopy):
                for dst, src in instruction.pairs:
                    if dst == defined:
                        return src
            return None

        for block in function:
            # Live universe variables at the end of the block.
            live = live_out_universe(block.label)
            for _index, instruction in reversed(block_schedule(block)):
                defs = list(instruction.defs())
                if defs:
                    for defined in defs:
                        if defined not in in_universe:
                            continue
                        source = copy_source_of(instruction, defined)
                        for other in live:
                            if other == defined:
                                continue
                            # ``other`` is live right after the definition of
                            # ``defined``: the live ranges intersect; apply the
                            # notion-specific refinement.
                            if kind is InterferenceKind.VALUE and test.same_value(defined, other):
                                continue
                            if kind is InterferenceKind.CHAITIN and source == other:
                                continue
                            graph.add_edge(defined, other)
                    for defined in defs:
                        live.discard(defined)
                # φ-arguments are read on the incoming edges, not inside this
                # block: they are already accounted for by the predecessors'
                # live-out sets and must not extend liveness here.
                if not isinstance(instruction, Phi):
                    for used in instruction.uses():
                        if used in in_universe:
                            live.add(used)

            if block.label == function.entry_label:
                # Function parameters are defined by a virtual instruction
                # before the entry block: at this point ``live`` holds the
                # universe variables live-in at the entry, which is exactly
                # what each parameter is simultaneously live with (a parameter
                # that is never used is not in ``live`` and, having an empty
                # live range and no real defining instruction, interferes with
                # nothing).
                for param in function.params:
                    if param not in in_universe:
                        continue
                    for other in live:
                        if other == param:
                            continue
                        if kind is InterferenceKind.VALUE and test.same_value(param, other):
                            continue
                        graph.add_edge(param, other)
        return graph
