"""The three interference definitions compared in the paper (§III-A, §III-E).

Given two SSA variables ``a`` and ``b``:

``INTERSECT``
    they interfere iff their live ranges intersect — the coarsest notion,
    the "Intersect" variant of Figure 5;

``CHAITIN``
    they interfere iff one is live at a definition point of the other *and*
    that definition is not a copy between the two — Chaitin's classic
    conservative refinement;

``VALUE``
    they interfere iff their live ranges intersect *and* they carry different
    SSA values — the paper's contribution, computed from
    :class:`~repro.ssa.values.ValueTable` at no extra cost.

Every test is expressed on top of an
:class:`~repro.liveness.intersection.IntersectionOracle`, so the same code
runs whether liveness comes from data-flow sets or from liveness checking,
and whether an explicit interference graph is used or not.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.ir.function import Function
from repro.ir.instructions import Copy, ParallelCopy, Variable
from repro.liveness.intersection import IntersectionOracle
from repro.ssa.values import ValueTable


class InterferenceKind(enum.Enum):
    """Which notion of interference a test implements."""

    INTERSECT = "intersect"
    CHAITIN = "chaitin"
    VALUE = "value"


class InterferenceTest:
    """Pairwise interference test between SSA variables."""

    def __init__(
        self,
        function: Function,
        oracle: IntersectionOracle,
        kind: InterferenceKind,
        values: Optional[ValueTable] = None,
    ) -> None:
        if kind is InterferenceKind.VALUE and values is None:
            raise ValueError("value-based interference requires a ValueTable")
        self.function = function
        self.oracle = oracle
        self.kind = kind
        self.values = values

    # -- building blocks -----------------------------------------------------------
    def intersects(self, a: Variable, b: Variable) -> bool:
        return self.oracle.intersect(a, b)

    def same_value(self, a: Variable, b: Variable) -> bool:
        if self.values is None:
            return False
        return self.values.same_value(a, b)

    def _is_copy_between(self, defining: Variable, other: Variable) -> bool:
        """Is the definition of ``defining`` a copy from ``other``?"""
        def_point = self.oracle.liveness.definition_of(defining)
        if def_point is None or def_point.instruction is None:
            return False
        instruction = def_point.instruction
        if isinstance(instruction, Copy):
            return instruction.src == other
        if isinstance(instruction, ParallelCopy):
            for dst, src in instruction.pairs:
                if dst == defining:
                    return src == other
        return False

    # -- the test ----------------------------------------------------------------------
    def interferes(self, a: Variable, b: Variable) -> bool:
        if a == b:
            return False
        if self.kind is InterferenceKind.INTERSECT:
            return self.intersects(a, b)
        if self.kind is InterferenceKind.VALUE:
            return self.intersects(a, b) and not self.same_value(a, b)
        # Chaitin: live at a definition point which is not a copy between them.
        live = self.oracle.liveness
        def_a = live.definition_of(a)
        def_b = live.definition_of(b)
        if def_b is not None and live.is_live_after(def_b.block, def_b.index, a):
            if not self._is_copy_between(b, a):
                return True
        if def_a is not None and live.is_live_after(def_a.block, def_a.index, b):
            if not self._is_copy_between(a, b):
                return True
        return False


def make_interference_test(
    function: Function,
    oracle: IntersectionOracle,
    kind: InterferenceKind = InterferenceKind.VALUE,
    values: Optional[ValueTable] = None,
) -> InterferenceTest:
    """Build an :class:`InterferenceTest`, creating the value table if needed."""
    if kind is InterferenceKind.VALUE and values is None:
        values = ValueTable(function, oracle.domtree)
    return InterferenceTest(function, oracle, kind, values)
