"""The three interference definitions compared in the paper (§III-A, §III-E).

Since the backend refactor the notions (:class:`InterferenceKind`) and the
pairwise test machinery live in :mod:`repro.interference.base`, where they
are shared by every backend of the pluggable stack (``matrix`` / ``query`` /
``incremental``).  This module keeps the historical names:

* :class:`InterferenceTest` — the original name of what is now the ``query``
  backend (:class:`~repro.interference.base.QueryInterference`); kept as a
  subclass so existing constructions, imports and ``isinstance`` checks keep
  working unchanged;
* :func:`make_interference_test` — convenience constructor that builds the
  :class:`~repro.ssa.values.ValueTable` when value-based interference asks
  for one.

Every test is expressed on top of an
:class:`~repro.liveness.intersection.IntersectionOracle`, so the same code
runs whether liveness comes from data-flow sets or from liveness checking,
and whether an explicit interference graph is used or not.
"""

from __future__ import annotations

from typing import Optional

from repro.interference.base import (  # noqa: F401  (re-exported API surface)
    InterferenceKind,
    InterferenceOracle,
    QueryInterference,
)
from repro.ir.function import Function
from repro.ir.instructions import Variable  # noqa: F401  (historical re-export)
from repro.liveness.intersection import IntersectionOracle
from repro.ssa.values import ValueTable


class InterferenceTest(QueryInterference):
    """Pairwise interference test between SSA variables (legacy name).

    This is the ``query`` interference backend under its pre-refactor name;
    see :class:`~repro.interference.base.InterferenceOracle` for the full
    protocol surface it implements.
    """


def make_interference_test(
    function: Function,
    oracle: IntersectionOracle,
    kind: InterferenceKind = InterferenceKind.VALUE,
    values: Optional[ValueTable] = None,
) -> InterferenceTest:
    """Build an :class:`InterferenceTest`, creating the value table if needed."""
    if kind is InterferenceKind.VALUE and values is None:
        values = ValueTable(function, oracle.domtree)
    return InterferenceTest(function, oracle, kind, values)
