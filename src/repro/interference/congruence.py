"""Congruence classes and the linear class-vs-class interference check.

A *congruence class* is the set of variables already coalesced together
(Sreedhar et al.'s terminology).  Deciding whether two classes can be merged
requires checking that no variable of one interferes with a variable of the
other.  Done naively this is quadratic in the class sizes; the paper's §IV-B
shows how to do it with a linear number of variable-to-variable tests by
generalising the dominance-forest idea of Budimlić et al.:

* each class is kept as a list of variables sorted by a pre-DFS order ≺ of the
  dominance tree of their definition points;
* the two sorted lists are swept jointly while maintaining the stack of the
  current variable's dominating ancestors (Algorithm 2), so the dominance
  forest is *simulated*, never built;
* with plain intersection-interference it suffices to test each variable
  against its immediate ancestor from the *other* set;
* with value-based interference the "equal intersecting ancestor" chains
  (``equal_anc_in`` / ``equal_anc_out``) extend the test while keeping the
  number of intersection queries linear (functions ``interference``,
  ``chain_intersect`` and ``update_equal_anc_out`` of the paper).

Both the linear check and a brute-force quadratic reference are provided; the
test-suite verifies they agree on random programs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.ir.instructions import Variable
from repro.interference.base import InterferenceKind, InterferenceOracle
from repro.liveness.intersection import IntersectionOracle


class CongruenceClass:
    """One set of coalesced variables, kept sorted in dominance pre-order ≺."""

    __slots__ = ("members", "register", "equal_anc_in", "slot_mask", "adj_mask")

    def __init__(self, members: Iterable[Variable] = (), register: Optional[str] = None) -> None:
        self.members: List[Variable] = list(members)
        #: Architectural register this class is pinned to (renaming constraints).
        self.register: Optional[str] = register
        #: Per-member "equal intersecting ancestor" within this class.
        self.equal_anc_in: Dict[Variable, Optional[Variable]] = {
            member: None for member in self.members
        }
        #: Matrix-backed class rows (``None`` = not computed yet, ``-1`` = a
        #: member is outside the matrix universe): the members' slot bits and
        #: their merged symmetric adjacency — coalesces OR these instead of
        #: re-deriving anything, and a class-vs-class check is one AND.
        self.slot_mask: Optional[int] = None
        self.adj_mask: Optional[int] = None

    def __iter__(self):
        return iter(self.members)

    def __len__(self) -> int:
        return len(self.members)

    def __contains__(self, var: Variable) -> bool:
        return var in self.members

    def __repr__(self) -> str:
        label = f", register={self.register}" if self.register else ""
        return f"CongruenceClass({[str(v) for v in self.members]}{label})"


class InterferenceBetweenClasses(Exception):
    """Internal marker used by the quadratic reference checker."""


class CongruenceClasses:
    """All congruence classes of a function plus the class-vs-class checks.

    Accepts either form of the interference stack:

    * ``CongruenceClasses(backend)`` — one
      :class:`~repro.interference.base.InterferenceOracle` backend; the
      intersection oracle is taken from it (``backend.oracle``);
    * ``CongruenceClasses(oracle, test)`` — the historical two-argument form
      (an :class:`~repro.liveness.intersection.IntersectionOracle` plus a
      pairwise test), kept for the existing call sites.

    When the backend is matrix-backed (``supports_class_rows``) and the
    quadratic check would otherwise run, class-vs-class interference is
    answered from per-class adjacency rows instead: each class carries the OR
    of its members' matrix rows, coalesces merge the rows (one OR), and a
    check is a single AND against the other class's slot bits —
    ``class_row_checks`` counts how many pairwise sweeps that replaced.
    """

    def __init__(
        self,
        oracle,
        test=None,
        use_linear_check: bool = True,
    ) -> None:
        if test is None:
            if not isinstance(oracle, InterferenceOracle):
                raise TypeError(
                    "single-argument construction expects an InterferenceOracle "
                    f"backend, not {type(oracle).__name__}"
                )
            self.test = oracle
            self.oracle: IntersectionOracle = oracle.oracle
        else:
            self.oracle = oracle
            self.test = test
        self.use_linear_check = use_linear_check
        #: Whether class-vs-class checks may be answered from merged matrix
        #: rows (matrix-backed test, no linear sweep configured).
        self._class_rows = (
            not use_linear_check and getattr(self.test, "supports_class_rows", False)
        )
        self._class_of: Dict[Variable, CongruenceClass] = {}
        #: Number of variable-to-variable interference queries issued by the
        #: class-vs-class checks (reported by the Figure 6 harness).
        self.pair_queries = 0
        #: Class-vs-class checks answered from merged matrix rows (no
        #: pairwise queries at all).
        self.class_row_checks = 0

    # -- class management --------------------------------------------------------------
    def ensure(self, var: Variable) -> CongruenceClass:
        """Return the class of ``var``, creating a singleton if needed."""
        cls = self._class_of.get(var)
        if cls is None:
            cls = CongruenceClass([var])
            self._class_of[var] = cls
        return cls

    def class_of(self, var: Variable) -> CongruenceClass:
        return self.ensure(var)

    def same_class(self, a: Variable, b: Variable) -> bool:
        return self.ensure(a) is self.ensure(b)

    def classes(self) -> List[CongruenceClass]:
        seen: List[CongruenceClass] = []
        for cls in self._class_of.values():
            if all(cls is not other for other in seen):
                seen.append(cls)
        return seen

    def representative(self, var: Variable) -> Variable:
        """A canonical member of ``var``'s class (the ≺-smallest one)."""
        cls = self.ensure(var)
        return cls.members[0] if cls.members else var

    def _sort_key(self, var: Variable):
        return self.oracle.dominance_order_key(var)

    def make_class(self, members: Iterable[Variable], register: Optional[str] = None) -> CongruenceClass:
        """Create one class containing ``members`` (assumed interference-free)."""
        ordered = sorted(members, key=self._sort_key)
        cls = CongruenceClass(ordered, register=register)
        self._precompute_equal_anc_in(cls)
        for member in ordered:
            self._class_of[member] = cls
        return cls

    def _precompute_equal_anc_in(self, cls: CongruenceClass) -> None:
        """Compute equal intersecting ancestors inside a freshly built class.

        Classes built by :meth:`merge` maintain this incrementally; classes
        built directly (φ-nodes, pinned groups) are usually intersection-free
        so the chains are empty, but we compute them exactly for safety.
        """
        cls.equal_anc_in = {}
        for i, member in enumerate(cls.members):
            ancestor: Optional[Variable] = None
            for candidate in reversed(cls.members[:i]):
                if not self.oracle.dominates(candidate, member):
                    continue
                if self.test.same_value(candidate, member) and self.oracle.intersect(candidate, member):
                    ancestor = candidate
                    break
            cls.equal_anc_in[member] = ancestor

    # -- pairwise helper -----------------------------------------------------------------
    def _pair_interferes(self, a: Variable, b: Variable) -> bool:
        self.pair_queries += 1
        return self.test.interferes(a, b)

    # -- matrix-backed class rows ---------------------------------------------------------
    def _row_masks(self, cls: CongruenceClass) -> Optional[Tuple[int, int]]:
        """``(slot bits, merged adjacency)`` of a class, or ``None`` when a
        member falls outside the matrix universe.  Computed lazily once per
        class; merges combine the parents' masks with two ORs."""
        if cls.slot_mask is not None:
            if cls.slot_mask < 0:
                return None
            return cls.slot_mask, cls.adj_mask  # type: ignore[return-value]
        slot_of = self.test.slot
        adjacency = self.test.adjacency_bits
        slots = 0
        adj = 0
        for member in cls.members:
            slot = slot_of(member)
            if slot is None:
                cls.slot_mask = -1
                return None
            slots |= 1 << slot
            adj |= adjacency(member)
        cls.slot_mask = slots
        cls.adj_mask = adj
        return slots, adj

    # -- quadratic reference check ----------------------------------------------------------
    def interfere_quadratic(
        self,
        left: CongruenceClass,
        right: CongruenceClass,
        skip_pairs: Iterable[Tuple[Variable, Variable]] = (),
    ) -> bool:
        """All-pairs interference test between two classes.

        ``skip_pairs`` supports Sreedhar's SSA-based coalescing rule, which
        exempts the copy's own (source, destination) pair from the check.
        """
        if left.register and right.register and left.register != right.register:
            return True
        skip = set()
        for a, b in skip_pairs:
            skip.add((a, b))
            skip.add((b, a))
        for a in left.members:
            for b in right.members:
                if (a, b) in skip:
                    continue
                if self._pair_interferes(a, b):
                    return True
        return False

    # -- linear check (paper Algorithm 2 + value extension) -----------------------------------
    def interfere_linear(
        self,
        left: CongruenceClass,
        right: CongruenceClass,
    ) -> Tuple[bool, Dict[Variable, Optional[Variable]]]:
        """Linear-time interference check between two classes.

        Returns ``(interferes, equal_anc_out)``; the ``equal_anc_out`` map is
        what :meth:`merge` needs to maintain the per-member chains when the
        classes are coalesced.
        """
        if left.register and right.register and left.register != right.register:
            return True, {}

        oracle = self.oracle
        in_left = set(left.members)
        equal_anc_out: Dict[Variable, Optional[Variable]] = {}

        def equal_anc_in(var: Variable) -> Optional[Variable]:
            if var in in_left:
                return left.equal_anc_in.get(var)
            return right.equal_anc_in.get(var)

        def intersect(a: Variable, b: Variable) -> bool:
            self.pair_queries += 1
            return oracle.intersect(a, b)

        def chain_intersect(a: Variable, b: Optional[Variable]) -> bool:
            """Does ``a`` intersect ``b`` or one of its equal intersecting ancestors?"""
            tmp = b
            while tmp is not None and not intersect(a, tmp):
                tmp = equal_anc_in(tmp)
            return tmp is not None

        def update_equal_anc_out(a: Variable, b: Optional[Variable]) -> None:
            tmp = b
            while tmp is not None and not intersect(a, tmp):
                tmp = equal_anc_in(tmp)
            equal_anc_out[a] = tmp

        def interference(a: Variable, b: Variable) -> bool:
            """Paper's ``interference`` function: a against its dominating parent b."""
            equal_anc_out.setdefault(a, None)
            other = b
            if (a in in_left) == (b in in_left):
                # Same set: redirect the check to b's equal intersecting
                # ancestor in the *other* set.
                other = equal_anc_out.get(b)
            if other is None:
                return False
            if not self.test.same_value(a, other):
                return chain_intersect(a, other)
            update_equal_anc_out(a, other)
            return False

        def plain_interference(a: Variable, b: Variable) -> bool:
            """Intersection-only variant: test only across sets."""
            if (a in in_left) == (b in in_left):
                return False
            self.pair_queries += 1
            if self.test.kind is InterferenceKind.INTERSECT:
                return oracle.intersect(a, b)
            return self.test.interferes(a, b)

        value_based = self.test.kind is InterferenceKind.VALUE
        check = interference if value_based else plain_interference

        # Joint sweep of the two sorted lists in dominance pre-order ≺,
        # simulating the recursive traversal of the dominance forest.
        red = left.members
        blue = right.members
        ir = ib = 0
        stack: List[Variable] = []
        stack_from_left = 0
        stack_from_right = 0

        def should_continue() -> bool:
            return (
                (ir < len(red) and (stack_from_right > 0 or ib < len(blue)))
                or (ib < len(blue) and (stack_from_left > 0 or ir < len(red)))
            )

        while should_continue():
            if ir < len(red) and (
                ib >= len(blue) or self._sort_key(red[ir]) <= self._sort_key(blue[ib])
            ):
                current = red[ir]
                ir += 1
            else:
                current = blue[ib]
                ib += 1

            while stack and not oracle.dominates(stack[-1], current):
                popped = stack.pop()
                if popped in in_left:
                    stack_from_left -= 1
                else:
                    stack_from_right -= 1

            parent = stack[-1] if stack else None
            if parent is not None and check(current, parent):
                return True, equal_anc_out

            stack.append(current)
            if current in in_left:
                stack_from_left += 1
            else:
                stack_from_right += 1

        return False, equal_anc_out

    # -- public check + merge ---------------------------------------------------------------------
    def interfere(
        self,
        left: CongruenceClass,
        right: CongruenceClass,
        skip_pairs: Iterable[Tuple[Variable, Variable]] = (),
    ) -> Tuple[bool, Dict[Variable, Optional[Variable]]]:
        """Do the two classes interfere?  Returns ``(answer, equal_anc_out)``."""
        if left is right:
            return False, {}
        skip_pairs = list(skip_pairs)
        # The linear sweep relies on every class being interference-free under
        # the test in use, which holds for the intersection and value-based
        # notions; Chaitin-style tests and Sreedhar's skip-pair rule fall back
        # to the quadratic reference.
        linear_ok = self.test.kind in (InterferenceKind.INTERSECT, InterferenceKind.VALUE)
        if self.use_linear_check and linear_ok and not skip_pairs:
            return self.interfere_linear(left, right)
        if self._class_rows and not skip_pairs:
            # Matrix-backed classes: the merged adjacency row of one class
            # against the slot bits of the other answers the whole quadratic
            # sweep in one AND (the matrix already stores the notion-specific
            # verdict for every universe pair).
            if not (left.register and right.register and left.register != right.register):
                left_masks = self._row_masks(left)
                right_masks = self._row_masks(right)
                if left_masks is not None and right_masks is not None:
                    self.class_row_checks += 1
                    return bool(left_masks[1] & right_masks[0]), {}
        return self.interfere_quadratic(left, right, skip_pairs), {}

    def merge(
        self,
        left: CongruenceClass,
        right: CongruenceClass,
        equal_anc_out: Optional[Dict[Variable, Optional[Variable]]] = None,
    ) -> CongruenceClass:
        """Coalesce two (non-interfering) classes into one; return the result."""
        if left is right:
            return left
        if left.register and right.register and left.register != right.register:
            raise ValueError("cannot merge classes pinned to different registers")

        merged_members: List[Variable] = []
        i = j = 0
        while i < len(left.members) or j < len(right.members):
            if j >= len(right.members) or (
                i < len(left.members)
                and self._sort_key(left.members[i]) <= self._sort_key(right.members[j])
            ):
                merged_members.append(left.members[i])
                i += 1
            else:
                merged_members.append(right.members[j])
                j += 1

        result = CongruenceClass(merged_members, register=left.register or right.register)
        if (
            left.slot_mask is not None
            and right.slot_mask is not None
            and left.slot_mask >= 0
            and right.slot_mask >= 0
        ):
            # Coalescing merges the matrix rows: the class's slot bits and
            # adjacency are the OR of its parents' — no re-derivation.
            result.slot_mask = left.slot_mask | right.slot_mask
            result.adj_mask = (left.adj_mask or 0) | (right.adj_mask or 0)
        equal_anc_out = equal_anc_out or {}
        for member in merged_members:
            inside = (
                left.equal_anc_in.get(member)
                if member in left.equal_anc_in
                else right.equal_anc_in.get(member)
            )
            outside = equal_anc_out.get(member)
            result.equal_anc_in[member] = self._max_by_order(inside, outside)
        for member in merged_members:
            self._class_of[member] = result
        return result

    def _max_by_order(
        self, a: Optional[Variable], b: Optional[Variable]
    ) -> Optional[Variable]:
        """The ≺-greater (i.e. deeper / nearer) of two optional ancestors."""
        if a is None:
            return b
        if b is None:
            return a
        return a if self._sort_key(a) >= self._sort_key(b) else b

    # -- convenience for drivers ----------------------------------------------------------------------
    def try_coalesce(
        self,
        a: Variable,
        b: Variable,
        skip_copy_pair: bool = False,
    ) -> bool:
        """Coalesce the classes of ``a`` and ``b`` if they do not interfere.

        ``skip_copy_pair`` implements Sreedhar's SSA-based coalescing rule
        (the pair ``(a, b)`` itself is exempted from the interference check).
        Returns True if the classes were merged (or already equal).
        """
        left = self.ensure(a)
        right = self.ensure(b)
        if left is right:
            return True
        skip_pairs = [(a, b)] if skip_copy_pair else []
        interferes, equal_anc_out = self.interfere(left, right, skip_pairs)
        if interferes:
            return False
        self.merge(left, right, equal_anc_out)
        return True
