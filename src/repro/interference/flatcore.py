"""Flat-core interference: symmetric adjacency rows + int-mask edge scan.

Two independent costs dominate the object-graph matrix backend on large
functions:

* the **edge scan** (`scan_interference_edges`) walks every block's schedule
  backward keeping a `set` of live `Variable` objects, with a Python-level
  membership test, copy-source lookup, and (for the VALUE notion) a
  `same_value` call per (definition, live variable) pair;
* the **adjacency reads** used by class-row coalescing
  (`InterferenceGraph.adjacency_bits`) cost O(universe) each, because the
  half-triangular `BitMatrix` stores each pair once and `full_row` has to
  scan the column above the diagonal.

`FlatMatrixInterference` replaces both while keeping the `BitMatrix` —
row-for-row identical, so `matrix_bytes`, allocation-tracker events and
Figure 7 stay untouched:

* :func:`scan_interference_edges_flat` runs over the
  :class:`~repro.ir.flat.FlatFunction` instruction rows: the live set is an
  int mask, the VALUE exemption is a precomputed per-variable same-value
  group mask, the CHAITIN exemption reads the arena's ``def_src`` column,
  and edges are written straight into the matrix rows (plus the symmetric
  rows) — no object in the inner loop;
* :class:`FlatInterferenceGraph` maintains *symmetric* per-slot adjacency
  masks next to the half matrix, making ``adjacency_bits`` O(1).  The rows
  are redundant with the matrix (the matrix stays authoritative for
  ``row_bits`` / footprint) and every mutation keeps both in sync, so the
  warm incremental path — inherited unchanged from
  :class:`IncrementalMatrixInterference`, object scan and all — works on
  the flat graph through the same ``add_edge`` / ``clear_variable`` API.

The scans are edge-for-edge identical to the object path (a property test
diffs `row_bits` between the cores), so every counter the stats report —
``matrix_hits``, ``pair_queries``, ``intersection_queries`` — agrees too.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from repro.interference.base import InterferenceKind
from repro.interference.graph import (
    IncrementalMatrixInterference,
    InterferenceGraph,
    MatrixInterference,
    scan_interference_edges,
)
from repro.ir.flat import FlatFunction
from repro.ir.function import Function
from repro.ir.instructions import Variable
from repro.liveness.bitsets import BitLivenessSets
from repro.liveness.numbering import VariableNumbering


class FlatInterferenceGraph(InterferenceGraph):
    """`InterferenceGraph` with symmetric adjacency rows beside the matrix."""

    def __init__(
        self,
        universe: Iterable[Variable] = (),
        numbering: Optional[VariableNumbering] = None,
    ) -> None:
        #: Per-slot symmetric adjacency masks (bit = slot).  Derived data:
        #: the half matrix remains the authoritative store (footprint,
        #: ``row_bits``); these rows only buy O(1) ``adjacency_bits``.
        self._sym: List[int] = []
        super().__init__(universe, numbering=numbering)

    def add_variable(self, var: Variable) -> int:
        slot = super().add_variable(var)
        if slot == len(self._sym):
            self._sym.append(0)
        return slot

    def add_edge(self, a: Variable, b: Variable) -> None:
        if a == b:
            return
        slot_a = self.add_variable(a)
        slot_b = self.add_variable(b)
        self._matrix.set(slot_a, slot_b)
        self._sym[slot_a] |= 1 << slot_b
        self._sym[slot_b] |= 1 << slot_a

    def adjacency_bits(self, var: Variable) -> int:
        slot = self._slot(var)
        if slot is None:
            return 0
        return self._sym[slot]

    def clear_variable(self, var: Variable) -> None:
        slot = self._slot(var)
        if slot is None:
            return
        super().clear_variable(var)
        row = self._sym[slot]
        unset = ~(1 << slot)
        while row:
            low = row & -row
            row ^= low
            self._sym[low.bit_length() - 1] &= unset
        self._sym[slot] = 0


def scan_interference_edges_flat(
    graph: FlatInterferenceGraph,
    flat: FlatFunction,
    test,
    in_universe: Set[Variable],
) -> None:
    """Populate ``graph`` from the arena — same edges as
    :func:`~repro.interference.graph.scan_interference_edges` over the whole
    function (a backward walk per block: every universe variable live right
    after a universe definition interferes with it, minus the
    notion-specific exemptions; parameters are defined virtually before the
    entry block).

    Requires a bit-set liveness oracle (the raw ``_bits_out`` rows are the
    scan's seed) and an arena lowered at the current generation; the caller
    (:class:`FlatMatrixInterference`) falls back to the object scan
    otherwise.
    """
    liveness = test.oracle.liveness
    numbering = graph.numbering
    size = len(numbering)
    kind = test.kind

    universe_mask = 0
    get = numbering.get
    for var in in_universe:
        index = get(var)
        if index is not None and index < size:
            universe_mask |= 1 << index

    # Slot table: numbering id -> matrix slot (-1 when not in the graph).
    slot_of = [-1] * size
    for index, slot in graph._slot_of.items():
        if index < size:
            slot_of[index] = slot

    # VALUE notion: one mask per universe variable of its same-value group
    # (itself included — which also covers the unconditional self-skip), so
    # the exemption is a single AND-NOT instead of a call per live pair.
    value_skip: Optional[List[int]] = None
    if kind is InterferenceKind.VALUE:
        value_skip = [0] * size
        variable = numbering.variable
        value_of = test.values.value
        groups = {}
        remaining = universe_mask
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            index = low.bit_length() - 1
            groups.setdefault(value_of(variable(index)), []).append(index)
        for members in groups.values():
            group_mask = 0
            for index in members:
                group_mask |= 1 << index
            for index in members:
                value_skip[index] = group_mask
    is_chaitin = kind is InterferenceKind.CHAITIN

    rows = graph._matrix._rows
    sym = graph._sym
    instr_off = flat.instr_off
    use_masks = flat.use_masks
    def_off = flat.def_off
    def_ids = flat.def_ids
    def_src = flat.def_src
    bits_out = liveness._bits_out
    ids = flat.ids
    entry_id = flat.entry

    # Adjacency already recorded, in *id* space.  The same (definition, live
    # variable) pair recurs across many blocks on large CFGs; masking the
    # known neighbours out keeps the per-bit loop proportional to *new*
    # edges, not to live-set size.  (The scan populates a fresh graph, so
    # these masks mirror the matrix rows exactly.)
    known = [0] * size

    for label in flat.function.blocks:
        block = ids[label]
        live = bits_out[label] & universe_mask
        first_row = instr_off[block]
        for row in range(instr_off[block + 1] - 1, first_row - 1, -1):
            span0 = def_off[row]
            span1 = def_off[row + 1]
            if span1 > span0:
                for position in range(span0, span1):
                    defined = def_ids[position]
                    if not universe_mask >> defined & 1:
                        continue
                    if value_skip is not None:
                        candidates = live & ~value_skip[defined]
                    else:
                        candidates = live & ~(1 << defined)
                        if is_chaitin:
                            source = def_src[position]
                            if source >= 0:
                                candidates &= ~(1 << source)
                    candidates &= ~known[defined]
                    if not candidates:
                        continue
                    known[defined] |= candidates
                    defined_bit = 1 << defined
                    defined_slot = slot_of[defined]
                    while candidates:
                        low = candidates & -candidates
                        candidates ^= low
                        other = low.bit_length() - 1
                        known[other] |= defined_bit
                        other_slot = slot_of[other]
                        if defined_slot >= other_slot:
                            rows[defined_slot] |= 1 << other_slot
                        else:
                            rows[other_slot] |= 1 << defined_slot
                        sym[defined_slot] |= 1 << other_slot
                        sym[other_slot] |= 1 << defined_slot
                cleared = 0
                for position in range(span0, span1):
                    cleared |= 1 << def_ids[position]
                live &= ~cleared
            live |= use_masks[row] & universe_mask

        if block == entry_id:
            for param in flat.params:
                if not universe_mask >> param & 1:
                    continue
                if value_skip is not None:
                    candidates = live & ~value_skip[param]
                else:
                    candidates = live & ~(1 << param)
                candidates &= ~known[param]
                if not candidates:
                    continue
                known[param] |= candidates
                param_bit = 1 << param
                param_slot = slot_of[param]
                while candidates:
                    low = candidates & -candidates
                    candidates ^= low
                    other = low.bit_length() - 1
                    known[other] |= param_bit
                    other_slot = slot_of[other]
                    if param_slot >= other_slot:
                        rows[param_slot] |= 1 << other_slot
                    else:
                        rows[other_slot] |= 1 << param_slot
                    sym[param_slot] |= 1 << other_slot
                    sym[other_slot] |= 1 << param_slot


class FlatMatrixInterference(MatrixInterference):
    """The ``matrix`` backend with a flat-core build (``--core flat``).

    Identical matrix contents, counters, and footprint as the objects core;
    only the construction loop differs.  When the liveness oracle is not
    bit-set backed, or no arena at the current generation is available, the
    build falls back to the object scan — correctness never depends on the
    arena being fresh.
    """

    def __init__(
        self,
        function: Function,
        oracle,
        kind: InterferenceKind,
        values=None,
        universe: Optional[Iterable[Variable]] = None,
        numbering: Optional[VariableNumbering] = None,
        flat: Optional[FlatFunction] = None,
    ) -> None:
        self._flat = flat
        super().__init__(
            function, oracle, kind, values, universe=universe, numbering=numbering
        )

    def _build_graph(
        self,
        function: Function,
        universe: Optional[Iterable[Variable]],
        numbering: Optional[VariableNumbering],
    ) -> InterferenceGraph:
        candidates = (
            list(universe) if universe is not None else function.variables()
        )
        graph = FlatInterferenceGraph(candidates, numbering=numbering)
        flat = self._flat
        liveness = self.oracle.liveness
        if (
            flat is not None
            and flat.function is function
            and flat.generation == function.generation
            and isinstance(liveness, BitLivenessSets)
        ):
            scan_interference_edges_flat(graph, flat, self, set(candidates))
        else:
            scan_interference_edges(
                graph, function, self, set(candidates), function.blocks
            )
        return graph


class FlatIncrementalMatrixInterference(
    FlatMatrixInterference, IncrementalMatrixInterference
):
    """The ``incremental`` matrix backend on the flat core.

    The cold build comes from :class:`FlatMatrixInterference`; the warm
    paths (``apply_edits`` / ``extend_universe``) are inherited from
    :class:`IncrementalMatrixInterference` unchanged — they re-scan small
    dirty regions through the object walk, writing into the flat graph via
    the preserved ``add_edge`` interface (which keeps the symmetric rows in
    sync), so patched results remain bit-identical to the objects core.
    """
