"""The pluggable interference-backend protocol and the query backend.

The paper's central speed claim (§IV) is that out-of-SSA coalescing does not
need an explicit interference graph: dominance-ordered intersection queries
plus SSA value equality answer every pairwise question on the fly.  Whether a
graph *is* built is therefore a representation choice, not a semantic one —
exactly the situation the liveness layer already handles with its pluggable
oracle stack.  This module gives interference the same treatment:

:class:`InterferenceOracle`
    The protocol every backend implements.  It subsumes the historical
    ``InterferenceTest`` surface (``interferes`` / ``same_value`` /
    ``intersects`` under one of the three :class:`InterferenceKind` notions)
    and adds the congruence-facing helpers (``intersect``, ``dominates``,
    ``dominance_order_key``), a maintenance hook (:meth:`apply_edits`, fed by
    the same :class:`~repro.ir.editlog.EditLog`\\ s the incremental liveness
    backend consumes) and the class-row support surface the congruence layer
    uses to merge interference rows on coalesces.

:class:`QueryInterference`
    The ``query`` backend — the paper's contribution: no materialised graph,
    every verdict computed from the dominance-based intersection test and the
    value table.  This *is* the base implementation; the class exists so the
    backend registry and the :class:`~repro.pipeline.analysis.AnalysisCache`
    can key it distinctly.

The ``matrix`` and ``incremental`` backends (eager half bit-matrix; the same
matrix kept valid across pass edits) live in :mod:`repro.interference.graph`
next to the matrix representation they share.
"""

from __future__ import annotations

import enum
from typing import Optional


class InterferenceKind(enum.Enum):
    """Which notion of interference a backend implements (§III-A, §III-E).

    ``INTERSECT``
        two variables interfere iff their live ranges intersect — the
        coarsest notion, the "Intersect" variant of Figure 5;
    ``CHAITIN``
        they interfere iff one is live at a definition point of the other
        *and* that definition is not a copy between the two;
    ``VALUE``
        they interfere iff their live ranges intersect *and* they carry
        different SSA values — the paper's refinement, computed from
        :class:`~repro.ssa.values.ValueTable` at no extra cost.
    """

    INTERSECT = "intersect"
    CHAITIN = "chaitin"
    VALUE = "value"


class InterferenceOracle:
    """Protocol (and query implementation) of the interference backends.

    Every backend is constructed over an
    :class:`~repro.liveness.intersection.IntersectionOracle` (which supplies
    liveness, dominance and the ≺ order keys) plus the configured
    :class:`InterferenceKind`; value-based interference additionally needs a
    :class:`~repro.ssa.values.ValueTable`.  The same code therefore runs
    whether liveness comes from data-flow sets or liveness checking, and the
    backends differ only in *where the verdict is stored*:

    ``query``   — nowhere: recomputed per query (this class);
    ``matrix``  — an eager half bit-matrix over a restricted universe,
                  non-universe pairs fall back to the query path;
    ``incremental`` — the same matrix, kept valid across structural edits by
                  consuming pass-emitted :class:`~repro.ir.editlog.EditLog`\\ s.
    """

    #: Registry name of the backend (``EngineConfig.interference``).
    backend_name = "query"
    #: Whether the congruence layer may keep per-class adjacency rows (bit
    #: masks over matrix slots, merged on coalesces) for O(words) class
    #: checks; only the matrix-backed backends can.
    supports_class_rows = False

    def __init__(self, function, oracle, kind: InterferenceKind, values=None) -> None:
        if kind is InterferenceKind.VALUE and values is None:
            raise ValueError("value-based interference requires a ValueTable")
        self.function = function
        #: The dominance-based intersection oracle every verdict reduces to.
        self.oracle = oracle
        self.kind = kind
        self.values = values

    # -- building blocks -----------------------------------------------------------
    def intersects(self, a, b) -> bool:
        """Do the live ranges of ``a`` and ``b`` intersect?"""
        return self.oracle.intersect(a, b)

    def same_value(self, a, b) -> bool:
        """Do ``a`` and ``b`` carry the same SSA value (False without a table)?"""
        if self.values is None:
            return False
        return self.values.same_value(a, b)

    def _is_copy_between(self, defining, other) -> bool:
        """Is the definition of ``defining`` a copy from ``other``?"""
        from repro.ir.instructions import Copy, ParallelCopy  # local: avoid cycles

        def_point = self.oracle.liveness.definition_of(defining)
        if def_point is None or def_point.instruction is None:
            return False
        instruction = def_point.instruction
        if isinstance(instruction, Copy):
            return instruction.src == other
        if isinstance(instruction, ParallelCopy):
            for dst, src in instruction.pairs:
                if dst == defining:
                    return src == other
        return False

    # -- the pairwise test ---------------------------------------------------------
    def interferes(self, a, b) -> bool:
        """Do ``a`` and ``b`` interfere under the configured notion?"""
        if a == b:
            return False
        if self.kind is InterferenceKind.INTERSECT:
            return self.intersects(a, b)
        if self.kind is InterferenceKind.VALUE:
            return self.intersects(a, b) and not self.same_value(a, b)
        # Chaitin: live at a definition point which is not a copy between them.
        live = self.oracle.liveness
        def_a = live.definition_of(a)
        def_b = live.definition_of(b)
        if def_b is not None and live.is_live_after(def_b.block, def_b.index, a):
            if not self._is_copy_between(b, a):
                return True
        if def_a is not None and live.is_live_after(def_a.block, def_a.index, b):
            if not self._is_copy_between(a, b):
                return True
        return False

    # -- congruence-facing helpers (delegated to the intersection oracle) ----------
    def intersect(self, a, b) -> bool:
        return self.oracle.intersect(a, b)

    def dominates(self, a, b) -> bool:
        return self.oracle.dominates(a, b)

    def dominance_order_key(self, var):
        return self.oracle.dominance_order_key(var)

    # -- class-row support (matrix backends only) ----------------------------------
    def slot(self, var) -> Optional[int]:
        """Matrix slot of ``var``, or ``None`` (no matrix / not in universe)."""
        return None

    def adjacency_bits(self, var) -> int:
        """Symmetric adjacency row of ``var`` as a bit mask over matrix slots."""
        return 0

    # -- maintenance ---------------------------------------------------------------
    def apply_edits(self, log) -> None:
        """Keep the backend valid after the structural edits ``log`` records.

        Contract (shared with :class:`~repro.liveness.incremental.IncrementalBitLiveness`):
        the underlying liveness oracle has **already** been patched (or
        rebuilt) for the same log when this is called.  The query backend
        stores no verdicts, so it only refreshes the intersection oracle's
        memoized dominance state: an edit that changed the CFG itself (a
        split edge, a new block) drops the lazily built dominator tree and
        every ≺ key — the preorder shifted under all of them — while a pure
        instruction edit drops only the affected variables' keys.  The matrix
        backends additionally patch their rows (see
        :class:`~repro.interference.graph.IncrementalMatrixInterference`).
        """
        from repro.ir.editlog import BLOCK_SPLIT  # local: keep base.py IR-free

        cfg_changed = bool(log.new_blocks) or any(
            edit.kind == BLOCK_SPLIT for edit in log
        )
        if cfg_changed:
            self.oracle.invalidate_structure()
        else:
            self.oracle.invalidate_keys(log.affected_variables())

    # -- accounting ----------------------------------------------------------------
    def matrix_bytes(self) -> int:
        """Measured bytes of the backend's interference matrix (0 if none)."""
        return 0

    def footprint_bytes(self) -> int:
        """Idealised long-lived footprint of the backend's own structures."""
        return self.matrix_bytes()

    def describe(self) -> str:
        return f"{self.backend_name} interference backend ({self.kind.value})"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} kind={self.kind.value}>"


class QueryInterference(InterferenceOracle):
    """The ``query`` backend: verdicts computed on the fly, nothing stored."""

    backend_name = "query"
