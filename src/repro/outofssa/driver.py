"""The out-of-SSA translation driver.

``destruct_ssa`` runs the paper's four conceptual phases (§III):

1. **Isolation** — parallel copies are inserted for every φ-function
   (Method I) and each φ's primed variables are pre-coalesced into a φ-node
   congruence class; register-renaming constraints contribute pre-coalesced,
   register-labelled classes.
2. **Interference** — liveness (ordered-set data-flow, bit-set worklist
   data-flow, or liveness checking), SSA values, and the selected interference
   notion are set up; optionally an explicit interference graph (half
   bit-matrix) is built.
3. **Coalescing** — aggressive, weight-driven coalescing of all copy-related
   affinities, with the Figure 5 strategy variants, optionally followed by the
   copy-sharing post-pass.
4. **Materialization** — every variable is renamed to its congruence-class
   representative, φ-functions disappear, the surviving parallel-copy
   components are sequentialized (Algorithm 1) and identity copies dropped.

Since the pipeline redesign the phases live as pass objects in
:mod:`repro.pipeline.phases` over a shared
:class:`~repro.pipeline.analysis.AnalysisCache`; ``destruct_ssa`` is a thin
wrapper over ``Pipeline.for_engine(config).run(function)`` kept for backward
compatibility, and this module re-exports the configuration and result types
from :mod:`repro.outofssa.config` / :mod:`repro.outofssa.result`.

Engine *configurations* (which liveness oracle, whether a graph is built,
whether the linear class check is used, which coalescing variant and
processing order) reproduce the seven bars of Figures 6 and 7.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.ir.function import Function
from repro.outofssa.config import (
    DEFAULT_ENGINE,
    ENGINE_CONFIGURATIONS,
    INTERFERENCE_BACKENDS,
    LIVENESS_BACKENDS,
    EngineConfig,
    EngineConfigBuilder,
    engine_by_name,
)
from repro.outofssa.result import OutOfSSAResult, OutOfSSAStats
from repro.utils.instrument import AllocationTracker

__all__ = [
    "DEFAULT_ENGINE",
    "ENGINE_CONFIGURATIONS",
    "INTERFERENCE_BACKENDS",
    "LIVENESS_BACKENDS",
    "EngineConfig",
    "EngineConfigBuilder",
    "OutOfSSAResult",
    "OutOfSSAStats",
    "destruct_ssa",
    "engine_by_name",
]


def destruct_ssa(
    function: Function,
    config: EngineConfig = DEFAULT_ENGINE,
    frequencies: Optional[Dict[str, float]] = None,
    tracker: Optional[AllocationTracker] = None,
) -> OutOfSSAResult:
    """Translate ``function`` out of SSA form, in place, and return the result.

    The input must be strict SSA (possibly non-conventional); the output is an
    ordinary (non-SSA) function with no φ-functions and no parallel copies.

    This is the pipeline run ``Pipeline.for_engine(config).run(...)``; use
    :class:`repro.pipeline.Pipeline` directly for pass-level control and
    :class:`repro.pipeline.Session` to translate many functions.
    """
    # Imported per-call: repro.pipeline imports this package's submodules, so
    # a module-level import here would break `import repro.pipeline` entry.
    from repro.pipeline.pipeline import Pipeline

    return Pipeline.for_engine(config).run(
        function, frequencies=frequencies, tracker=tracker
    )
