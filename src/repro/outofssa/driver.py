"""The out-of-SSA translation driver.

``destruct_ssa`` runs the paper's four conceptual phases (§III):

1. **Isolation** — parallel copies are inserted for every φ-function
   (Method I) and each φ's primed variables are pre-coalesced into a φ-node
   congruence class; register-renaming constraints contribute pre-coalesced,
   register-labelled classes.
2. **Interference** — liveness (ordered-set data-flow, bit-set worklist
   data-flow, or liveness checking), SSA values, and the selected interference
   notion are set up; optionally an explicit interference graph (half
   bit-matrix) is built.
3. **Coalescing** — aggressive, weight-driven coalescing of all copy-related
   affinities, with the Figure 5 strategy variants, optionally followed by the
   copy-sharing post-pass.
4. **Materialization** — every variable is renamed to its congruence-class
   representative, φ-functions disappear, the surviving parallel-copy
   components are sequentialized (Algorithm 1) and identity copies dropped.

Engine *configurations* (which liveness oracle, whether a graph is built,
whether the linear class check is used, which coalescing variant and
processing order) reproduce the seven bars of Figures 6 and 7.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cfg.dominance import DominatorTree
from repro.cfg.frequency import estimate_block_frequencies
from repro.coalescing.engine import Affinity, AggressiveCoalescer, collect_affinities
from repro.coalescing.sharing import apply_copy_sharing
from repro.coalescing.variants import CoalescingVariant, variant_by_name
from repro.interference.congruence import CongruenceClasses
from repro.interference.definitions import InterferenceKind, InterferenceTest
from repro.interference.graph import InterferenceGraph
from repro.ir.function import Function
from repro.ir.instructions import (
    Constant,
    Copy,
    ParallelCopy,
    Phi,
    Variable,
)
from repro.liveness.base import LivenessOracle
from repro.liveness.bitsets import BitLivenessSets
from repro.liveness.dataflow import LivenessSets
from repro.liveness.livecheck import LivenessChecker
from repro.outofssa.method_i import PhiCopyInsertion, insert_phi_copies
from repro.outofssa.parallel_copy import sequentialize_parallel_copy
from repro.outofssa.pinning import pinned_register_groups
from repro.ssa.values import ValueTable
from repro.utils.instrument import AllocationTracker, track_allocations


# --------------------------------------------------------------------------- config
@dataclass(frozen=True)
class EngineConfig:
    """One out-of-SSA engine configuration (a bar of Figures 6/7)."""

    name: str
    label: str
    #: Figure 5 coalescing variant driving interference notion / ordering.
    coalescing: str = "value"
    #: Liveness backend: "sets" (ordered-set data-flow, the reference
    #: implementation), "bitsets" (bit-set rows + worklist, the encoding
    #: Figure 7 evaluates) or "check" (liveness checking, no global sets).
    liveness: str = "bitsets"
    #: Build an explicit interference graph (bit-matrix) or answer pairwise
    #: queries directly ("InterCheck").
    use_interference_graph: bool = True
    #: Use the linear congruence-class interference check instead of the
    #: quadratic all-pairs one.
    linear_class_check: bool = False
    #: What to do when a φ-argument is defined by the predecessor's terminator.
    on_branch_def: str = "split"

    def describe(self) -> str:
        parts = [variant_by_name(self.coalescing).label]
        liveness_labels = {
            "sets": "ordered liveness sets",
            "bitsets": "bit-set liveness",
            "check": "LiveCheck",
        }
        parts.append(liveness_labels.get(self.liveness, self.liveness))
        parts.append("interference graph" if self.use_interference_graph else "InterCheck")
        parts.append("linear class check" if self.linear_class_check else "quadratic class check")
        return ", ".join(parts)


#: The seven engine configurations of the paper's Figure 6 / Figure 7.
ENGINE_CONFIGURATIONS: List[EngineConfig] = [
    EngineConfig(
        name="sreedhar_iii", label="Sreedhar III", coalescing="sreedhar_iii",
        liveness="bitsets", use_interference_graph=True, linear_class_check=False,
    ),
    EngineConfig(
        name="us_iii", label="Us III", coalescing="value_is",
        liveness="bitsets", use_interference_graph=True, linear_class_check=False,
    ),
    EngineConfig(
        name="us_iii_intercheck", label="Us III + InterCheck", coalescing="value_is",
        liveness="bitsets", use_interference_graph=False, linear_class_check=False,
    ),
    EngineConfig(
        name="us_iii_intercheck_livecheck", label="Us III + InterCheck + LiveCheck",
        coalescing="value_is", liveness="check", use_interference_graph=False,
        linear_class_check=False,
    ),
    EngineConfig(
        name="us_iii_linear_intercheck_livecheck",
        label="Us III + Linear + InterCheck + LiveCheck", coalescing="value_is",
        liveness="check", use_interference_graph=False, linear_class_check=True,
    ),
    EngineConfig(
        name="us_i", label="Us I", coalescing="value",
        liveness="bitsets", use_interference_graph=True, linear_class_check=False,
    ),
    EngineConfig(
        name="us_i_linear_intercheck_livecheck",
        label="Us I + Linear + InterCheck + LiveCheck", coalescing="value",
        liveness="check", use_interference_graph=False, linear_class_check=True,
    ),
]

_CONFIG_BY_NAME = {config.name: config for config in ENGINE_CONFIGURATIONS}


def engine_by_name(name: str) -> EngineConfig:
    """Look up a Figure 6/7 engine configuration by name."""
    try:
        return _CONFIG_BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_CONFIG_BY_NAME))
        raise KeyError(f"unknown engine {name!r}; known engines: {known}") from None


DEFAULT_ENGINE = _CONFIG_BY_NAME["us_i_linear_intercheck_livecheck"]


# --------------------------------------------------------------------------- result
@dataclass
class OutOfSSAStats:
    """Counters describing one translation run."""

    inserted_phi_copies: int = 0
    affinities: int = 0
    coalesced: int = 0
    shared: int = 0
    remaining_copies: int = 0          #: variable-to-variable copies in the output
    constant_moves: int = 0            #: copies materializing constants
    sequentialization_temps: int = 0   #: extra cycle-breaking temporaries
    dynamic_copy_cost: float = 0.0     #: frequency-weighted remaining copies
    pair_queries: int = 0
    intersection_queries: int = 0
    split_blocks: int = 0
    elapsed_seconds: float = 0.0
    # Inputs to the Figure 7 "evaluated" memory formulas.
    num_blocks: int = 0                #: blocks after copy insertion / splitting
    candidate_variables: int = 0       #: φ-related + copy-related variables
    liveness_set_entries: int = 0      #: total entries of live-in/out ordered sets


@dataclass
class OutOfSSAResult:
    """Everything produced by :func:`destruct_ssa`."""

    function: Function
    config: EngineConfig
    stats: OutOfSSAStats
    tracker: AllocationTracker
    rename_map: Dict[Variable, Variable] = field(default_factory=dict)

    @property
    def memory_total_bytes(self) -> int:
        return self.tracker.total()

    @property
    def memory_peak_bytes(self) -> int:
        return self.tracker.peak()


# --------------------------------------------------------------------------- helpers
class _GraphBackedInterferenceTest(InterferenceTest):
    """Pairwise interference answered from a pre-built bit-matrix graph."""

    def __init__(self, base: InterferenceTest, graph: InterferenceGraph) -> None:
        super().__init__(base.function, base.oracle, base.kind, base.values)
        self.graph = graph

    def interferes(self, a: Variable, b: Variable) -> bool:
        if a in self.graph and b in self.graph:
            return self.graph.interferes(a, b)
        return super().interferes(a, b)


def _make_liveness(function: Function, kind: str) -> LivenessOracle:
    if kind == "sets":
        return LivenessSets(function)
    if kind == "bitsets":
        return BitLivenessSets(function)
    if kind == "check":
        return LivenessChecker(function)
    raise ValueError(f"unknown liveness oracle kind {kind!r}")


def _candidate_universe(
    function: Function,
    insertion: PhiCopyInsertion,
    affinities: List[Affinity],
) -> List[Variable]:
    """The φ-related and copy-related variables (the paper's restricted universe)."""
    seen: Dict[Variable, None] = {}
    for members in insertion.phi_nodes:
        for var in members:
            seen.setdefault(var, None)
    for affinity in affinities:
        seen.setdefault(affinity.dst, None)
        seen.setdefault(affinity.src, None)
    for var in function.pinned:
        seen.setdefault(var, None)
    return list(seen)


# --------------------------------------------------------------------------- driver
def destruct_ssa(
    function: Function,
    config: EngineConfig = DEFAULT_ENGINE,
    frequencies: Optional[Dict[str, float]] = None,
    tracker: Optional[AllocationTracker] = None,
) -> OutOfSSAResult:
    """Translate ``function`` out of SSA form, in place, and return the result.

    The input must be strict SSA (possibly non-conventional); the output is an
    ordinary (non-SSA) function with no φ-functions and no parallel copies.
    """
    tracker = tracker if tracker is not None else AllocationTracker()
    stats = OutOfSSAStats()
    start = time.perf_counter()
    variant = variant_by_name(config.coalescing)

    with track_allocations(tracker):
        # Phase 1 — isolation: Method I parallel copies + φ-node classes.
        insertion = insert_phi_copies(function, on_branch_def=config.on_branch_def)
        stats.inserted_phi_copies = insertion.inserted_copy_count
        stats.split_blocks = len(insertion.split_blocks)

        frequencies = frequencies or estimate_block_frequencies(function)

        # Phase 2 — analyses.
        domtree = DominatorTree(function)
        liveness = _make_liveness(function, config.liveness)
        from repro.liveness.intersection import IntersectionOracle

        oracle = IntersectionOracle(function, liveness, domtree)
        values = ValueTable(function, domtree)
        test = InterferenceTest(function, oracle, variant.interference, values)

        affinities = collect_affinities(function, insertion, frequencies)
        stats.affinities = len(affinities)

        universe = _candidate_universe(function, insertion, affinities)
        stats.candidate_variables = len(universe)
        stats.num_blocks = len(function.blocks)
        if isinstance(liveness, (LivenessSets, BitLivenessSets)):
            stats.liveness_set_entries = sum(
                len(s) for s in liveness.live_in.values()
            ) + sum(len(s) for s in liveness.live_out.values())

        if config.use_interference_graph:
            graph = InterferenceGraph.build(function, test, universe)
            test = _GraphBackedInterferenceTest(test, graph)

        classes = CongruenceClasses(oracle, test, use_linear_check=config.linear_class_check)

        # Pre-coalesce φ-nodes and register-pinned groups.
        for members in insertion.phi_nodes:
            classes.make_class(members)
        for register, group in pinned_register_groups(function).items():
            existing = [var for var in group]
            classes.make_class(existing, register=register)

        # Phase 3 — aggressive coalescing (+ optional sharing).
        coalescer = AggressiveCoalescer(
            classes, skip_copy_pair=variant.skip_copy_pair, ordering=variant.ordering
        )
        run_stats = coalescer.run(affinities)
        stats.coalesced = run_stats.coalesced
        if variant.sharing:
            stats.shared = apply_copy_sharing(
                function, classes, test, run_stats.remaining_affinities
            )

        # Phase 4 — materialization.
        rename_map = _build_rename_map(function, classes)
        shared_destinations = {
            affinity.dst for affinity in run_stats.remaining_affinities if affinity.shared
        }
        _materialize(function, rename_map, shared_destinations, frequencies, stats)

        stats.pair_queries = classes.pair_queries
        stats.intersection_queries = oracle.query_count

    stats.elapsed_seconds = time.perf_counter() - start
    return OutOfSSAResult(
        function=function, config=config, stats=stats, tracker=tracker, rename_map=rename_map
    )


# --------------------------------------------------------------------------- materialization
def _build_rename_map(
    function: Function, classes: CongruenceClasses
) -> Dict[Variable, Variable]:
    mapping: Dict[Variable, Variable] = {}
    for var in function.variables():
        representative = classes.representative(var) if classes.same_class(var, var) else var
        if representative != var:
            mapping[var] = representative
    return mapping


def _renamed(var: Variable, mapping: Dict[Variable, Variable]) -> Variable:
    return mapping.get(var, var)


def _materialize(
    function: Function,
    mapping: Dict[Variable, Variable],
    shared_destinations,
    frequencies: Dict[str, float],
    stats: OutOfSSAStats,
) -> None:
    """Rename to representatives, drop φs, sequentialize surviving copies."""

    def fresh() -> Variable:
        stats.sequentialization_temps += 1
        return function.new_variable("swap")

    def lower_pcopy(pcopy: ParallelCopy, block_label: str) -> List[Copy]:
        pairs = []
        seen_dsts = set()
        for dst, src in pcopy.pairs:
            if dst in shared_destinations:
                continue
            new_dst = _renamed(dst, mapping)
            new_src = _renamed(src, mapping) if isinstance(src, Variable) else src
            if isinstance(new_src, Variable) and new_dst == new_src:
                continue
            if new_dst in seen_dsts:
                # Duplicate destinations can only carry equal values (paper
                # §III-C); keep the first copy.
                continue
            seen_dsts.add(new_dst)
            pairs.append((new_dst, new_src))
        copies = sequentialize_parallel_copy(pairs, fresh)
        for copy in copies:
            if isinstance(copy.src, Constant):
                stats.constant_moves += 1
            else:
                stats.remaining_copies += 1
                stats.dynamic_copy_cost += frequencies.get(block_label, 1.0)
        return copies

    for block in function:
        label = block.label

        # φ-functions: after renaming every operand maps to the φ-node
        # representative, so they simply disappear.
        block.phis = []

        prefix: List[Copy] = []
        if block.entry_pcopy is not None:
            prefix = lower_pcopy(block.entry_pcopy, label)
            block.entry_pcopy = None

        new_body: List = []
        for instruction in block.body:
            if isinstance(instruction, ParallelCopy):
                new_body.extend(lower_pcopy(instruction, label))
                continue
            instruction.replace_uses(mapping)  # type: ignore[arg-type]
            instruction.replace_defs(mapping)
            if isinstance(instruction, Copy):
                if isinstance(instruction.src, Variable) and instruction.src == instruction.dst:
                    continue
                if isinstance(instruction.src, Constant):
                    stats.constant_moves += 1
                else:
                    stats.remaining_copies += 1
                    stats.dynamic_copy_cost += frequencies.get(label, 1.0)
            new_body.append(instruction)

        suffix: List[Copy] = []
        if block.exit_pcopy is not None:
            suffix = lower_pcopy(block.exit_pcopy, label)
            block.exit_pcopy = None

        block.body = prefix + new_body + suffix

        if block.terminator is not None:
            block.terminator.replace_uses(mapping)  # type: ignore[arg-type]
            block.terminator.replace_defs(mapping)

    function.invalidate_cfg()
