"""Copy insertion around φ-functions (Sreedhar et al. Method I, paper §II-A).

For every φ-function ``a0 = φ(a1, ..., an)`` placed at the entry of block B0
with predecessors B1 ... Bn:

* fresh variables ``a'0, ..., a'n`` are created;
* ``a'i = ai`` is added to the *exit parallel copy* of Bi (i.e. just before
  Bi's terminator — the Figure 1 placement fix);
* ``a0 = a'0`` is added to the *entry parallel copy* of B0 (just after the
  φ-functions);
* the φ becomes ``a'0 = φ(a'1, ..., a'n)``.

By Lemma 1 of the paper the resulting program is in CSSA and the primed
variables of one φ never interfere, so they are pre-coalesced into a single
congruence class (the "φ-node").

The one situation where this is *impossible* is when a φ-argument is defined
by the predecessor's own terminator (branch-with-decrement, Figure 2): no copy
inserted before the terminator can split that live range.  Depending on
``on_branch_def`` the translator either splits the critical edge (inserting a
fresh block to host the copy, Figure 2(c)) or raises :class:`IsolationError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Literal, Optional, Tuple

from repro.ir.editlog import EditLog
from repro.ir.function import Function
from repro.ir.instructions import Constant, Operand, Phi, Variable


class IsolationError(Exception):
    """φ-isolation by copy insertion is impossible (branch defines the argument)."""

    def __init__(self, message: str, phi: Phi, pred_label: str) -> None:
        super().__init__(message)
        self.phi = phi
        self.pred_label = pred_label


@dataclass
class InsertedCopy:
    """One φ-related copy introduced by Method I."""

    dst: Variable
    src: Operand
    block: str            #: label of the block whose parallel copy holds it
    kind: str             #: "phi_arg" or "phi_result"
    phi: Phi               #: the φ-function it belongs to
    phi_block: str = ""    #: label of the block holding that φ-function


@dataclass
class PhiCopyInsertion:
    """Result of :func:`insert_phi_copies`."""

    copies: List[InsertedCopy] = field(default_factory=list)
    #: For each φ, the primed variables forming its pre-coalesced φ-node.
    phi_nodes: List[List[Variable]] = field(default_factory=list)
    #: Map from primed variable to the operand it copies (for value tracking).
    copy_sources: Dict[Variable, Operand] = field(default_factory=dict)
    #: Labels of blocks created by edge splitting (Figure 2 fallback).
    split_blocks: List[str] = field(default_factory=list)
    #: The split edges as ``(source, target, new_label)`` (same order as
    #: ``split_blocks``; kept separately for backward compatibility).
    split_edges: List[Tuple[str, str, str]] = field(default_factory=list)

    @property
    def inserted_copy_count(self) -> int:
        return len(self.copies)

    def edit_log(self) -> EditLog:
        """The insertion, described as an :class:`~repro.ir.editlog.EditLog`.

        Every block that received a parallel-copy component is touched, every
        φ whose operands were primed makes its own block touched (its φ-defs
        changed), and edge splits contribute their three blocks.  The
        affected variables are the primed copies' two sides — which cover the
        original φ results and arguments.
        """
        log = EditLog()
        for source, target, new_label in self.split_edges:
            log.block_split(source, target, new_label)
        for copy in self.copies:
            log.copy_inserted(copy.block, copy.dst, copy.src)
            if copy.kind == "phi_arg" and copy.phi_block:
                # The φ's own block changed too: its argument was re-pointed
                # at the primed variable (copy.dst), so the original argument
                # *lost* its φ-edge use (its liveness may shrink at the
                # predecessor's exit) while the primed one gained it.
                involved = [copy.dst]
                removed = []
                if isinstance(copy.src, Variable):
                    involved.append(copy.src)
                    removed.append(copy.src)
                log.block_rewritten(copy.phi_block, involved, removed=removed)
        return log


def _argument_defined_by_terminator(function: Function, pred_label: str, arg: Operand) -> bool:
    if not isinstance(arg, Variable):
        return False
    terminator = function.blocks[pred_label].terminator
    return terminator is not None and arg in terminator.defs()


def insert_phi_copies(
    function: Function,
    on_branch_def: Literal["split", "error"] = "split",
) -> PhiCopyInsertion:
    """Isolate every φ-function with parallel copies (Method I); in place."""
    result = PhiCopyInsertion()

    for block in list(function):
        if not block.phis:
            continue
        for phi in block.phis:
            primed_members: List[Variable] = []

            # Result copy: a0 = a'0, placed in the entry parallel copy of B0.
            original_dst = phi.dst
            primed_dst = function.new_variable(original_dst.name)
            entry_pcopy = block.get_entry_pcopy(create=True)
            entry_pcopy.add(original_dst, primed_dst)
            phi.dst = primed_dst
            primed_members.append(primed_dst)
            result.copies.append(
                InsertedCopy(dst=original_dst, src=primed_dst, block=block.label,
                             kind="phi_result", phi=phi, phi_block=block.label)
            )
            result.copy_sources[primed_dst] = primed_dst  # φ-def: its own value

            # Argument copies: a'i = ai, placed in the exit parallel copy of Bi.
            for pred_label in list(phi.args):
                arg = phi.args[pred_label]
                insertion_label = pred_label
                if _argument_defined_by_terminator(function, pred_label, arg):
                    if on_branch_def == "error":
                        raise IsolationError(
                            f"phi argument {arg} in block {block.label} is defined by the "
                            f"terminator of {pred_label}: copy insertion cannot split it",
                            phi, pred_label,
                        )
                    new_block = function.split_edge(pred_label, block.label)
                    result.split_blocks.append(new_block.label)
                    result.split_edges.append((pred_label, block.label, new_block.label))
                    insertion_label = new_block.label
                    # ``split_edge`` re-keyed the φ argument to the new block.
                    pred_label = new_block.label

                hint = arg.name if isinstance(arg, Variable) else original_dst.name
                primed_arg = function.new_variable(hint)
                exit_pcopy = function.blocks[insertion_label].get_exit_pcopy(create=True)
                exit_pcopy.add(primed_arg, arg)
                phi.set_arg(pred_label, primed_arg)
                primed_members.append(primed_arg)
                result.copies.append(
                    InsertedCopy(dst=primed_arg, src=arg, block=insertion_label,
                                 kind="phi_arg", phi=phi, phi_block=block.label)
                )
                result.copy_sources[primed_arg] = arg

            result.phi_nodes.append(primed_members)

    function.invalidate_cfg()
    return result
