"""Out-of-SSA translation engines.

* :mod:`repro.outofssa.naive` — the (incorrect) naive Cytron replacement,
  kept as a negative control for the lost-copy / swap problems;
* :mod:`repro.outofssa.method_i` — Sreedhar et al. Method I copy insertion
  with parallel copies (the paper's correctness phase, Lemma 1);
* :mod:`repro.outofssa.parallel_copy` — optimal sequentialization of parallel
  copies (paper Algorithm 1);
* :mod:`repro.outofssa.pinning` — register renaming constraints via pinned
  variables (§III-D);
* :mod:`repro.outofssa.sreedhar` — the Sreedhar Method III style baseline;
* :mod:`repro.outofssa.boissinot` — the paper's translation (Us I / Us III
  with the InterCheck / LiveCheck / Linear options);
* :mod:`repro.outofssa.driver` — the public `destruct_ssa` entry point and
  the named engine configurations of Figures 6 and 7.
"""

from repro.outofssa.driver import (
    DEFAULT_ENGINE,
    ENGINE_CONFIGURATIONS,
    LIVENESS_BACKENDS,
    EngineConfig,
    EngineConfigBuilder,
    OutOfSSAResult,
    OutOfSSAStats,
    destruct_ssa,
    engine_by_name,
)
from repro.outofssa.method_i import IsolationError, insert_phi_copies
from repro.outofssa.naive import naive_destruction
from repro.outofssa.parallel_copy import sequentialize_parallel_copy
from repro.outofssa.pinning import apply_calling_convention

__all__ = [
    "DEFAULT_ENGINE",
    "EngineConfig",
    "EngineConfigBuilder",
    "LIVENESS_BACKENDS",
    "OutOfSSAResult",
    "OutOfSSAStats",
    "destruct_ssa",
    "engine_by_name",
    "ENGINE_CONFIGURATIONS",
    "IsolationError",
    "insert_phi_copies",
    "naive_destruction",
    "sequentialize_parallel_copy",
    "apply_calling_convention",
]
