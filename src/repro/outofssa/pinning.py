"""Register renaming constraints via pinned variables (paper §III-D).

Calling conventions and dedicated registers pre-allocate some variables to
architectural registers.  The paper handles them by:

* splitting the live range of every pinned variable with parallel copies
  placed immediately before/after the constraining instruction, so the pinned
  variable spans only that instruction;
* pre-coalescing all variables pinned to one register into a single
  congruence class labelled by that register;
* declaring two classes labelled with *different* registers as always
  interfering.

``apply_calling_convention`` implements the live-range splitting for ``Call``
instructions on a toy ABI (arguments in ``R0..R3``, result in ``R0``); the
class labelling lives in :mod:`repro.interference.congruence` and the driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.function import Function
from repro.ir.instructions import Call, Constant, Instruction, ParallelCopy, Variable


@dataclass
class PinnedCopies:
    """Copies inserted to isolate pinned variables around calls."""

    #: (dst, src, block label) triples, candidates for coalescing.
    copies: List[Tuple[Variable, object, str]] = field(default_factory=list)
    #: Variables pinned to each register, in insertion order.
    pinned_groups: Dict[str, List[Variable]] = field(default_factory=dict)


def apply_calling_convention(
    function: Function,
    argument_registers: Sequence[str] = ("R0", "R1", "R2", "R3"),
    return_register: str = "R0",
) -> PinnedCopies:
    """Split live ranges around every call according to the toy ABI, in place.

    Each call argument is first copied (by a parallel copy placed right before
    the call) into a fresh variable pinned to the corresponding argument
    register; the call result is produced in a fresh variable pinned to the
    return register and copied back into the original destination right after
    the call.  The copies are returned so the coalescer can try to remove
    them.
    """
    result = PinnedCopies()

    for block in function:
        new_body: List[Instruction] = []
        for instruction in block.body:
            if not isinstance(instruction, Call):
                new_body.append(instruction)
                continue

            before = ParallelCopy()
            for position, arg in enumerate(list(instruction.args)):
                if position >= len(argument_registers):
                    break  # extra arguments are passed unconstrained (stack)
                register = argument_registers[position]
                pinned_var = function.new_variable(f"arg{position}")
                function.pin(pinned_var, register)
                result.pinned_groups.setdefault(register, []).append(pinned_var)
                before.add(pinned_var, arg)
                instruction.args[position] = pinned_var
                result.copies.append((pinned_var, arg, block.label))
            if not before.is_empty():
                new_body.append(before)

            new_body.append(instruction)

            if instruction.dst is not None:
                original_dst = instruction.dst
                pinned_result = function.new_variable("retval")
                function.pin(pinned_result, return_register)
                result.pinned_groups.setdefault(return_register, []).append(pinned_result)
                instruction.dst = pinned_result
                after = ParallelCopy()
                after.add(original_dst, pinned_result)
                new_body.append(after)
                result.copies.append((original_dst, pinned_result, block.label))
        block.body = new_body

    function.invalidate_cfg()
    return result


def pinned_register_groups(function: Function) -> Dict[str, List[Variable]]:
    """Group the function's pinned variables by architectural register."""
    groups: Dict[str, List[Variable]] = {}
    for var, register in function.pinned.items():
        groups.setdefault(register, []).append(var)
    return groups
