"""Engine configurations for the out-of-SSA translation.

An :class:`EngineConfig` names one point of the paper's design space (which
liveness oracle, whether an interference graph is built, whether the linear
congruence-class check is used, which coalescing variant).  The seven named
configurations of Figures 6 and 7 live in :data:`ENGINE_CONFIGURATIONS`;
custom configurations are assembled with the fluent
:class:`EngineConfigBuilder` (``EngineConfig.builder()``) instead of hand
mutation via :func:`dataclasses.replace`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Union

from repro.coalescing.variants import variant_by_name

#: The pluggable liveness backends (CLI ``--liveness``, ``repro list``).
LIVENESS_BACKENDS: Dict[str, str] = {
    "sets": "ordered-set data-flow fixpoint (reference oracle)",
    "bitsets": "bit-set rows over a shared numbering, worklist solver",
    "check": "liveness checking, no global live-in/live-out sets",
    "incremental": "bit-set rows patched from pass edit logs (delta re-solve)",
}

#: The pluggable interference backends (CLI ``--interference``, ``repro list``).
INTERFERENCE_BACKENDS: Dict[str, str] = {
    "matrix": "eager half bit-matrix graph over the shared numbering",
    "query": "no graph: dominance/value pairwise queries (InterCheck)",
    "incremental": "bit-matrix patched from pass edit logs (dirty re-scan)",
}

#: Policies for a φ-argument defined by the predecessor's terminator.
ON_BRANCH_DEF_POLICIES = ("split", "error")

#: The pluggable IR cores driving the hot sweeps (CLI ``--core``,
#: ``repro list``).  Representation-only: both cores translate every
#: function bit-identically (IR text and stats counters alike).
CORE_BACKENDS: Dict[str, str] = {
    "flat": "contiguous int-array arena (CSR tables) for the hot sweeps",
    "objects": "object-graph walks (reference implementation, differential baseline)",
}

#: Verification levels (mirrors ``repro.verify.stages.VERIFY_LEVELS``; spelled
#: out here so this module never imports the verify package).
VERIFY_LEVELS = ("off", "fast", "full")

#: Version tag mixed into :meth:`EngineConfig.fingerprint`; bump when a knob
#: is added or its semantics change so old fingerprints can never alias.
_FINGERPRINT_VERSION = "ec1"


# --------------------------------------------------------------------------- config
@dataclass(frozen=True)
class EngineConfig:
    """One out-of-SSA engine configuration (a bar of Figures 6/7)."""

    name: str
    label: str
    #: Figure 5 coalescing variant driving interference notion / ordering.
    coalescing: str = "value"
    #: Liveness backend: "sets" (ordered-set data-flow, the reference
    #: implementation), "bitsets" (bit-set rows + worklist, the encoding
    #: Figure 7 evaluates) or "check" (liveness checking, no global sets).
    liveness: str = "bitsets"
    #: Interference backend: "matrix" (eager bit-matrix graph), "query"
    #: (pairwise dominance/value queries, "InterCheck") or "incremental"
    #: (the matrix kept valid across pass edit logs).  Empty string derives
    #: it from the legacy ``use_interference_graph`` flag.
    interference: str = ""
    #: Legacy flag: build an explicit interference graph (bit-matrix) or
    #: answer pairwise queries directly ("InterCheck").  Normalised against
    #: :attr:`interference` in ``__post_init__``: when ``interference`` is
    #: given it wins and this flag is derived from it.
    use_interference_graph: bool = True
    #: Use the linear congruence-class interference check instead of the
    #: quadratic all-pairs one.
    linear_class_check: bool = False
    #: What to do when a φ-argument is defined by the predecessor's terminator.
    on_branch_def: str = "split"
    #: Verification level: "off" (unchecked), "fast" (structural input/output
    #: checks) or "full" (every stage checker, including the interpreter
    #: differential).  Diagnostic-only — a checked run translates
    #: bit-identically to an unchecked one, so this knob is excluded from
    #: :meth:`fingerprint`.
    verify_level: str = "off"
    #: IR core driving the hot sweeps: "flat" (contiguous int-array arena,
    #: the default) or "objects" (object-graph walks, kept as the
    #: differential-testing baseline).  Representation-only — the cores
    #: translate bit-identically — so, like ``verify_level``, excluded from
    #: :meth:`fingerprint`; it *does* participate in dataclass equality, so
    #: an external :class:`~repro.pipeline.analysis.AnalysisCache` is never
    #: shared across cores.
    core: str = "flat"

    def __post_init__(self) -> None:
        if self.verify_level not in VERIFY_LEVELS:
            known = ", ".join(VERIFY_LEVELS)
            raise ValueError(
                f"unknown verify level {self.verify_level!r}; known levels: {known}"
            )
        if self.core not in CORE_BACKENDS:
            known = ", ".join(sorted(CORE_BACKENDS))
            raise ValueError(
                f"unknown IR core {self.core!r}; known cores: {known}"
            )
        if not self.interference:
            object.__setattr__(
                self, "interference", "matrix" if self.use_interference_graph else "query"
            )
        elif self.interference not in INTERFERENCE_BACKENDS:
            known = ", ".join(sorted(INTERFERENCE_BACKENDS))
            raise ValueError(
                f"unknown interference backend {self.interference!r}; "
                f"known backends: {known}"
            )
        object.__setattr__(self, "use_interference_graph", self.interference != "query")

    def describe(self) -> str:
        parts = [variant_by_name(self.coalescing).label]
        liveness_labels = {
            "sets": "ordered liveness sets",
            "bitsets": "bit-set liveness",
            "check": "LiveCheck",
            "incremental": "incremental bit-set liveness",
        }
        parts.append(liveness_labels.get(self.liveness, self.liveness))
        interference_labels = {
            "matrix": "interference graph",
            "query": "InterCheck",
            "incremental": "incremental interference graph",
        }
        parts.append(interference_labels.get(self.interference, self.interference))
        parts.append("linear class check" if self.linear_class_check else "quadratic class check")
        return ", ".join(parts)

    def fingerprint(self) -> str:
        """Stable hex fingerprint of the configuration's *semantic* knobs.

        Two configurations with the same fingerprint translate every function
        bit-identically, so the fingerprint (together with the IR digest) is
        the cache key of the translation service: ``name`` and ``label`` are
        cosmetic and excluded — ``EngineConfig.builder("us_i").name("x")``
        still hits a cache warmed under ``us_i``.  The leading version tag is
        bumped whenever a knob is added or its meaning changes, so stale
        fingerprints from older builds can never alias a current one.

        ``verify_level`` is likewise excluded: verification only *observes*
        the translation, so checked and unchecked runs of the same engine
        produce (and may share) identical cached translations.  ``core`` is
        excluded for the same reason — the flat and object cores are
        bit-identical representations of the same translation (a property
        test enforces it), so either may serve a cache warmed by the other.
        """
        payload = "|".join(
            (
                _FINGERPRINT_VERSION,
                self.coalescing,
                self.liveness,
                self.interference,
                "linear" if self.linear_class_check else "quadratic",
                self.on_branch_def,
            )
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    @staticmethod
    def builder(base: Union["EngineConfig", str, None] = None) -> "EngineConfigBuilder":
        """Start a fluent builder, optionally from a named or given base config."""
        return EngineConfigBuilder(base)


#: The seven engine configurations of the paper's Figure 6 / Figure 7.
ENGINE_CONFIGURATIONS: List[EngineConfig] = [
    EngineConfig(
        name="sreedhar_iii", label="Sreedhar III", coalescing="sreedhar_iii",
        liveness="bitsets", interference="matrix", linear_class_check=False,
    ),
    EngineConfig(
        name="us_iii", label="Us III", coalescing="value_is",
        liveness="bitsets", interference="matrix", linear_class_check=False,
    ),
    EngineConfig(
        name="us_iii_intercheck", label="Us III + InterCheck", coalescing="value_is",
        liveness="bitsets", interference="query", linear_class_check=False,
    ),
    EngineConfig(
        name="us_iii_intercheck_livecheck", label="Us III + InterCheck + LiveCheck",
        coalescing="value_is", liveness="check", interference="query",
        linear_class_check=False,
    ),
    EngineConfig(
        name="us_iii_linear_intercheck_livecheck",
        label="Us III + Linear + InterCheck + LiveCheck", coalescing="value_is",
        liveness="check", interference="query", linear_class_check=True,
    ),
    EngineConfig(
        name="us_i", label="Us I", coalescing="value",
        liveness="bitsets", interference="matrix", linear_class_check=False,
    ),
    EngineConfig(
        name="us_i_linear_intercheck_livecheck",
        label="Us I + Linear + InterCheck + LiveCheck", coalescing="value",
        liveness="check", interference="query", linear_class_check=True,
    ),
]

_CONFIG_BY_NAME = {config.name: config for config in ENGINE_CONFIGURATIONS}


def engine_by_name(name: str) -> EngineConfig:
    """Look up a Figure 6/7 engine configuration by name.

    Raises :class:`KeyError` with the list of known engines — the uniform
    lookup-failure contract shared with :func:`~repro.coalescing.variants.variant_by_name`
    and :func:`~repro.bench.suite.spec_by_name`.
    """
    try:
        return _CONFIG_BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_CONFIG_BY_NAME))
        raise KeyError(f"unknown engine {name!r}; known engines: {known}") from None


DEFAULT_ENGINE = _CONFIG_BY_NAME["us_i_linear_intercheck_livecheck"]


# --------------------------------------------------------------------------- builder
class EngineConfigBuilder:
    """Fluent construction of :class:`EngineConfig` values.

    Every setter validates eagerly (unknown coalescing variants raise
    :class:`KeyError`, unknown liveness backends and branch-def policies raise
    :class:`ValueError`) and returns the builder, so configurations read as one
    chain::

        config = (EngineConfig.builder("us_i")
                  .liveness("sets")
                  .build())

    Unless :meth:`name` / :meth:`label` are set explicitly, ``build`` derives
    them from the base configuration plus one suffix per overridden knob, so
    derived configs stay distinguishable in reports.
    """

    def __init__(self, base: Union[EngineConfig, str, None] = None) -> None:
        if isinstance(base, str):
            base = engine_by_name(base)
        self._base = base if base is not None else DEFAULT_ENGINE
        self._overrides: Dict[str, object] = {}
        self._name: Optional[str] = None
        self._label: Optional[str] = None

    # -- setters -------------------------------------------------------------
    def name(self, name: str) -> "EngineConfigBuilder":
        self._name = name
        return self

    def label(self, label: str) -> "EngineConfigBuilder":
        self._label = label
        return self

    def coalescing(self, variant_name: str) -> "EngineConfigBuilder":
        variant_by_name(variant_name)  # raises KeyError for unknown variants
        self._overrides["coalescing"] = variant_name
        return self

    def liveness(self, kind: str) -> "EngineConfigBuilder":
        if kind not in LIVENESS_BACKENDS:
            known = ", ".join(sorted(LIVENESS_BACKENDS))
            raise ValueError(f"unknown liveness backend {kind!r}; known backends: {known}")
        self._overrides["liveness"] = kind
        return self

    def interference(self, kind: str) -> "EngineConfigBuilder":
        """Select the interference backend (``matrix`` / ``query`` / ``incremental``)."""
        if kind not in INTERFERENCE_BACKENDS:
            known = ", ".join(sorted(INTERFERENCE_BACKENDS))
            raise ValueError(
                f"unknown interference backend {kind!r}; known backends: {known}"
            )
        self._overrides["interference"] = kind
        return self

    def interference_graph(self, enabled: bool = True) -> "EngineConfigBuilder":
        """Legacy spelling: ``True`` selects ``matrix``, ``False`` ``query``."""
        return self.interference("matrix" if enabled else "query")

    def linear_class_check(self, enabled: bool = True) -> "EngineConfigBuilder":
        self._overrides["linear_class_check"] = bool(enabled)
        return self

    def on_branch_def(self, policy: str) -> "EngineConfigBuilder":
        if policy not in ON_BRANCH_DEF_POLICIES:
            known = ", ".join(ON_BRANCH_DEF_POLICIES)
            raise ValueError(f"unknown on_branch_def policy {policy!r}; known policies: {known}")
        self._overrides["on_branch_def"] = policy
        return self

    def verify(self, level: str) -> "EngineConfigBuilder":
        """Select the verification level (``off`` / ``fast`` / ``full``)."""
        if level not in VERIFY_LEVELS:
            known = ", ".join(VERIFY_LEVELS)
            raise ValueError(f"unknown verify level {level!r}; known levels: {known}")
        self._overrides["verify_level"] = level
        return self

    def core(self, kind: str) -> "EngineConfigBuilder":
        """Select the IR core (``flat`` / ``objects``)."""
        if kind not in CORE_BACKENDS:
            known = ", ".join(sorted(CORE_BACKENDS))
            raise ValueError(f"unknown IR core {kind!r}; known cores: {known}")
        self._overrides["core"] = kind
        return self

    # -- terminal ------------------------------------------------------------
    def _derived_suffixes(self) -> List[str]:
        """One short tag per knob that differs from the base configuration."""
        parts: List[str] = []
        base = self._base
        overrides = self._overrides
        if overrides.get("coalescing", base.coalescing) != base.coalescing:
            parts.append(str(overrides["coalescing"]))
        if overrides.get("liveness", base.liveness) != base.liveness:
            parts.append(str(overrides["liveness"]))
        if overrides.get("interference", base.interference) != base.interference:
            suffix = {"matrix": "graph", "query": "intercheck"}
            parts.append(suffix.get(str(overrides["interference"]), str(overrides["interference"])))
        if overrides.get("linear_class_check", base.linear_class_check) != base.linear_class_check:
            parts.append("linear" if overrides["linear_class_check"] else "quadratic")
        if overrides.get("on_branch_def", base.on_branch_def) != base.on_branch_def:
            parts.append(str(overrides["on_branch_def"]))
        if overrides.get("verify_level", base.verify_level) != base.verify_level:
            parts.append(f"verify_{overrides['verify_level']}")
        if overrides.get("core", base.core) != base.core:
            parts.append(f"{overrides['core']}_core")
        return parts

    def build(self) -> EngineConfig:
        parts = self._derived_suffixes()
        name = self._name
        label = self._label
        if name is None:
            name = self._base.name + "".join(f"_{part}" for part in parts)
        if label is None:
            label = self._base.label + (f" [{', '.join(parts)}]" if parts else "")
        return replace(self._base, name=name, label=label, **self._overrides)
