"""The naive Cytron-style φ replacement — intentionally kept incorrect.

"A k-input φ-function at entrance of a node X can be replaced by k ordinary
assignments, one at the end of each control flow predecessor of X" (Cytron et
al.).  Briggs et al. showed this miscompiles programs with critical edges
(lost-copy problem) or φ-cycles (swap problem).  The engine is kept in-tree as
a *negative control*: the test-suite asserts that it breaks exactly those
programs while every other engine translates them correctly.
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.instructions import Copy


def naive_destruction(function: Function) -> Function:
    """Replace every φ by sequential copies at the end of the predecessors.

    The transformation is done in place and the function is returned.  The
    output is generally *not* semantically equivalent to the input (that is
    the point); use :func:`repro.outofssa.driver.destruct_ssa` for a correct
    translation.
    """
    for block in list(function):
        if not block.phis:
            continue
        for phi in block.phis:
            for pred_label, arg in phi.args.items():
                pred_block = function.blocks[pred_label]
                pred_block.append(Copy(phi.dst, arg))
        block.phis = []
    function.invalidate_cfg()
    return function
