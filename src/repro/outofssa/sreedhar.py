"""The Sreedhar et al. Method III style baseline.

This is the configuration the paper measures everything against: copies are
decided φ-function by φ-function (the virtualized processing order), the
interference notion is plain live-range intersection, Sreedhar's SSA-based
coalescing rule (the copy's own pair is exempted from the class interference
test) handles the remaining copies, and the implementation carries both an
explicit interference bit-matrix and data-flow liveness sets — the two
structures responsible for most of the memory footprint in Figure 7.

Reproduction note: as described in DESIGN.md, the φ-copies are inserted
eagerly and coalesced rather than virtually deferred; the resulting copy
placements, interference decisions and data-structure footprints match the
Method III behaviour, which is what Figures 5-7 compare.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.function import Function
from repro.outofssa.driver import OutOfSSAResult, destruct_ssa, engine_by_name
from repro.utils.instrument import AllocationTracker


def translate_sreedhar_iii(
    function: Function,
    tracker: Optional[AllocationTracker] = None,
) -> OutOfSSAResult:
    """Translate out of SSA with the Sreedhar Method III baseline engine."""
    return destruct_ssa(function, engine_by_name("sreedhar_iii"), tracker=tracker)
