"""Result and statistics objects of one out-of-SSA translation run.

Shared by the legacy :func:`~repro.outofssa.driver.destruct_ssa` wrapper and
the pass-based :class:`~repro.pipeline.Pipeline`, which both return the same
:class:`OutOfSSAResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.ir.function import Function
from repro.ir.instructions import Variable
from repro.outofssa.config import EngineConfig
from repro.utils.instrument import AllocationTracker


@dataclass
class OutOfSSAStats:
    """Counters describing one translation run."""

    inserted_phi_copies: int = 0
    affinities: int = 0
    coalesced: int = 0
    shared: int = 0
    remaining_copies: int = 0          #: variable-to-variable copies in the output
    constant_moves: int = 0            #: copies materializing constants
    sequentialization_temps: int = 0   #: extra cycle-breaking temporaries
    dynamic_copy_cost: float = 0.0     #: frequency-weighted remaining copies
    pair_queries: int = 0
    intersection_queries: int = 0
    #: Class-vs-class checks answered from merged matrix rows (no pairwise
    #: queries at all; matrix-backed engines only).
    class_row_checks: int = 0
    split_blocks: int = 0
    elapsed_seconds: float = 0.0
    #: Interference backend the run used ("matrix" / "query" / "incremental").
    interference_backend: str = ""
    #: Worker threads the parallel coalescing prefilter ran on (0 = the
    #: ordinary serial sweep; service shards opt in).
    coalesce_workers: int = 0
    #: Merge candidates the parallel prefilter rejected from the initial
    #: class-row masks (each saved the serial sweep one class-vs-class check).
    prefiltered_merges: int = 0
    #: Measured bytes of the interference bit-matrix (0 for the query backend).
    matrix_bytes: int = 0
    #: IR core the run used ("flat" arena sweeps or "objects" walks).
    #: Representation-only — excluded from the cross-core identity checks.
    core: str = ""
    #: Wall-clock milliseconds of the one-time flat-arena lowering
    #: (:class:`~repro.ir.flat.FlatFunction`; 0 when the objects core ran or
    #: no flat consumer was built).
    lowering_ms: float = 0.0
    #: Measured bytes of the flat arena tables — reported next to
    #: ``matrix_bytes`` in the Figure 7 lane (0 without a flat lowering).
    flat_bytes: int = 0
    # Inputs to the Figure 7 "evaluated" memory formulas.
    num_blocks: int = 0                #: blocks after copy insertion / splitting
    candidate_variables: int = 0       #: φ-related + copy-related variables
    liveness_set_entries: int = 0      #: total entries of live-in/out ordered sets
    # Verification (zero unless ``EngineConfig.verify_level`` enabled it).
    verify_ms: float = 0.0             #: wall-clock the stage checkers took
    verify_diagnostics: int = 0        #: total findings of the checked run
    verify_errors: int = 0             #: error-severity findings
    verify_warnings: int = 0           #: warning-severity findings


@dataclass
class OutOfSSAResult:
    """Everything produced by one out-of-SSA translation."""

    function: Function
    config: EngineConfig
    stats: OutOfSSAStats
    tracker: AllocationTracker
    rename_map: Dict[Variable, Variable] = field(default_factory=dict)
    #: Wall-clock seconds per pipeline pass (empty for ad-hoc constructions).
    pass_seconds: Dict[str, float] = field(default_factory=dict)
    #: The :class:`~repro.verify.diagnostics.VerifyReport` of a checked run
    #: (``None`` when ``config.verify_level`` is ``"off"``).
    verify_report: Optional[object] = None

    @property
    def memory_total_bytes(self) -> int:
        return self.tracker.total()

    @property
    def memory_peak_bytes(self) -> int:
        return self.tracker.peak()
