"""Sequentialization of parallel copies — the paper's Algorithm 1.

A parallel copy ``(b1, ..., bk) = (a1, ..., ak)`` reads all sources before
writing any destination.  To emit ordinary sequential copies we view the copy
as a directed graph with an edge ``a -> b`` per component: every vertex has at
most one incoming edge, so each connected component is a (possible) cycle with
trees hanging off it.  Tree edges are emitted leaves-first; a cycle needs one
extra copy through a fresh temporary **only** when none of its vertices was
also copied somewhere else (no duplication available).  The algorithm below is
the paper's worklist formulation (``ready`` / ``to_do`` / ``loc`` / ``pred``)
and emits the minimum possible number of copies.

Sources may be constants: a constant behaves like a read-only vertex that is
always available and never needs saving.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.ir.instructions import Constant, Copy, Operand, ParallelCopy, Variable


def sequentialize_parallel_copy(
    pairs: Sequence[Tuple[Variable, Operand]],
    fresh_variable: Callable[[], Variable],
) -> List[Copy]:
    """Emit sequential copies implementing the parallel copy ``pairs``.

    ``fresh_variable`` is called at most once per cyclic permutation to obtain
    the temporary used to break the cycle.  Self-copies ``a = a`` are dropped.
    Raises ``ValueError`` if two components define the same destination.
    """
    copies: List[Copy] = []
    worklist = [(dst, src) for dst, src in pairs if dst != src]
    seen_dst = set()
    for dst, _ in worklist:
        if dst in seen_dst:
            raise ValueError(f"parallel copy defines {dst} twice")
        seen_dst.add(dst)

    if not worklist:
        return copies

    # ``loc[s]``: where the initial value of source ``s`` currently lives.
    # ``pred[d]``: the source that must end up in destination ``d``.
    loc: Dict[Operand, Optional[Operand]] = {}
    pred: Dict[Variable, Operand] = {}
    ready: List[Variable] = []
    to_do: List[Variable] = []

    for dst, src in worklist:
        loc[dst] = None
        if isinstance(src, Variable):
            loc[src] = None

    for dst, src in worklist:
        if isinstance(src, Constant):
            loc[src] = src  # constants are always available, never overwritten
        else:
            loc[src] = src
        pred[dst] = src
        to_do.append(dst)

    for dst, _ in worklist:
        if loc[dst] is None:
            # ``dst``'s initial value is not needed by any other copy: it can
            # be overwritten immediately (tree leaf).
            ready.append(dst)

    def emit(src: Operand, dst: Variable) -> None:
        copies.append(Copy(dst, src))

    while to_do:
        while ready:
            dst = ready.pop()
            src = pred[dst]
            current_loc = loc[src]
            assert current_loc is not None
            emit(current_loc, dst)
            loc[src] = dst
            # If the source was still sitting in its original variable and
            # that variable is itself a destination, it is now free.
            if isinstance(src, Variable) and current_loc == src and src in pred:
                ready.append(src)

        dst = to_do.pop()
        if dst == loc.get(dst):
            # ``dst`` still holds a value someone needs and nobody saved it
            # elsewhere: we are on a cycle with no duplication.  Break it by
            # saving ``dst`` into a fresh temporary.
            temp = fresh_variable()
            emit(dst, temp)
            loc[dst] = temp
            ready.append(dst)

    return copies


def sequentialize_instruction(
    pcopy: ParallelCopy,
    fresh_variable: Callable[[], Variable],
) -> List[Copy]:
    """Sequentialize a :class:`ParallelCopy` instruction."""
    return sequentialize_parallel_copy(pcopy.pairs, fresh_variable)


def emitted_copy_count(
    pairs: Sequence[Tuple[Variable, Operand]],
    fresh_variable: Callable[[], Variable],
) -> int:
    """Number of sequential copies needed for ``pairs`` (self-copies excluded)."""
    return len(sequentialize_parallel_copy(pairs, fresh_variable))
