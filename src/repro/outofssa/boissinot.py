"""Convenience entry points for the paper's own translation ("Us I" / "Us III").

These are thin wrappers around :func:`repro.outofssa.driver.destruct_ssa` with
the corresponding engine configurations; they exist so that examples and
downstream users can say "give me the paper's recommended translator" without
knowing the configuration matrix of Figures 6 and 7.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.function import Function
from repro.outofssa.driver import OutOfSSAResult, destruct_ssa, engine_by_name
from repro.utils.instrument import AllocationTracker


def translate_us_i(
    function: Function,
    fast: bool = True,
    tracker: Optional[AllocationTracker] = None,
) -> OutOfSSAResult:
    """The paper's recommended engine: all copies inserted first, then coalesced.

    ``fast=True`` selects ``Us I + Linear + InterCheck + LiveCheck`` (no
    interference graph, no liveness sets, linear class checks) — the
    configuration the paper reports as ~2× faster and ~10× smaller than
    Sreedhar's Method III.  ``fast=False`` selects the plain ``Us I`` baseline
    (bit-matrix interference graph + data-flow liveness sets).
    """
    name = "us_i_linear_intercheck_livecheck" if fast else "us_i"
    return destruct_ssa(function, engine_by_name(name), tracker=tracker)


def translate_us_iii(
    function: Function,
    fast: bool = True,
    tracker: Optional[AllocationTracker] = None,
) -> OutOfSSAResult:
    """The virtualized variant (φ-functions processed one at a time)."""
    name = "us_iii_linear_intercheck_livecheck" if fast else "us_iii"
    return destruct_ssa(function, engine_by_name(name), tracker=tracker)
