"""Sharded concurrent scheduling of translation requests.

Two layers of parallelism, matching the issue's shard model:

* **Across shards** — :class:`ShardedScheduler` partitions a request batch
  over N shards by *digest affinity* (``shard_of``): the same program always
  lands on the same shard, so each shard's content-addressed cache stays
  coherent without any cross-shard locking.  Warm traffic (hits) is served
  from the parent's shard caches directly; cold remainders run either on a
  thread per shard (``mode="thread"`` — hits dominate warm traffic, the GIL
  is irrelevant to dict lookups) or a process per shard (``mode="process"``
  — cold translation is CPU-bound Python, so cold-heavy batches fan out to
  real cores; results are adopted back into the parent caches and are warm
  from then on).

* **Within a shard** — :func:`parallel_coalesce` splits the *independent
  congruence-class merge candidates* of one translation over the matrix
  class rows (``slot_mask`` / ``adj_mask`` of
  :mod:`repro.interference.congruence`): every candidate pair's
  class-vs-class verdict is one AND of precomputed masks, evaluated across a
  thread pool, and only the surviving candidates enter the serial
  confirmation sweep.

Why the prefilter is sound (and bit-identical to the serial sweep): under
merges, a class's ``slot_mask``/``adj_mask`` only ever *grow* (coalescing ORs
the parents' rows) and an assigned register is never shed — so "these two
classes interfere" is **monotone**: a pair that interferes under the initial
masks still interferes whenever the serial sweep would have examined it, and
no chain of merges can ever join the two classes (any joining merge would be
refused by the same grown masks).  Rejecting those pairs up front therefore
changes neither the final classes nor the set of coalesced affinities; the
confirmation sweep processes the survivors in exactly the serial order with
live masks.  ``tests/property/test_service_cache_props.py`` asserts the
bit-identity end to end.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.coalescing.engine import AggressiveCoalescer, CoalescingStats
from repro.interference.base import InterferenceKind
from repro.interference.congruence import CongruenceClasses
from repro.ir.digest import text_digest
from repro.ir.parser import ParseError
from repro.outofssa.config import DEFAULT_ENGINE, EngineConfig
from repro.pipeline.phases import CoalescingPass
from repro.pipeline.pipeline import EngineLike, resolve_engine
from repro.service.translator import ServiceResult, TranslationService

SCHEDULER_MODES = ("serial", "thread", "process")


def shard_of(digest: str, shards: int) -> int:
    """The shard a digest is affine to (stable across runs and processes)."""
    if shards <= 1:
        return 0
    return int(digest[:8], 16) % shards


# --------------------------------------------------------------------------- in-shard parallel coalescing
def parallel_coalesce(
    classes: CongruenceClasses,
    affinities: Sequence,
    *,
    ordering: str = "global",
    workers: int = 4,
    chunk: int = 64,
) -> CoalescingStats:
    """Coalesce with the class-row mask prefilter evaluated in parallel.

    Falls back to the plain serial sweep whenever the prefilter would be
    unsound or useless: no matrix-backed class rows, the linear sweep is
    configured (it answers checks without masks), or fewer than two workers.
    See the module docstring for the monotonicity argument; the result —
    final classes, coalesced affinities, remaining list and its order — is
    identical to ``AggressiveCoalescer.run`` on the same inputs.
    """
    coalescer = AggressiveCoalescer(classes, skip_copy_pair=False, ordering=ordering)
    eligible = (
        workers > 1
        and not classes.use_linear_check
        and getattr(classes.test, "supports_class_rows", False)
        and classes.test.kind in (InterferenceKind.INTERSECT, InterferenceKind.VALUE)
    )
    if not eligible:
        return coalescer.run(affinities)

    ordered = coalescer._ordered(list(affinities))

    # Phase 0 (serial): materialise the initial class-row masks.  The lazy
    # mask computation mutates the class objects, so it must not race; after
    # this loop the parallel phase only reads integers.
    candidates: List[Tuple[int, int, int]] = []  # (index, left adj, right slots)
    prefiltered: set = set()
    register_rejects: set = set()
    for index, affinity in enumerate(ordered):
        left = classes.ensure(affinity.dst)
        right = classes.ensure(affinity.src)
        if left is right:
            continue
        if left.register and right.register and left.register != right.register:
            # Register conflicts are monotone too: a class never sheds its
            # register, so the pair can never merge — reject it up front.
            # (Tracked apart from the mask rejections: the serial sweep
            # answers these before ever touching the class rows, so they
            # must not count as class_row_checks.)
            register_rejects.add(index)
            continue
        left_masks = classes._row_masks(left)
        right_masks = classes._row_masks(right)
        if left_masks is None or right_masks is None:
            continue  # outside the matrix universe: leave to the serial sweep
        candidates.append((index, left_masks[1], right_masks[0]))

    # Phase A (parallel): one AND per candidate pair, chunked over threads.
    # Small candidate sets are checked inline — one chunk's worth of integer
    # ANDs is far cheaper than pool startup, and the GIL serialises the ANDs
    # themselves anyway (the pool pays off through per-chunk batching on
    # large universes, not through concurrent arithmetic).
    def check_chunk(part: Sequence[Tuple[int, int, int]]) -> List[int]:
        return [index for index, adj, slots in part if adj & slots]

    if len(candidates) <= chunk:
        prefiltered.update(check_chunk(candidates))
    else:
        chunks = [candidates[i : i + chunk] for i in range(0, len(candidates), chunk)]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            for rejected in pool.map(check_chunk, chunks):
                prefiltered.update(rejected)

    # Phase B (serial): the ordinary sweep over the survivors, in the exact
    # serial order, with prefiltered pairs recorded as remaining directly.
    stats = CoalescingStats()
    for index, affinity in enumerate(ordered):
        stats.attempted += 1
        if index in register_rejects:
            stats.remaining_affinities.append(affinity)
            continue
        if index in prefiltered:
            classes.class_row_checks += 1  # the check happened — in parallel
            stats.remaining_affinities.append(affinity)
            continue
        if classes.same_class(affinity.dst, affinity.src):
            affinity.coalesced = True
            stats.coalesced += 1
            continue
        if classes.try_coalesce(affinity.dst, affinity.src):
            affinity.coalesced = True
            stats.coalesced += 1
        else:
            stats.remaining_affinities.append(affinity)
    stats.pair_queries = classes.pair_queries
    stats.class_row_checks = classes.class_row_checks
    stats.prefiltered = len(prefiltered) + len(register_rejects)
    return stats


class ParallelCoalescingPass(CoalescingPass):
    """The coalescing phase with the in-shard parallel prefilter.

    Eligibility is decided per run: Sreedhar-style variants (whose
    ``skip_copy_pair`` rule exempts the copy's own pair from the check) and
    linear-class-check engines fall back to the inherited serial sweep, so
    the pass is safe to install unconditionally on a service pipeline.
    """

    name = "coalesce-parallel"

    def __init__(self, workers: int = 4) -> None:
        self.workers = workers

    def _coalesce(self, ctx, classes: CongruenceClasses) -> CoalescingStats:
        if ctx.variant.skip_copy_pair:
            return super()._coalesce(ctx, classes)
        stats = parallel_coalesce(
            classes,
            ctx.affinities,
            ordering=ctx.variant.ordering,
            workers=self.workers,
        )
        ctx.stats.coalesce_workers = self.workers
        ctx.stats.prefiltered_merges = stats.prefiltered
        return stats


# --------------------------------------------------------------------------- process worker
def _translate_partition(
    config: EngineConfig, texts: List[str], parallel_coalescing: int
) -> List[Dict[str, object]]:
    """Translate one shard's cold remainder in a worker process.

    Top-level so it pickles; builds a throwaway service (no warm state — the
    parent adopts the results into its own caches) and returns payload dicts.
    """
    service = TranslationService(
        config,
        capacity=0,
        parallel_coalescing=parallel_coalescing,
        keep_warm_state=False,
    )
    return [service.translate_text(text).to_payload() for text in texts]


# --------------------------------------------------------------------------- shards
@dataclass
class ShardStats:
    """Per-shard accounting for one scheduler."""

    shard: int
    requests: int = 0
    hits: int = 0
    cold: int = 0
    seconds: float = 0.0

    def to_payload(self) -> Dict[str, object]:
        return {
            "shard": self.shard,
            "requests": self.requests,
            "hits": self.hits,
            "cold": self.cold,
            "seconds": self.seconds,
        }


class ShardedScheduler:
    """Partition request batches over digest-affine translation shards."""

    def __init__(
        self,
        engine: EngineLike = DEFAULT_ENGINE,
        *,
        shards: int = 4,
        mode: str = "thread",
        capacity: int = 256,
        parallel_coalescing: int = 0,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if mode not in SCHEDULER_MODES:
            known = ", ".join(SCHEDULER_MODES)
            raise ValueError(f"unknown scheduler mode {mode!r}; known modes: {known}")
        self.engine = resolve_engine(engine)
        self.mode = mode
        self.parallel_coalescing = parallel_coalescing
        self.services: List[TranslationService] = [
            TranslationService(
                self.engine, capacity=capacity, parallel_coalescing=parallel_coalescing
            )
            for _ in range(shards)
        ]
        self.shard_stats: List[ShardStats] = [ShardStats(shard=i) for i in range(shards)]
        self._stats_lock = threading.Lock()

    @property
    def shards(self) -> int:
        return len(self.services)

    # -- single request ---------------------------------------------------------
    def translate(self, source_text: str, engine: Optional[EngineLike] = None) -> ServiceResult:
        """Serve one request on its affine shard (always in-thread)."""
        config = self.engine if engine is None else resolve_engine(engine)
        shard = shard_of(text_digest(source_text), self.shards)
        began = time.perf_counter()
        result = self.services[shard].translate_text(source_text, engine=config)
        result.shard = shard
        self._account(shard, result, time.perf_counter() - began)
        return result

    def try_hit(
        self, source_text: str, engine: Optional[EngineLike] = None
    ) -> Optional[ServiceResult]:
        """Non-blocking warm-hit probe on the affine shard (or ``None``).

        Mirrors :meth:`TranslationService.try_hit`: no translation is ever
        started and the shard lock is never waited on, so this is safe to
        call from an event loop.
        """
        config = self.engine if engine is None else resolve_engine(engine)
        shard = shard_of(text_digest(source_text), self.shards)
        began = time.perf_counter()
        result = self.services[shard].try_hit(source_text, engine=config)
        if result is None:
            return None
        result.shard = shard
        self._account(shard, result, time.perf_counter() - began)
        return result

    def verify(
        self,
        source_text: str,
        engine: Optional[EngineLike] = None,
        level: str = "full",
    ) -> Dict[str, object]:
        """Run the invariant checkers on the request's affine shard.

        Digest affinity matters here: only that shard's cache can hold the
        program's warm translation, so only there can the cold-vs-cached
        cross-check (``V601``) fire.
        """
        config = self.engine if engine is None else resolve_engine(engine)
        shard = shard_of(text_digest(source_text), self.shards)
        payload = self.services[shard].verify(source_text, engine=config, level=level)
        payload["shard"] = shard
        return payload

    # -- batches ----------------------------------------------------------------
    def partition(self, texts: Sequence[str]) -> Dict[int, List[int]]:
        """Request indices grouped by their digest-affine shard."""
        partitions: Dict[int, List[int]] = {i: [] for i in range(self.shards)}
        for index, text in enumerate(texts):
            partitions[shard_of(text_digest(text), self.shards)].append(index)
        return partitions

    def stream_shard(
        self,
        shard: int,
        texts: Sequence[str],
        indices: Sequence[int],
        engine: Optional[EngineLike] = None,
        emit: Optional[Callable] = None,
        cancelled: Optional[threading.Event] = None,
    ) -> int:
        """Translate one shard's batch slice item by item, emitting each.

        The streaming half of a pipelined ``translate_batch``: the async
        daemon runs one ``stream_shard`` per non-empty partition on its
        worker pool, and ``emit(index, result, error)`` fires *from the
        calling thread* as each item completes — so results stream in
        completion order across shards instead of waiting for batch end.
        Per-item failures (parse errors, unknown engines) are reported
        through ``emit`` with ``result=None`` and never abort the slice.

        ``cancelled`` (a :class:`threading.Event`) aborts between items:
        when a client abandons its connection mid-batch, the shard stops
        burning time after the translation already in flight.  Returns how
        many items were served (emitted with a result).
        """
        config = self.engine if engine is None else resolve_engine(engine)
        began = time.perf_counter()
        served = 0
        try:
            for index in indices:
                if cancelled is not None and cancelled.is_set():
                    break
                try:
                    result = self.services[shard].translate_text(
                        texts[index], engine=config
                    )
                except (ParseError, KeyError, ValueError, TypeError) as error:
                    message = error.args[0] if error.args else str(error)
                    if emit is not None:
                        emit(index, None, str(message))
                    continue
                result.shard = shard
                self._account(shard, result, 0.0)
                served += 1
                if emit is not None:
                    emit(index, result, None)
        finally:
            self._account_seconds(shard, time.perf_counter() - began)
        return served

    def translate_batch(
        self, texts: Sequence[str], engine: Optional[EngineLike] = None
    ) -> List[ServiceResult]:
        """Serve a batch, partitioned across shards; results in input order."""
        config = self.engine if engine is None else resolve_engine(engine)
        results: List[Optional[ServiceResult]] = [None] * len(texts)
        partitions = self.partition(texts)

        if self.mode == "process":
            self._run_batch_process(texts, partitions, config, results)
        elif self.mode == "thread" and self.shards > 1:
            self._run_batch_threads(texts, partitions, config, results)
        else:
            for shard, indices in partitions.items():
                self._run_shard(texts, indices, shard, config, results)
        missing = [index for index, result in enumerate(results) if result is None]
        if missing:
            # Callers index-align responses with requests; compacting the
            # list would silently misattribute every later response.
            raise RuntimeError(f"batch left requests {missing} unanswered")
        return list(results)

    def _run_shard(self, texts, indices, shard, config, results) -> None:
        began = time.perf_counter()
        for index in indices:
            result = self.services[shard].translate_text(texts[index], engine=config)
            result.shard = shard
            results[index] = result
            self._account(shard, result, 0.0)
        self._account_seconds(shard, time.perf_counter() - began)

    def _run_batch_threads(self, texts, partitions, config, results) -> None:
        with ThreadPoolExecutor(max_workers=self.shards) as pool:
            futures = [
                pool.submit(self._run_shard, texts, indices, shard, config, results)
                for shard, indices in partitions.items()
                if indices
            ]
            for future in futures:
                future.result()

    def _run_batch_process(self, texts, partitions, config, results) -> None:
        """Hits from the parent caches, cold remainders on worker processes."""
        cold: Dict[int, List[int]] = {}
        for shard, indices in partitions.items():
            began = time.perf_counter()
            for index in indices:
                digest, fingerprint, entry = self.services[shard].probe(
                    texts[index], engine=config
                )
                if entry is not None:
                    result = ServiceResult(
                        digest=digest,
                        fingerprint=fingerprint,
                        engine=entry.engine_name,
                        ir_text=entry.ir_text,
                        kind="hit",
                        seconds=0.0,
                        translate_seconds=entry.seconds,
                        stats=dict(entry.stats),
                        shard=shard,
                    )
                    results[index] = result
                    self._account(shard, result, 0.0)
                else:
                    cold.setdefault(shard, []).append(index)
            self._account_seconds(shard, time.perf_counter() - began)
        if not cold:
            return
        # One worker translation per *unique* cold text: the repeat-heavy
        # streams this service targets would otherwise cold-translate the
        # same program once per occurrence inside the worker.
        unique: Dict[int, List[List[int]]] = {}
        for shard, indices in cold.items():
            groups: Dict[str, List[int]] = {}
            for index in indices:
                groups.setdefault(texts[index], []).append(index)
            unique[shard] = list(groups.values())
        with ProcessPoolExecutor(max_workers=len(cold)) as pool:
            futures = {
                shard: pool.submit(
                    _translate_partition,
                    config,
                    [texts[group[0]] for group in groups],
                    self.parallel_coalescing,
                )
                for shard, groups in unique.items()
            }
            for shard, future in futures.items():
                began = time.perf_counter()
                payloads = future.result()
                for group, payload in zip(unique[shard], payloads):
                    adopted = self.services[shard].adopt(payload)
                    for index in group:
                        result = replace(adopted, shard=shard, stats=dict(adopted.stats))
                        results[index] = result
                        self._account(shard, result, 0.0)
                self._account_seconds(shard, time.perf_counter() - began)

    # -- accounting --------------------------------------------------------------
    def _account(self, shard: int, result: ServiceResult, seconds: float) -> None:
        with self._stats_lock:
            stats = self.shard_stats[shard]
            stats.requests += 1
            if result.cached:
                stats.hits += 1
            else:
                stats.cold += 1
            stats.seconds += seconds

    def _account_seconds(self, shard: int, seconds: float) -> None:
        with self._stats_lock:
            self.shard_stats[shard].seconds += seconds

    # -- maintenance --------------------------------------------------------------
    def flush(self) -> int:
        """Flush every shard; returns the total entries dropped."""
        return sum(service.flush() for service in self.services)

    def stats_payload(self) -> Dict[str, object]:
        with self._stats_lock:
            shard_rows = [stats.to_payload() for stats in self.shard_stats]
        totals = {
            "requests": sum(row["requests"] for row in shard_rows),
            "hits": sum(row["hits"] for row in shard_rows),
            "cold": sum(row["cold"] for row in shard_rows),
        }
        return {
            "engine": self.engine.name,
            "fingerprint": self.engine.fingerprint(),
            "mode": self.mode,
            "shards": shard_rows,
            "services": [service.stats_payload() for service in self.services],
            **totals,
        }

    def __repr__(self) -> str:
        return f"ShardedScheduler({self.engine.name!r}, {self.shards} shards, {self.mode})"
