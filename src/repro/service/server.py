"""The ``repro serve`` daemon: an asyncio, pipelined NDJSON protocol front.

Stdlib only (``asyncio`` + ``json``).  One TCP connection carries any number
of concurrently in-flight requests; each request is one JSON object on one
line carrying a client-chosen ``id``, and each response echoes that ``id`` —
responses stream back in **completion order**, not request order:

    {"id": 1, "verb": "translate", "ir": "function f(...) { ... }"}
    {"id": 1, "ok": true, "ir": "...", "cached": false, ...}

Protocol (``repro-serve/2``)
----------------------------
``id`` is optional (any JSON scalar, echoed verbatim; responses to id-less
requests and to unparseable frames carry ``"id": null``).  Verbs:

``translate``
    ``ir`` (required): textual IR; ``engine`` (optional): engine name.
``translate_batch``
    ``irs`` (required): list of textual IR documents.  The response is
    **streamed**: one frame ``{"id":…, "item": i, "done": false, …}`` per
    item *as its digest-affine shard finishes it*, in completion order,
    then a terminal ``{"id":…, "done": true, "count": N, "errors": k}``.
    Per-item failures are item frames with ``ok: false``; they never abort
    the rest of the batch.
``verify``
    ``ir`` (required); ``level`` (optional, ``fast``/``full``): the staged
    invariant checkers over a throwaway checked translation on the
    program's affine shard (diagnostic ``V601`` cross-checks the cache).
``stats``
    Scheduler + per-shard + cache counters, uptime, engine fingerprint.
``metrics``
    The live serving metrics: queue depth (current + peak), in-flight
    count, connections, per-shard hit rates, and per-verb latency
    histograms with p50/p95/p99 (see :mod:`repro.service.metrics`).
``flush``
    Drop every cache entry and warm state; returns how many were dropped.
``ping``
    Liveness probe; reports the banner, protocol version, engine, shard
    count and the admission limits.
``shutdown``
    Acknowledge, **drain** every in-flight pipelined request (bounded by
    ``drain_timeout``), then stop.

Admission control and backpressure
----------------------------------
Heavy verbs (``translate``/``translate_batch``/``verify``) pass an
admission check before running: when more than ``max_pending`` items are
already queued or running, the request is *shed* with an explicit
``{"ok": false, "overloaded": true}`` response instead of growing the queue
without bound.  Per connection, at most ``max_pipeline`` requests may be in
flight — beyond that the daemon simply stops reading the connection until
one completes (TCP pushes back on the client).  Writes go through
``drain()``, so a slow reader pauses the responses (and, transitively, the
reads) instead of buffering unboundedly.  Frames longer than ``max_frame``
bytes are rejected with an error response; a malformed line never kills the
connection, let alone the daemon, and a connection dropped mid-pipeline has
its outstanding requests cancelled without touching warm state.

Execution model
---------------
One event loop owns all connections (no thread per connection); the
CPU-bound translation work runs on a fixed pool of ``workers`` threads.
Every mutable daemon counter is owned by the event-loop thread; everything
shared with worker threads lives behind the scheduler's stats lock or the
metrics registry's lock.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Set, Tuple

from repro.ir.parser import ParseError
from repro.outofssa.config import DEFAULT_ENGINE
from repro.pipeline.pipeline import EngineLike, resolve_engine
from repro.service.metrics import MetricsRegistry
from repro.service.scheduler import ShardedScheduler

#: Service banner returned by ``ping`` (protocol major version included).
BANNER = "repro-serve/2"

#: Verbs that translate (run on the worker pool, pass admission control).
HEAVY_VERBS = ("translate", "translate_batch", "verify")


class _Connection:
    """Per-connection state: serialized writes, in-flight pipeline window."""

    def __init__(self, writer: asyncio.StreamWriter, max_pipeline: int) -> None:
        self.writer = writer
        self.write_lock = asyncio.Lock()
        self.tasks: Set[asyncio.Task] = set()
        self.in_flight = 0
        self.max_pipeline = max_pipeline
        #: Set whenever an in-flight slot frees up (read loop waits on it).
        self.slot_freed = asyncio.Event()
        self.closed = False

    async def send(self, payload: Dict[str, object]) -> None:
        """Write one response frame; ``drain()`` gives slow-reader backpressure."""
        if self.closed:
            return
        data = (json.dumps(payload) + "\n").encode("utf-8")
        async with self.write_lock:
            if self.closed:
                return
            try:
                self.writer.write(data)
                await self.writer.drain()
            except (ConnectionError, OSError):
                self.closed = True

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        try:
            self.writer.transport.abort()
        except (AttributeError, ConnectionError, OSError):
            pass


class TranslationServer:
    """The daemon: a sharded scheduler behind an async pipelined NDJSON front.

    The constructor binds the listening socket immediately (so ``port`` is
    known before the loop runs); ``serve_forever`` / ``serve_in_background``
    start the event loop.  ``shutdown`` is thread-safe and drains in-flight
    requests before stopping.
    """

    def __init__(
        self,
        address: Tuple[str, int] = ("127.0.0.1", 0),
        *,
        engine: EngineLike = DEFAULT_ENGINE,
        shards: int = 2,
        mode: str = "thread",
        capacity: int = 256,
        parallel_coalescing: int = 0,
        workers: Optional[int] = None,
        max_pending: int = 64,
        max_pipeline: int = 32,
        max_frame: int = 8 * 1024 * 1024,
        metrics_interval: float = 0.0,
        drain_timeout: float = 10.0,
    ) -> None:
        if max_pending < 0:
            raise ValueError(f"max_pending must be >= 0, got {max_pending}")
        if max_pipeline < 1:
            raise ValueError(f"max_pipeline must be >= 1, got {max_pipeline}")
        self.scheduler = ShardedScheduler(
            engine,
            shards=shards,
            mode=mode,
            capacity=capacity,
            parallel_coalescing=parallel_coalescing,
        )
        self.workers = workers if workers is not None else max(2, self.scheduler.shards)
        self.max_pending = max_pending
        self.max_pipeline = max_pipeline
        self.max_frame = max_frame
        self.metrics_interval = metrics_interval
        self.drain_timeout = drain_timeout
        self.metrics = MetricsRegistry()
        self.started = time.time()
        # Event-loop-thread-owned counters (single writer by construction —
        # the async rewrite's answer to the old daemon's unlocked reads).
        self.requests_served = 0
        self._pending = 0
        self._stopping = False
        self._connections: Set[_Connection] = set()
        self._heavy_tasks: Set[asyncio.Task] = set()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_async: Optional[asyncio.Event] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._stop_requested = threading.Event()
        self._done = threading.Event()
        self._done.set()  # not running yet
        # Bind now so callers can read the port before the loop starts
        # (create_server sets SO_REUSEADDR on POSIX).
        self._socket = socket.create_server(address)
        self.server_address = self._socket.getsockname()

    # -- addressing --------------------------------------------------------------
    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        return self.server_address[1]

    # -- introspection (tests, fault harness) ------------------------------------
    @property
    def pending_requests(self) -> int:
        """Admitted heavy items not yet retired (queued + running)."""
        return self._pending

    @property
    def inflight_tasks(self) -> int:
        """Live asyncio tasks serving heavy requests (leak detector)."""
        return len(self._heavy_tasks)

    @property
    def open_connections(self) -> int:
        return len(self._connections)

    # -- lifecycle ----------------------------------------------------------------
    def serve_forever(self) -> None:
        """Run the event loop in the calling thread until shutdown."""
        self._done.clear()
        try:
            asyncio.run(self._main())
        finally:
            self._done.set()

    def serve_in_background(self) -> threading.Thread:
        """Start the event loop on a daemon thread (tests, embedding)."""
        self._done.clear()
        thread = threading.Thread(target=self._run_background, daemon=True)
        thread.start()
        return thread

    def _run_background(self) -> None:
        try:
            asyncio.run(self._main())
        finally:
            self._done.set()

    def shutdown(self, timeout: float = 30.0) -> None:
        """Stop the daemon (thread-safe, idempotent); blocks until stopped.

        In-flight pipelined requests are drained (bounded by
        ``drain_timeout``) before the loop exits, so every admitted request
        still gets its response.
        """
        self._stop_requested.set()
        loop = self._loop
        if loop is not None:
            try:
                loop.call_soon_threadsafe(self._begin_shutdown)
            except RuntimeError:
                pass  # loop already closed
        self._done.wait(timeout=timeout)

    def server_close(self) -> None:
        """Close the listening socket (idempotent; the loop may own it too)."""
        try:
            self._socket.close()
        except OSError:
            pass

    def _begin_shutdown(self) -> None:
        self._stopping = True
        if self._stop_async is not None:
            self._stop_async.set()

    # -- the event loop ------------------------------------------------------------
    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_async = asyncio.Event()
        if self._stop_requested.is_set():
            self._begin_shutdown()
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )
        server = await asyncio.start_server(
            self._handle_connection, sock=self._socket, limit=self.max_frame
        )
        reporter = None
        if self.metrics_interval > 0:
            reporter = asyncio.get_running_loop().create_task(self._metrics_reporter())
        try:
            async with server:
                await self._stop_async.wait()
            # Drain: the listener is closed, no new work is admitted (the
            # read loops check _stopping); wait for every admitted request
            # to finish and flush its response, bounded by drain_timeout.
            if self._heavy_tasks:
                try:
                    await asyncio.wait_for(
                        asyncio.gather(*list(self._heavy_tasks), return_exceptions=True),
                        timeout=self.drain_timeout,
                    )
                except asyncio.TimeoutError:
                    pass
        finally:
            if reporter is not None:
                reporter.cancel()
            for connection in list(self._connections):
                connection.close()
            self._executor.shutdown(wait=False)
            self._loop = None

    async def _metrics_reporter(self) -> None:
        while True:
            await asyncio.sleep(self.metrics_interval)
            line = {
                "requests": self.requests_served,
                "queue_depth": self._pending,
                "queue_peak": self.metrics.gauge("queue_depth_peak"),
                "connections": len(self._connections),
                "hits": self.metrics.counter("hits_total"),
                "overloaded": self.metrics.counter("overloaded_total"),
            }
            snapshot = self.metrics.snapshot()
            translate = snapshot["latency"].get("latency_translate")
            if translate:
                line["translate_p50_ms"] = translate["p50_ms"]
                line["translate_p99_ms"] = translate["p99_ms"]
            print(f"repro serve: metrics {json.dumps(line)}", flush=True)

    # -- per connection -----------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = _Connection(writer, self.max_pipeline)
        self._connections.add(connection)
        self.metrics.gauge_set("connections", len(self._connections))
        # A dropped connection abandons its in-flight requests (cancel); a
        # shutdown-initiated exit drains them instead.
        abandoned = True
        try:
            while not self._stopping:
                # Pipeline window: stop reading while the connection has
                # max_pipeline requests in flight (TCP pushes back).
                while connection.in_flight >= self.max_pipeline:
                    connection.slot_freed.clear()
                    await connection.slot_freed.wait()
                try:
                    raw = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # Oversized frame: the stream buffer was dropped; answer
                    # with an error and keep the connection.
                    self.metrics.increment("frame_errors_total")
                    await connection.send({
                        "id": None,
                        "ok": False,
                        "error": f"frame exceeds {self.max_frame} bytes",
                    })
                    continue
                except (ConnectionError, OSError):
                    break
                if not raw:
                    break  # EOF
                if not raw.endswith(b"\n"):
                    # Truncated final frame: the peer died mid-write; there
                    # is no complete request to answer.
                    self.metrics.increment("frame_errors_total")
                    break
                line = raw.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line.decode("utf-8"))
                    if not isinstance(payload, dict):
                        raise ValueError("request must be a JSON object")
                except (UnicodeDecodeError, ValueError) as error:
                    self.metrics.increment("malformed_total")
                    await connection.send(
                        {"id": None, "ok": False, "error": f"malformed request: {error}"}
                    )
                    continue
                request_id = payload.get("id")
                self.requests_served += 1
                self.metrics.increment("requests_total")
                verb = payload.get("verb")
                if verb in HEAVY_VERBS:
                    self._dispatch_heavy(connection, payload, request_id)
                    continue
                response, stop = self._dispatch_light(payload)
                response["id"] = request_id
                await connection.send(response)
                if stop:
                    abandoned = False
                    self._begin_shutdown()
                    break
            if self._stopping:
                abandoned = False
        finally:
            self._connections.discard(connection)
            self.metrics.gauge_set("connections", len(self._connections))
            if connection.tasks:
                if abandoned:
                    for task in list(connection.tasks):
                        task.cancel()
                await asyncio.gather(*list(connection.tasks), return_exceptions=True)
            connection.close()

    # -- dispatch ----------------------------------------------------------------
    def _dispatch_heavy(
        self, connection: _Connection, payload: Dict[str, object], request_id
    ) -> None:
        """Admission-check one heavy request and launch its serving task."""
        verb = payload["verb"]
        irs = payload.get("irs")
        cost = len(irs) if verb == "translate_batch" and isinstance(irs, list) else 1
        if self._pending + cost > self.max_pending:
            self.metrics.increment("overloaded_total")
            loop = asyncio.get_running_loop()
            task = loop.create_task(connection.send({
                "id": request_id,
                "ok": False,
                "overloaded": True,
                "error": (
                    f"overloaded: {self._pending} items pending "
                    f"(limit {self.max_pending})"
                ),
            }))
            connection.tasks.add(task)
            task.add_done_callback(connection.tasks.discard)
            return
        self._pending += cost
        self.metrics.gauge_set("queue_depth", self._pending)
        connection.in_flight += 1
        task = asyncio.get_running_loop().create_task(
            self._serve_heavy(connection, payload, request_id)
        )
        connection.tasks.add(task)
        self._heavy_tasks.add(task)
        self.metrics.gauge_set("in_flight", len(self._heavy_tasks))
        task.add_done_callback(
            lambda finished, c=connection, k=cost: self._retire(c, finished, k)
        )

    def _retire(self, connection: _Connection, task: asyncio.Task, cost: int) -> None:
        connection.tasks.discard(task)
        self._heavy_tasks.discard(task)
        self._pending -= cost
        self.metrics.gauge_set("queue_depth", self._pending)
        self.metrics.gauge_set("in_flight", len(self._heavy_tasks))
        connection.in_flight -= 1
        if connection.in_flight < connection.max_pipeline:
            connection.slot_freed.set()
        if task.cancelled():
            self.metrics.increment("cancelled_total")
        elif task.exception() is not None:
            self.metrics.increment("internal_errors_total")

    async def _serve_heavy(
        self, connection: _Connection, payload: Dict[str, object], request_id
    ) -> None:
        verb = payload["verb"]
        began = time.perf_counter()
        if verb == "translate_batch":
            await self._serve_batch(connection, payload, request_id, began)
            return
        try:
            response = self._inline_hit(payload) if verb == "translate" else None
            if response is None:
                response = await asyncio.get_running_loop().run_in_executor(
                    self._executor, self._dispatch_blocking, payload
                )
        except asyncio.CancelledError:
            raise
        except Exception as error:  # defensive: never kill the connection
            response = {"ok": False, "error": str(error)}
        self.metrics.observe(f"latency_{verb}", time.perf_counter() - began)
        if response.get("cached") is True:
            self.metrics.increment("hits_total")
        elif verb == "translate" and response.get("ok"):
            self.metrics.increment("cold_total")
        if not response.get("ok"):
            self.metrics.increment("errors_total")
        response["id"] = request_id
        await connection.send(response)

    def _inline_hit(self, payload: Dict[str, object]) -> Optional[Dict[str, object]]:
        """Serve a warm translate inline on the loop, skipping the executor.

        Hit serving is a dict lookup — pure Python that gains nothing from
        a worker thread and pays the loop→worker→loop hop for it.  The
        probe never waits on a shard lock (a cold translation holding it
        returns ``None``), so the loop cannot stall; any miss or oddity
        falls back to the blocking path, which also shapes all errors.
        """
        ir = payload.get("ir")
        if not isinstance(ir, str):
            return None
        try:
            result = self.scheduler.try_hit(ir, engine=self._engine_of(payload))
        except (KeyError, ValueError, TypeError):
            return None
        if result is None:
            return None
        self.metrics.increment("inline_hits_total")
        return {"ok": True, **result.to_payload()}

    def _dispatch_blocking(self, payload: Dict[str, object]) -> Dict[str, object]:
        """One translate/verify request, on a worker thread."""
        verb = payload["verb"]
        try:
            if verb == "translate":
                ir = payload.get("ir")
                if not isinstance(ir, str):
                    raise ValueError("'translate' needs an 'ir' string field")
                result = self.scheduler.translate(ir, engine=self._engine_of(payload))
                return {"ok": True, **result.to_payload()}
            ir = payload.get("ir")
            if not isinstance(ir, str):
                raise ValueError("'verify' needs an 'ir' string field")
            level = payload.get("level", "full")
            if level not in ("fast", "full"):
                raise ValueError("'level' must be 'fast' or 'full'")
            report = self.scheduler.verify(
                ir, engine=self._engine_of(payload), level=str(level)
            )
            return {"ok": True, **report}
        except (ParseError, KeyError, ValueError, TypeError) as error:
            message = error.args[0] if error.args else str(error)
            return {"ok": False, "error": str(message)}

    async def _serve_batch(
        self,
        connection: _Connection,
        payload: Dict[str, object],
        request_id,
        began: float,
    ) -> None:
        """Stream per-item responses as shards finish, then a terminal frame."""
        irs = payload.get("irs")
        if not isinstance(irs, list) or not all(isinstance(t, str) for t in irs):
            self.metrics.increment("errors_total")
            await connection.send({
                "id": request_id,
                "ok": False,
                "error": "'translate_batch' needs an 'irs' list of strings",
            })
            return
        try:
            engine = self._engine_of(payload)
            if engine is not None:
                resolve_engine(engine)  # fail the whole batch fast
        except (KeyError, ValueError) as error:
            message = error.args[0] if error.args else str(error)
            self.metrics.increment("errors_total")
            await connection.send({"id": request_id, "ok": False, "error": str(message)})
            return

        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()
        cancelled = threading.Event()

        def emit(index: int, result, error: Optional[str]) -> None:
            try:
                loop.call_soon_threadsafe(queue.put_nowait, (index, result, error))
            except RuntimeError:
                pass  # loop torn down while a shard was still finishing

        jobs = [
            loop.run_in_executor(
                self._executor,
                self.scheduler.stream_shard,
                shard, irs, indices, engine, emit, cancelled,
            )
            for shard, indices in self.scheduler.partition(irs).items()
            if indices
        ]
        errors = 0
        try:
            for _ in range(len(irs)):
                index, result, error = await queue.get()
                if error is not None:
                    errors += 1
                    self.metrics.increment("errors_total")
                    frame = {
                        "id": request_id, "ok": False,
                        "item": index, "done": False, "error": error,
                    }
                else:
                    self.metrics.increment("hits_total" if result.cached else "cold_total")
                    frame = {
                        "id": request_id, "ok": True,
                        "item": index, "done": False, **result.to_payload(),
                    }
                await connection.send(frame)
            await asyncio.gather(*jobs)
            self.metrics.observe("latency_translate_batch", time.perf_counter() - began)
            await connection.send({
                "id": request_id, "ok": True, "done": True,
                "count": len(irs), "errors": errors,
            })
        finally:
            # Reached normally once every item is answered (a no-op then),
            # and on cancellation — where it stops the shard workers from
            # translating for a client that is gone.
            cancelled.set()

    def _dispatch_light(
        self, payload: Dict[str, object]
    ) -> Tuple[Dict[str, object], bool]:
        """Answer one cheap verb inline on the event loop."""
        verb = payload.get("verb")
        if verb == "stats":
            return {
                "ok": True,
                "uptime_seconds": time.time() - self.started,
                "requests_served": self.requests_served,
                "stats": self.scheduler.stats_payload(),
            }, False
        if verb == "metrics":
            return {"ok": True, **self.metrics_payload()}, False
        if verb == "flush":
            return {"ok": True, "flushed": self.scheduler.flush()}, False
        if verb == "ping":
            return {
                "ok": True,
                "service": BANNER,
                "protocol": 2,
                "engine": self.scheduler.engine.name,
                "fingerprint": self.scheduler.engine.fingerprint(),
                "shards": self.scheduler.shards,
                "mode": self.scheduler.mode,
                "workers": self.workers,
                "max_pending": self.max_pending,
                "max_pipeline": self.max_pipeline,
            }, False
        if verb == "shutdown":
            return {"ok": True, "stopping": True, "draining": self._pending}, True
        return {"ok": False, "error": f"unknown verb {verb!r}"}, False

    def metrics_payload(self) -> Dict[str, object]:
        """The ``metrics`` verb's body (also scraped by ``repro request``)."""
        scheduler_stats = self.scheduler.stats_payload()
        per_shard = []
        for row in scheduler_stats["shards"]:
            requests = row["requests"]
            per_shard.append({
                "shard": row["shard"],
                "requests": requests,
                "hit_rate": round(row["hits"] / requests, 4) if requests else 0.0,
            })
        return {
            "uptime_seconds": time.time() - self.started,
            "requests_served": self.requests_served,
            "queue_depth": self._pending,
            "connections": len(self._connections),
            "shards": per_shard,
            "metrics": self.metrics.snapshot(),
        }

    @staticmethod
    def _engine_of(payload: Dict[str, object]) -> Optional[str]:
        engine = payload.get("engine")
        if engine is None:
            return None
        if not isinstance(engine, str):
            raise ValueError("'engine' must be an engine name string")
        return engine

    def __repr__(self) -> str:
        return f"TranslationServer({self.host}:{self.port}, {self.scheduler!r})"
