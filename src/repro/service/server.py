"""The ``repro serve`` daemon: translations over newline-delimited JSON.

Stdlib only (``socketserver`` + ``json``).  One TCP connection carries any
number of requests; each request is one JSON object on one line, each
response one JSON object on one line, in order:

    {"verb": "translate", "ir": "function f(...) { ... }", "engine": "us_i"}
    {"ok": true, "ir": "...", "cached": false, "digest": "...", ...}

Verbs
-----
``translate``
    ``ir`` (required): textual IR; ``engine`` (optional): engine name.
``translate_batch``
    ``irs`` (required): list of textual IR documents; the batch goes through
    the sharded scheduler (``results`` come back in input order).
``verify``
    ``ir`` (required): textual IR; ``level`` (optional, ``fast``/``full``):
    run the staged invariant checkers over a throwaway checked translation
    on the program's affine shard, cross-checking any cached translation of
    the same digest against the cold result (diagnostic ``V601``).
``stats``
    Scheduler + per-shard + cache counters, uptime, engine fingerprint.
``flush``
    Drop every cache entry and warm state; returns how many were dropped.
``ping``
    Liveness probe; reports the service banner, engine and shard count.
``shutdown``
    Acknowledge, then stop the server (used by tests and the CI lane).

Every error is a normal response with ``ok: false`` and an ``error`` string —
a malformed line never kills the connection, let alone the daemon.
"""

from __future__ import annotations

import json
import socketserver
import threading
import time
from typing import Dict, Optional, Tuple

from repro.ir.parser import ParseError
from repro.outofssa.config import DEFAULT_ENGINE
from repro.pipeline.pipeline import EngineLike
from repro.service.scheduler import ShardedScheduler

#: Service banner returned by ``ping`` (protocol major version included).
BANNER = "repro-serve/1"


class _RequestHandler(socketserver.StreamRequestHandler):
    """One connection: a stream of JSON lines, answered in order."""

    def handle(self) -> None:  # pragma: no cover - exercised via live sockets
        for raw in self.rfile:
            line = raw.strip()
            if not line:
                continue
            try:
                payload = json.loads(line.decode("utf-8"))
                if not isinstance(payload, dict):
                    raise ValueError("request must be a JSON object")
            except (UnicodeDecodeError, ValueError) as error:
                self._respond({"ok": False, "error": f"malformed request: {error}"})
                continue
            response, stop = self.server.dispatch(payload)
            self._respond(response)
            if stop:
                # Acknowledge first, then stop the server from a helper
                # thread (shutdown() deadlocks when called from a handler).
                threading.Thread(target=self.server.shutdown, daemon=True).start()
                return

    def _respond(self, response: Dict[str, object]) -> None:
        self.wfile.write((json.dumps(response) + "\n").encode("utf-8"))
        self.wfile.flush()


class TranslationServer(socketserver.ThreadingTCPServer):
    """The daemon: a sharded scheduler behind a line-oriented TCP front."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int] = ("127.0.0.1", 0),
        *,
        engine: EngineLike = DEFAULT_ENGINE,
        shards: int = 2,
        mode: str = "thread",
        capacity: int = 256,
        parallel_coalescing: int = 0,
    ) -> None:
        super().__init__(address, _RequestHandler)
        self.scheduler = ShardedScheduler(
            engine,
            shards=shards,
            mode=mode,
            capacity=capacity,
            parallel_coalescing=parallel_coalescing,
        )
        self.started = time.time()
        # dispatch() runs on one handler thread per connection.
        self._served_lock = threading.Lock()
        self.requests_served = 0

    # -- addressing --------------------------------------------------------------
    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        return self.server_address[1]

    # -- dispatch ----------------------------------------------------------------
    def dispatch(self, payload: Dict[str, object]) -> Tuple[Dict[str, object], bool]:
        """Answer one request; returns ``(response, stop server?)``."""
        with self._served_lock:
            self.requests_served += 1
        verb = payload.get("verb")
        try:
            if verb == "translate":
                ir = payload.get("ir")
                if not isinstance(ir, str):
                    raise ValueError("'translate' needs an 'ir' string field")
                result = self.scheduler.translate(ir, engine=self._engine_of(payload))
                return {"ok": True, **result.to_payload()}, False
            if verb == "translate_batch":
                irs = payload.get("irs")
                if not isinstance(irs, list) or not all(isinstance(t, str) for t in irs):
                    raise ValueError("'translate_batch' needs an 'irs' list of strings")
                results = self.scheduler.translate_batch(
                    irs, engine=self._engine_of(payload)
                )
                return {
                    "ok": True,
                    "results": [result.to_payload() for result in results],
                }, False
            if verb == "verify":
                ir = payload.get("ir")
                if not isinstance(ir, str):
                    raise ValueError("'verify' needs an 'ir' string field")
                level = payload.get("level", "full")
                if level not in ("fast", "full"):
                    raise ValueError("'level' must be 'fast' or 'full'")
                report = self.scheduler.verify(
                    ir, engine=self._engine_of(payload), level=str(level)
                )
                return {"ok": True, **report}, False
            if verb == "stats":
                return {
                    "ok": True,
                    "uptime_seconds": time.time() - self.started,
                    "requests_served": self.requests_served,
                    "stats": self.scheduler.stats_payload(),
                }, False
            if verb == "flush":
                return {"ok": True, "flushed": self.scheduler.flush()}, False
            if verb == "ping":
                return {
                    "ok": True,
                    "service": BANNER,
                    "engine": self.scheduler.engine.name,
                    "fingerprint": self.scheduler.engine.fingerprint(),
                    "shards": self.scheduler.shards,
                    "mode": self.scheduler.mode,
                }, False
            if verb == "shutdown":
                return {"ok": True, "stopping": True}, True
            return {"ok": False, "error": f"unknown verb {verb!r}"}, False
        except (ParseError, KeyError, ValueError, TypeError) as error:
            message = error.args[0] if error.args else str(error)
            return {"ok": False, "error": str(message)}, False

    @staticmethod
    def _engine_of(payload: Dict[str, object]) -> Optional[str]:
        engine = payload.get("engine")
        if engine is None:
            return None
        if not isinstance(engine, str):
            raise ValueError("'engine' must be an engine name string")
        return engine

    # -- lifecycle ----------------------------------------------------------------
    def serve_in_background(self) -> threading.Thread:
        """Start ``serve_forever`` on a daemon thread (tests, embedding)."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread

    def __repr__(self) -> str:
        return f"TranslationServer({self.host}:{self.port}, {self.scheduler!r})"
