"""Live serving metrics: counters, gauges and latency histograms.

The async daemon feeds one :class:`MetricsRegistry` from its event loop and
worker threads; the ``metrics`` verb (and the ``--metrics-interval`` log
line) snapshot it for scraping.  Three instrument kinds:

* **counters** — monotone event totals (``requests_total``, ``hits_total``,
  ``overloaded_total``, …);
* **gauges** — point-in-time levels with a tracked high-water mark
  (``queue_depth`` also records ``queue_depth_peak``: the deepest the
  admission queue ever got, which is what a load test wants to see);
* **latency histograms** — log-spaced fixed buckets per verb, reporting
  count, mean and approximate p50/p95/p99 (each percentile is the upper
  bound of the bucket the rank falls in, so reported percentiles are
  conservative: never below the true value by more than one bucket).

Everything is lock-cheap by design: one :class:`threading.Lock` guards the
registry, every critical section is a few integer operations (a histogram
``observe`` is one bisect plus three adds), and snapshots copy the state out
so readers never hold the lock while formatting.  Writers on the event loop
and readers on worker threads therefore never block each other for longer
than a bucket increment — the fix for the stat-aggregation races the
thread-per-connection daemon tolerated (only its request counter was
locked; every other counter relied on the GIL).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Sequence

#: Log-spaced latency bucket upper bounds, in seconds: 100 µs … 10 s, plus an
#: implicit overflow bucket.  A warm cache hit lands in the first buckets, a
#: cold 5k-block translation in the 0.1–1 s range.
DEFAULT_BUCKETS: Sequence[float] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class LatencyHistogram:
    """Fixed-bucket latency distribution with approximate percentiles."""

    __slots__ = ("bounds", "counts", "count", "total")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(bounds)
        #: One slot per bound plus the overflow bucket.
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, seconds: float) -> None:
        self.counts[bisect_left(self.bounds, seconds)] += 1
        self.count += 1
        self.total += seconds

    def quantile(self, q: float) -> float:
        """The upper bound of the bucket holding the ``q``-quantile rank.

        Returns 0.0 on an empty histogram; overflow observations report the
        last finite bound (a floor — the true value is at least that).
        """
        if not self.count:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index, bucket in enumerate(self.counts):
            cumulative += bucket
            if cumulative >= target and bucket:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.bounds[-1]
        return self.bounds[-1]

    def to_payload(self) -> Dict[str, float]:
        mean = self.total / self.count if self.count else 0.0
        return {
            "count": self.count,
            "mean_ms": round(mean * 1e3, 4),
            "p50_ms": round(self.quantile(0.50) * 1e3, 4),
            "p95_ms": round(self.quantile(0.95) * 1e3, 4),
            "p99_ms": round(self.quantile(0.99) * 1e3, 4),
        }

    def __repr__(self) -> str:
        return f"LatencyHistogram({self.count} observations)"


class MetricsRegistry:
    """One daemon's counters, gauges and histograms behind one cheap lock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, LatencyHistogram] = {}

    # -- writers -----------------------------------------------------------------
    def increment(self, name: str, by: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + by

    def gauge_set(self, name: str, value: float) -> None:
        """Set a gauge, tracking its high-water mark as ``<name>_peak``."""
        with self._lock:
            self._gauges[name] = value
            peak = f"{name}_peak"
            if value > self._gauges.get(peak, 0):
                self._gauges[peak] = value

    def observe(self, name: str, seconds: float) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = LatencyHistogram()
            histogram.observe(seconds)

    # -- readers -----------------------------------------------------------------
    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def gauge(self, name: str) -> float:
        with self._lock:
            return self._gauges.get(name, 0)

    def snapshot(self) -> Dict[str, object]:
        """A JSON-safe copy of everything (what the ``metrics`` verb returns)."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "latency": {
                    name: histogram.to_payload()
                    for name, histogram in sorted(self._histograms.items())
                },
            }

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"MetricsRegistry({len(self._counters)} counters, "
                f"{len(self._gauges)} gauges, {len(self._histograms)} histograms)"
            )
