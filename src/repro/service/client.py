"""Client for the ``repro serve`` daemon (stdlib only).

One :class:`ServiceClient` owns one TCP connection and speaks the
newline-delimited JSON protocol of :mod:`repro.service.server`: requests out,
responses back, strictly in order.  Protocol-level failures (``ok: false``)
raise :class:`ServiceError` from the convenience verbs; :meth:`request` is
the raw escape hatch that returns whatever the server said.

    with ServiceClient(port=port) as client:
        client.ping()
        translated = client.translate(ir_text)["ir"]
"""

from __future__ import annotations

import json
import socket
from typing import Dict, List, Optional


class ServiceError(RuntimeError):
    """The daemon answered ``ok: false`` (or the connection broke)."""


class ServiceClient:
    """One connection to a translation daemon."""

    def __init__(
        self,
        port: int,
        host: str = "127.0.0.1",
        timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._file = None

    # -- connection --------------------------------------------------------------
    def connect(self) -> "ServiceClient":
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            self._file = self._sock.makefile("rwb")
        return self

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- raw protocol ------------------------------------------------------------
    def request(self, verb: str, **fields) -> Dict[str, object]:
        """Send one request, return the raw response object."""
        self.connect()
        payload = {"verb": verb}
        payload.update({key: value for key, value in fields.items() if value is not None})
        self._file.write((json.dumps(payload) + "\n").encode("utf-8"))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServiceError(f"connection to {self.host}:{self.port} closed mid-request")
        try:
            response = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            raise ServiceError(f"malformed response: {error}") from error
        if not isinstance(response, dict):
            raise ServiceError(f"malformed response: expected object, got {response!r}")
        return response

    def _checked(self, verb: str, **fields) -> Dict[str, object]:
        response = self.request(verb, **fields)
        if not response.get("ok"):
            raise ServiceError(str(response.get("error", "unknown service error")))
        return response

    # -- verbs -------------------------------------------------------------------
    def ping(self) -> Dict[str, object]:
        return self._checked("ping")

    def translate(self, ir: str, engine: Optional[str] = None) -> Dict[str, object]:
        """Translate one textual IR document; the response carries ``ir``."""
        return self._checked("translate", ir=ir, engine=engine)

    def translate_batch(
        self, irs: List[str], engine: Optional[str] = None
    ) -> List[Dict[str, object]]:
        """Translate a batch; per-request payloads in input order."""
        response = self._checked("translate_batch", irs=list(irs), engine=engine)
        return list(response["results"])

    def verify(
        self, ir: str, engine: Optional[str] = None, level: Optional[str] = None
    ) -> Dict[str, object]:
        """Run the invariant checkers over one IR document on the daemon."""
        return self._checked("verify", ir=ir, engine=engine, level=level)

    def stats(self) -> Dict[str, object]:
        return self._checked("stats")

    def flush(self) -> int:
        """Flush the daemon's caches; returns how many entries were dropped."""
        return int(self._checked("flush")["flushed"])

    def shutdown(self) -> Dict[str, object]:
        """Ask the daemon to stop (acknowledged before it goes down)."""
        return self._checked("shutdown")

    def __repr__(self) -> str:
        state = "connected" if self._sock is not None else "disconnected"
        return f"ServiceClient({self.host}:{self.port}, {state})"
