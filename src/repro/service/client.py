"""Clients for the ``repro serve`` daemon (stdlib only).

Two layers over the same pipelined protocol (``repro-serve/2``):

* :class:`AsyncServiceClient` — the asyncio core.  One TCP connection
  carries any number of concurrently in-flight requests: every request gets
  a client-assigned ``id``, a background pump task routes responses back by
  that id in whatever order the daemon finishes them, and
  ``translate_batch`` exposes the streamed per-item frames either
  reassembled (:meth:`AsyncServiceClient.translate_batch`) or as they
  arrive (:meth:`AsyncServiceClient.stream_batch`).

* :class:`ServiceClient` — the synchronous façade existing callers keep
  using.  It owns a private event loop on a daemon thread and forwards each
  call with ``run_coroutine_threadsafe``; the blocking API is unchanged
  from the request/response client it replaces::

      with ServiceClient(port=port) as client:
          client.ping()
          translated = client.translate(ir_text)["ir"]

Protocol-level failures (``ok: false``) raise :class:`ServiceError` from
the convenience verbs; ``request`` is the raw escape hatch that returns
whatever the server said.
"""

from __future__ import annotations

import asyncio
import json
import threading
from collections import deque
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import AsyncIterator, Deque, Dict, List, Optional, Sequence


class ServiceError(RuntimeError):
    """The daemon answered ``ok: false`` (or the connection broke)."""


def _strip_frame(frame: Dict[str, object]) -> Dict[str, object]:
    """A streamed item frame minus the protocol bookkeeping keys."""
    return {
        key: value
        for key, value in frame.items()
        if key not in ("id", "item", "done", "ok")
    }


class AsyncServiceClient:
    """The asyncio core: one connection, many pipelined in-flight requests."""

    def __init__(
        self,
        port: int,
        host: str = "127.0.0.1",
        limit: int = 8 * 1024 * 1024,
    ) -> None:
        self.host = host
        self.port = port
        self.limit = limit
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._pump_task: Optional[asyncio.Task] = None
        self._write_lock: Optional[asyncio.Lock] = None
        self._next_id = 0
        #: Single-response requests awaiting their frame, by id.
        self._pending: Dict[int, asyncio.Future] = {}
        #: Streaming requests (batches): id -> queue of frames; a ``None``
        #: sentinel means the connection died mid-stream.
        self._streams: Dict[int, asyncio.Queue] = {}
        #: Frames that matched no in-flight id (diagnostics, tests).
        self.unrouted: Deque[Dict[str, object]] = deque(maxlen=64)
        self._closing = False

    # -- connection --------------------------------------------------------------
    async def connect(self) -> "AsyncServiceClient":
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port, limit=self.limit
            )
            self._write_lock = asyncio.Lock()
            self._closing = False
            self._pump_task = asyncio.get_running_loop().create_task(self._pump())
        return self

    async def close(self) -> None:
        self._closing = True
        if self._pump_task is not None:
            self._pump_task.cancel()
            try:
                await self._pump_task
            except (asyncio.CancelledError, ConnectionError, OSError):
                pass
            self._pump_task = None
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
            self._reader = None
        self._fail_all("client closed")

    async def __aenter__(self) -> "AsyncServiceClient":
        return await self.connect()

    async def __aexit__(self, *_exc) -> None:
        await self.close()

    @property
    def connected(self) -> bool:
        return self._writer is not None

    # -- the response pump -------------------------------------------------------
    async def _pump(self) -> None:
        """Read frames forever, routing each to its request by id."""
        broken: Optional[BaseException] = None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    frame = json.loads(line.decode("utf-8"))
                except (UnicodeDecodeError, ValueError):
                    continue  # not ours to crash on; keep pumping
                if isinstance(frame, dict):
                    self._route(frame)
        except asyncio.CancelledError:
            raise
        except (ConnectionError, OSError) as error:
            broken = error
        finally:
            if not self._closing:
                detail = f": {broken}" if broken else ""
                self._fail_all(
                    f"connection to {self.host}:{self.port} closed mid-request{detail}"
                )

    def _route(self, frame: Dict[str, object]) -> None:
        request_id = frame.get("id")
        queue = self._streams.get(request_id)
        if queue is not None:
            queue.put_nowait(frame)
            # Terminal frame or a whole-batch error (no per-item keys at
            # all): the stream is finished, unregister it.
            if frame.get("done") or "item" not in frame:
                del self._streams[request_id]
            return
        future = self._pending.pop(request_id, None)
        if future is not None:
            if not future.done():
                future.set_result(frame)
        else:
            self.unrouted.append(frame)

    def _fail_all(self, message: str) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(ServiceError(message))
        streams, self._streams = self._streams, {}
        for queue in streams.values():
            queue.put_nowait(None)

    # -- submission --------------------------------------------------------------
    async def _send(self, payload: Dict[str, object]) -> None:
        await self.connect()
        data = (json.dumps(payload) + "\n").encode("utf-8")
        async with self._write_lock:
            self._writer.write(data)
            await self._writer.drain()

    def _claim_id(self) -> int:
        self._next_id += 1
        return self._next_id

    async def _submit(self, payload: Dict[str, object]) -> asyncio.Future:
        await self.connect()
        request_id = self._claim_id()
        payload["id"] = request_id
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            await self._send(payload)
        except (ConnectionError, OSError):
            self._pending.pop(request_id, None)
            raise
        return future

    async def _submit_stream(self, payload: Dict[str, object]) -> asyncio.Queue:
        await self.connect()
        request_id = self._claim_id()
        payload["id"] = request_id
        queue: asyncio.Queue = asyncio.Queue()
        self._streams[request_id] = queue
        try:
            await self._send(payload)
        except (ConnectionError, OSError):
            self._streams.pop(request_id, None)
            raise
        return queue

    @staticmethod
    def _payload(verb: str, fields: Dict[str, object]) -> Dict[str, object]:
        payload: Dict[str, object] = {"verb": verb}
        payload.update({key: value for key, value in fields.items() if value is not None})
        return payload

    # -- raw protocol ------------------------------------------------------------
    async def request(self, verb: str, **fields) -> Dict[str, object]:
        """Send one request, return the raw response object.

        ``translate_batch`` is streamed on the wire; here the stream is
        reassembled into the classic single-object shape — ``results`` in
        input order plus the terminal frame's ``count``/``errors`` — with
        ``ok`` false whenever any item failed.
        """
        payload = self._payload(verb, fields)
        if verb == "translate_batch" and isinstance(payload.get("irs"), list):
            return await self._request_batch(payload)
        future = await self._submit(payload)
        return await future

    async def _request_batch(self, payload: Dict[str, object]) -> Dict[str, object]:
        count = len(payload["irs"])
        frames: List[Optional[Dict[str, object]]] = [None] * count
        terminal: Optional[Dict[str, object]] = None
        async for frame in self._stream(payload):
            if frame.get("done"):
                terminal = frame
            elif "item" in frame:
                frames[frame["item"]] = frame
            else:
                return frame  # whole-batch error (bad irs, unknown engine, overloaded)
        if terminal is None:
            raise ServiceError(
                f"connection to {self.host}:{self.port} closed mid-batch"
            )
        failed = [frame for frame in frames if frame is not None and not frame.get("ok")]
        response = dict(terminal)
        response["ok"] = bool(terminal.get("ok")) and not failed
        response["results"] = frames
        if failed:
            response["error"] = str(failed[0].get("error", "batch item failed"))
        return response

    async def _stream(
        self, payload: Dict[str, object]
    ) -> AsyncIterator[Dict[str, object]]:
        queue = await self._submit_stream(payload)
        while True:
            frame = await queue.get()
            if frame is None:
                raise ServiceError(
                    f"connection to {self.host}:{self.port} closed mid-batch"
                )
            yield frame
            if frame.get("done") or "item" not in frame:
                return

    async def _checked(self, verb: str, **fields) -> Dict[str, object]:
        response = await self.request(verb, **fields)
        if not response.get("ok"):
            raise ServiceError(str(response.get("error", "unknown service error")))
        return response

    # -- verbs -------------------------------------------------------------------
    async def ping(self) -> Dict[str, object]:
        return await self._checked("ping")

    async def translate(self, ir: str, engine: Optional[str] = None) -> Dict[str, object]:
        """Translate one textual IR document; the response carries ``ir``."""
        return await self._checked("translate", ir=ir, engine=engine)

    async def translate_batch(
        self, irs: Sequence[str], engine: Optional[str] = None
    ) -> List[Dict[str, object]]:
        """Translate a batch; per-request payloads in input order.

        Raises :class:`ServiceError` if the batch as a whole or any item
        failed (the whole-batch contract of the blocking protocol).
        """
        response = await self._checked("translate_batch", irs=list(irs), engine=engine)
        return [_strip_frame(frame) for frame in response["results"]]

    async def stream_batch(
        self, irs: Sequence[str], engine: Optional[str] = None
    ) -> AsyncIterator[Dict[str, object]]:
        """Yield the batch's raw frames as the daemon's shards finish them.

        Item frames (``"item"``, ``"done": false``) arrive in completion
        order; the terminal frame (``"done": true``) is yielded last.  A
        whole-batch error is yielded as the only frame.
        """
        payload = self._payload("translate_batch", {"irs": list(irs), "engine": engine})
        async for frame in self._stream(payload):
            yield frame

    async def verify(
        self, ir: str, engine: Optional[str] = None, level: Optional[str] = None
    ) -> Dict[str, object]:
        """Run the invariant checkers over one IR document on the daemon."""
        return await self._checked("verify", ir=ir, engine=engine, level=level)

    async def stats(self) -> Dict[str, object]:
        return await self._checked("stats")

    async def metrics(self) -> Dict[str, object]:
        """The daemon's live serving metrics (queues, hit rates, latency)."""
        return await self._checked("metrics")

    async def flush(self) -> int:
        """Flush the daemon's caches; returns how many entries were dropped."""
        return int((await self._checked("flush"))["flushed"])

    async def shutdown(self) -> Dict[str, object]:
        """Ask the daemon to stop (acknowledged before it goes down)."""
        return await self._checked("shutdown")

    async def pipeline(
        self, requests: Sequence[Dict[str, object]]
    ) -> List[Dict[str, object]]:
        """Submit many requests at once; raw responses in request order.

        Every request is written before any response is awaited, so all of
        them are in flight on the one connection simultaneously — the
        pipelined mode the async daemon exists for.  Each entry is a dict
        with a ``verb`` key plus the verb's fields.
        """
        coroutines = [
            self.request(entry["verb"], **{k: v for k, v in entry.items() if k != "verb"})
            for entry in requests
        ]
        return list(await asyncio.gather(*coroutines))

    def __repr__(self) -> str:
        state = "connected" if self.connected else "disconnected"
        return f"AsyncServiceClient({self.host}:{self.port}, {state})"


class ServiceClient:
    """Blocking façade over :class:`AsyncServiceClient`.

    The original request/response client's API, backed by a private event
    loop on a daemon thread; ``timeout`` bounds each blocking call (a
    timed-out call raises :class:`ServiceError`).  Connection-establishment
    errors (``ConnectionRefusedError`` et al.) propagate as ``OSError``
    exactly as the socket client raised them.
    """

    def __init__(
        self,
        port: int,
        host: str = "127.0.0.1",
        timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._async: Optional[AsyncServiceClient] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    # -- connection --------------------------------------------------------------
    def connect(self) -> "ServiceClient":
        if self._async is None:
            self._loop = asyncio.new_event_loop()
            self._thread = threading.Thread(
                target=self._loop.run_forever, name="repro-client", daemon=True
            )
            self._thread.start()
            client = AsyncServiceClient(self.port, host=self.host)
            try:
                self._run(client.connect())
            except BaseException:
                self._stop_loop()
                raise
            self._async = client
        return self

    def close(self) -> None:
        if self._async is not None:
            try:
                self._run(self._async.close())
            except (ServiceError, OSError, RuntimeError):
                pass
            self._async = None
        self._stop_loop()

    def _stop_loop(self) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            if self._thread is not None:
                self._thread.join(timeout=5.0)
            self._loop.close()
            self._loop = None
            self._thread = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *_exc) -> None:
        self.close()

    def _run(self, coroutine):
        """Run one coroutine on the client loop, bounded by ``timeout``."""
        future = asyncio.run_coroutine_threadsafe(coroutine, self._loop)
        try:
            return future.result(self.timeout)
        except FutureTimeoutError as error:
            future.cancel()
            raise ServiceError(
                f"request to {self.host}:{self.port} timed out after {self.timeout}s"
            ) from error

    # -- raw protocol ------------------------------------------------------------
    def request(self, verb: str, **fields) -> Dict[str, object]:
        """Send one request, return the raw response object."""
        self.connect()
        return self._run(self._async.request(verb, **fields))

    def _checked(self, verb: str, **fields) -> Dict[str, object]:
        response = self.request(verb, **fields)
        if not response.get("ok"):
            raise ServiceError(str(response.get("error", "unknown service error")))
        return response

    # -- verbs -------------------------------------------------------------------
    def ping(self) -> Dict[str, object]:
        return self._checked("ping")

    def translate(self, ir: str, engine: Optional[str] = None) -> Dict[str, object]:
        """Translate one textual IR document; the response carries ``ir``."""
        return self._checked("translate", ir=ir, engine=engine)

    def translate_batch(
        self, irs: List[str], engine: Optional[str] = None
    ) -> List[Dict[str, object]]:
        """Translate a batch; per-request payloads in input order."""
        self.connect()
        return self._run(self._async.translate_batch(list(irs), engine=engine))

    def verify(
        self, ir: str, engine: Optional[str] = None, level: Optional[str] = None
    ) -> Dict[str, object]:
        """Run the invariant checkers over one IR document on the daemon."""
        return self._checked("verify", ir=ir, engine=engine, level=level)

    def stats(self) -> Dict[str, object]:
        return self._checked("stats")

    def metrics(self) -> Dict[str, object]:
        """The daemon's live serving metrics (queues, hit rates, latency)."""
        return self._checked("metrics")

    def flush(self) -> int:
        """Flush the daemon's caches; returns how many entries were dropped."""
        return int(self._checked("flush")["flushed"])

    def shutdown(self) -> Dict[str, object]:
        """Ask the daemon to stop (acknowledged before it goes down)."""
        return self._checked("shutdown")

    def pipeline(
        self, requests: Sequence[Dict[str, object]]
    ) -> List[Dict[str, object]]:
        """Submit many requests pipelined; raw responses in request order."""
        self.connect()
        return self._run(self._async.pipeline(requests))

    def __repr__(self) -> str:
        state = "connected" if self._async is not None else "disconnected"
        return f"ServiceClient({self.host}:{self.port}, {state})"
