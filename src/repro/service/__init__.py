"""The translation service layer: out-of-SSA as a long-running daemon.

The paper's pitch is that out-of-SSA translation is fast enough to run
constantly inside a JIT.  This package turns the batch pipeline into exactly
that serving workload — heavy sustained traffic of translation requests over
hot functions:

* :mod:`repro.service.cache` — :class:`TranslationCache`, a content-addressed
  warm cache keyed by IR digest × engine fingerprint, holding completed
  translations *and* the per-function warm state (the translated
  :class:`~repro.ir.function.Function` plus its patched
  :class:`~repro.pipeline.analysis.AnalysisCache`);
* :mod:`repro.service.translator` — :class:`TranslationService`, one worker:
  a warm :class:`~repro.pipeline.session.Session` per engine fingerprint in
  front of one cache;
* :mod:`repro.service.scheduler` — :class:`ShardedScheduler`, the sharded
  work queue partitioning request batches across N digest-affine shards
  (threads for warm traffic, processes for cold batches), plus the in-shard
  parallel coalescing mode over the congruence-class matrix rows;
* :mod:`repro.service.server` / :mod:`repro.service.client` — a stdlib-only
  asyncio socket daemon (``repro serve``) speaking an id-tagged, pipelined
  newline-delimited-JSON protocol with streamed batches, admission control
  and per-connection backpressure, plus its clients (an asyncio core and a
  blocking façade);
* :mod:`repro.service.metrics` — :class:`MetricsRegistry`, the daemon's
  lock-cheap counters, gauges and latency histograms behind the ``metrics``
  verb.

See ``docs/SERVICE.md`` for the protocol, the cache keying and the
warm-vs-cold lifecycle.
"""

from repro.service.cache import CachedTranslation, CacheStats, TranslationCache, WarmState
from repro.service.client import AsyncServiceClient, ServiceClient, ServiceError
from repro.service.metrics import LatencyHistogram, MetricsRegistry
from repro.service.scheduler import (
    ParallelCoalescingPass,
    ShardedScheduler,
    ShardStats,
    parallel_coalesce,
    shard_of,
)
from repro.service.server import TranslationServer
from repro.service.translator import ServiceResult, TranslationService, service_pipeline

__all__ = [
    "AsyncServiceClient",
    "CacheStats",
    "CachedTranslation",
    "LatencyHistogram",
    "MetricsRegistry",
    "ParallelCoalescingPass",
    "ServiceClient",
    "ServiceError",
    "ServiceResult",
    "ShardStats",
    "ShardedScheduler",
    "TranslationCache",
    "TranslationServer",
    "TranslationService",
    "WarmState",
    "parallel_coalesce",
    "service_pipeline",
    "shard_of",
]
