"""One translation worker: a warm session per engine behind one cache.

:class:`TranslationService` is the unit the sharded scheduler replicates and
the daemon dispatches into.  It owns

* one :class:`~repro.service.cache.TranslationCache` (content-addressed,
  possibly shared), and
* one warm :class:`~repro.pipeline.session.Session` per engine
  *fingerprint* it has served, so re-translations of hot functions reuse the
  retained per-function :class:`~repro.pipeline.analysis.AnalysisCache`.

The request lifecycle (``translate_text``):

1. digest the source text, fingerprint the engine;
2. **hit** — return the completed translation verbatim (no parse, no
   analysis, no translation);
3. **miss** — parse, translate through the warm session, store the result
   *and* the warm state (translated function + patched analysis cache), so
   the function is hot from now on.

:meth:`TranslationService.retranslate` is the JIT path over the warm state:
the caller edits the hot function in place, describes the edits as an
:class:`~repro.ir.editlog.EditLog` (exactly as the passes describe their
own), and the service patches the retained incremental analyses from the log
before running the pipeline again — no cold liveness or interference rebuild
happens anywhere on that path.
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.ir.digest import function_digest, text_digest
from repro.ir.editlog import EditLog
from repro.ir.parser import parse_function
from repro.ir.printer import format_function
from repro.ir.validate import validate_function
from repro.outofssa.config import DEFAULT_ENGINE, EngineConfig
from repro.pipeline.phases import CoalescingPass, out_of_ssa_passes
from repro.pipeline.pipeline import EngineLike, Pipeline, resolve_engine
from repro.pipeline.session import Session
from repro.service.cache import CachedTranslation, TranslationCache, WarmState


@dataclass
class ServiceResult:
    """What one ``translate`` request returns (hit or miss)."""

    digest: str
    fingerprint: str
    engine: str
    ir_text: str
    #: "hit" (served from cache), "cold" (translated now) or "warm" (a
    #: retranslation over retained warm state).
    kind: str
    #: Wall-clock seconds this request took *in the service*.
    seconds: float
    #: Seconds the underlying translation took when it actually ran (for a
    #: hit: the original cold translation's time — what the cache saved).
    translate_seconds: float
    stats: Dict[str, object] = field(default_factory=dict)
    #: Shard index, filled in by the scheduler.
    shard: Optional[int] = None

    @property
    def cached(self) -> bool:
        return self.kind == "hit"

    def to_payload(self) -> Dict[str, object]:
        """JSON-safe dict (the service protocol's response body)."""
        return {
            "digest": self.digest,
            "fingerprint": self.fingerprint,
            "engine": self.engine,
            "ir": self.ir_text,
            "kind": self.kind,
            "cached": self.cached,
            "seconds": self.seconds,
            "translate_seconds": self.translate_seconds,
            "stats": dict(self.stats),
            "shard": self.shard,
        }


def service_pipeline(config: EngineConfig, parallel_workers: int = 0) -> Pipeline:
    """The out-of-SSA pipeline a service session runs.

    With ``parallel_workers > 1`` the coalescing phase is swapped for the
    scheduler's :class:`~repro.service.scheduler.ParallelCoalescingPass`
    (bit-identical by construction; see its docstring for the monotonicity
    argument).  Imported lazily to keep translator/scheduler imports acyclic.
    """
    if parallel_workers > 1:
        from repro.service.scheduler import ParallelCoalescingPass

        passes = [
            ParallelCoalescingPass(parallel_workers) if type(p) is CoalescingPass else p
            for p in out_of_ssa_passes()
        ]
        return Pipeline(passes, config=config)
    return Pipeline(out_of_ssa_passes(), config=config)


class TranslationService:
    """One worker: cache in front, warm sessions behind."""

    def __init__(
        self,
        engine: EngineLike = DEFAULT_ENGINE,
        *,
        cache: Optional[TranslationCache] = None,
        capacity: int = 256,
        parallel_coalescing: int = 0,
        keep_warm_state: bool = True,
        validate_ingest: bool = True,
    ) -> None:
        self.default_config = resolve_engine(engine)
        self.cache = cache if cache is not None else TranslationCache(capacity)
        self.parallel_coalescing = parallel_coalescing
        #: Structurally validate parsed requests before translating (the
        #: ingest boundary: malformed programs fail with a located error
        #: instead of deep inside a pass).
        self.validate_ingest = validate_ingest
        # Warm state is only retained when the cache can actually hold (and
        # eventually evict-and-release) it: with caching disabled the
        # eviction hook never runs, so a warm session would accumulate one
        # AnalysisCache per request forever in a long-lived daemon.
        self.keep_warm_state = keep_warm_state and self.cache.capacity != 0
        self._sessions: Dict[str, Session] = {}
        self._configs: Dict[str, EngineConfig] = {}
        self._lock = threading.RLock()
        self.requests = 0

    # -- engine / session resolution -------------------------------------------
    def _resolve(self, engine: Optional[EngineLike]) -> EngineConfig:
        if engine is None:
            return self.default_config
        return resolve_engine(engine)

    def _session(self, config: EngineConfig) -> Session:
        fingerprint = config.fingerprint()
        session = self._sessions.get(fingerprint)
        if session is None:
            session = Session(
                config,
                # Warm sessions retain per-function analysis caches; without
                # warm-state retention that would be an unbounded leak, so
                # those services run plain (cold) sessions.
                warm=self.keep_warm_state,
                pipeline=service_pipeline(config, self.parallel_coalescing),
            )
            self._sessions[fingerprint] = session
            self._configs[fingerprint] = config
        return session

    def sessions(self) -> Dict[str, Session]:
        """The warm sessions by fingerprint (introspection/tests)."""
        with self._lock:
            return dict(self._sessions)

    # -- the request path -------------------------------------------------------
    def translate_text(
        self, source_text: str, engine: Optional[EngineLike] = None
    ) -> ServiceResult:
        """Serve one translation request (hit or cold miss)."""
        began = time.perf_counter()
        config = self._resolve(engine)
        digest = text_digest(source_text)
        fingerprint = config.fingerprint()
        with self._lock:
            self.requests += 1
            entry = self.cache.lookup(digest, fingerprint)
            if entry is not None:
                return ServiceResult(
                    digest=digest,
                    fingerprint=fingerprint,
                    engine=entry.engine_name,
                    ir_text=entry.ir_text,
                    kind="hit",
                    seconds=time.perf_counter() - began,
                    translate_seconds=entry.seconds,
                    # A copy: results are caller-owned, the entry is not.
                    stats=dict(entry.stats),
                )
            function = parse_function(source_text)
            if self.validate_ingest:
                validate_function(function)
            session = self._session(config)
            result = session.translate(function)
            ir_text = format_function(function)
            seconds = time.perf_counter() - began
            entry = CachedTranslation(
                digest=digest,
                fingerprint=fingerprint,
                engine_name=config.name,
                ir_text=ir_text,
                seconds=seconds,
                stats=asdict(result.stats),
            )
            warm_state = None
            if self.keep_warm_state:
                warm_state = WarmState(
                    function=function,
                    analyses=session.warm_cache(function),
                    session=session,
                )
            self.cache.store(entry, warm_state)
            return ServiceResult(
                digest=digest,
                fingerprint=fingerprint,
                engine=config.name,
                ir_text=ir_text,
                kind="cold",
                seconds=seconds,
                translate_seconds=seconds,
                stats=dict(entry.stats),
            )

    def translate_function(self, function, engine: Optional[EngineLike] = None) -> ServiceResult:
        """Convenience for in-process callers holding a Function value.

        The function is *not* mutated: its canonical printed form goes
        through the text path, so in-process and protocol clients address
        the same cache entries.
        """
        return self.translate_text(format_function(function), engine=engine)

    # -- the JIT warm path ------------------------------------------------------
    def retranslate(
        self,
        digest: str,
        edit_log: EditLog,
        engine: Optional[EngineLike] = None,
    ) -> ServiceResult:
        """Re-translate a hot function after in-place edits, warm.

        ``digest``/``engine`` name the warm state retained by a previous
        cold translation; the caller has already applied its structural
        edits to that state's function object and describes them with
        ``edit_log``.  The retained incremental analyses are patched from
        the log (never rebuilt), the pipeline runs again over the same
        analysis cache, and the result is stored under the *edited*
        program's digest — exactly what a cold translation of the edited
        text would have been keyed as, and property-tested bit-identical
        to it.
        """
        began = time.perf_counter()
        config = self._resolve(engine)
        fingerprint = config.fingerprint()
        with self._lock:
            self.requests += 1
            state = self.cache.warm_state(digest, fingerprint)
            if state is None:
                raise KeyError(
                    f"no warm state for digest {digest[:12]}… under engine "
                    f"{config.name!r} (cold-translate it first)"
                )
            session = self._session(config)
            session.apply_edits(state.function, edit_log)
            new_digest = function_digest(state.function)
            # The function now denotes the *edited* program: move the warm
            # state off the old key (whose stored result text stays valid)
            # so evicting that entry cannot drop the analysis cache the new
            # key depends on, and a later retranslate of the old digest
            # fails loudly instead of stacking edits silently.
            self.cache.detach_warm(digest, fingerprint)
            result = session.translate(state.function)
            ir_text = format_function(state.function)
            seconds = time.perf_counter() - began
            entry = CachedTranslation(
                digest=new_digest,
                fingerprint=fingerprint,
                engine_name=config.name,
                ir_text=ir_text,
                seconds=seconds,
                stats=asdict(result.stats),
            )
            warm_state = None
            if self.keep_warm_state:
                warm_state = WarmState(
                    function=state.function,
                    analyses=session.warm_cache(state.function),
                    session=session,
                )
            self.cache.store(entry, warm_state)
            return ServiceResult(
                digest=new_digest,
                fingerprint=fingerprint,
                engine=config.name,
                ir_text=ir_text,
                kind="warm",
                seconds=seconds,
                translate_seconds=seconds,
                stats=dict(entry.stats),
            )

    # -- verification -----------------------------------------------------------
    def verify(
        self,
        source_text: str,
        engine: Optional[EngineLike] = None,
        level: str = "full",
    ) -> Dict[str, object]:
        """Run the staged invariant checkers over one request's program.

        The program is re-parsed and translated through a *throwaway* checked
        pipeline (never the warm session — verification must not perturb warm
        state), and when the cache already holds a translation of the same
        digest the cold result is compared against it: a mismatch is the
        service-level diagnostic ``V601``.
        """
        from dataclasses import replace as dc_replace

        from repro.verify.checks import check_structure
        from repro.verify.diagnostics import VerifyReport, diagnostic

        if level not in ("fast", "full"):
            raise ValueError(f"verify level must be 'fast' or 'full', got {level!r}")
        began = time.perf_counter()
        config = self._resolve(engine)
        digest = text_digest(source_text)
        fingerprint = config.fingerprint()
        function = parse_function(source_text)

        structural = check_structure(function)
        translated = not any(diag.is_error for diag in structural)
        if translated:
            checked = dc_replace(config, verify_level=level)
            result = service_pipeline(checked).run(function)
            report = result.verify_report
            assert report is not None
        else:
            # Translation would crash on broken structure; report the input
            # findings alone.
            report = VerifyReport(function=function.name, level=level)
            report.stages_run.append("input")
            report.extend(structural)

        with self._lock:
            self.requests += 1
            entry = self.cache.lookup(digest, fingerprint)
        cached = entry is not None
        match: Optional[bool] = None
        if cached and translated:
            match = entry.ir_text == format_function(function)
            if not match:
                report.extend([diagnostic(
                    "V601",
                    f"cached translation of digest {digest[:12]}… differs from "
                    f"a cold retranslation under engine {config.name}",
                    function=function.name, stage="service",
                )])
        report.seconds = time.perf_counter() - began
        return {
            "digest": digest,
            "fingerprint": fingerprint,
            "engine": config.name,
            "level": level,
            "cached": cached,
            "match": match,
            "ok": report.ok,
            "errors": len(report.errors),
            "warnings": len(report.warnings),
            "seconds": report.seconds,
            "diagnostics": [diag.to_payload() for diag in report.diagnostics],
        }

    def try_hit(
        self, source_text: str, engine: Optional[EngineLike] = None
    ) -> Optional[ServiceResult]:
        """A non-blocking warm-hit probe for latency-sensitive callers.

        Returns the cached translation only when the entry is warm *and*
        the service lock is immediately available; returns ``None`` on a
        miss or while a cold translation holds the lock, so a caller on an
        event loop can fall back to a worker thread instead of stalling.
        A served hit counts exactly like a :meth:`translate_text` hit.
        """
        began = time.perf_counter()
        config = self._resolve(engine)
        digest = text_digest(source_text)
        fingerprint = config.fingerprint()
        if not self._lock.acquire(blocking=False):
            return None
        try:
            entry = self.cache.lookup(digest, fingerprint)
            if entry is None:
                return None
            self.requests += 1
            return ServiceResult(
                digest=digest,
                fingerprint=fingerprint,
                engine=entry.engine_name,
                ir_text=entry.ir_text,
                kind="hit",
                seconds=time.perf_counter() - began,
                translate_seconds=entry.seconds,
                stats=dict(entry.stats),
            )
        finally:
            self._lock.release()

    # -- scheduler hooks --------------------------------------------------------
    def probe(
        self, source_text: str, engine: Optional[EngineLike] = None
    ) -> tuple:
        """``(digest, fingerprint, cached entry or None)`` for one request.

        Used by the process-mode scheduler to serve hits from the parent
        before shipping the cold remainder to worker processes; counts the
        hit/miss exactly like :meth:`translate_text` would.
        """
        config = self._resolve(engine)
        digest = text_digest(source_text)
        fingerprint = config.fingerprint()
        with self._lock:
            self.requests += 1
            return digest, fingerprint, self.cache.lookup(digest, fingerprint)

    def adopt(self, payload: Dict[str, object]) -> ServiceResult:
        """Install a translation computed elsewhere (a worker process).

        ``payload`` is a :meth:`ServiceResult.to_payload` dict from the
        worker; the result is cached here (without warm state — analysis
        objects do not cross process boundaries) so subsequent requests hit
        warm in the parent.
        """
        entry = CachedTranslation(
            digest=str(payload["digest"]),
            fingerprint=str(payload["fingerprint"]),
            engine_name=str(payload["engine"]),
            ir_text=str(payload["ir"]),
            seconds=float(payload["translate_seconds"]),
            stats=dict(payload.get("stats") or {}),
        )
        with self._lock:
            self.cache.store(entry)
        return ServiceResult(
            digest=entry.digest,
            fingerprint=entry.fingerprint,
            engine=entry.engine_name,
            ir_text=entry.ir_text,
            kind=str(payload.get("kind", "cold")),
            seconds=float(payload["seconds"]),
            translate_seconds=entry.seconds,
            stats=dict(entry.stats),
        )

    # -- maintenance ------------------------------------------------------------
    def flush(self) -> int:
        """Flush the cache and every warm session; returns entries dropped."""
        with self._lock:
            count = self.cache.flush()
            for session in self._sessions.values():
                session.flush_warm()
            return count

    def stats_payload(self) -> Dict[str, object]:
        with self._lock:
            return {
                "requests": self.requests,
                "engine": self.default_config.name,
                "fingerprint": self.default_config.fingerprint(),
                "sessions": len(self._sessions),
                "parallel_coalescing": self.parallel_coalescing,
                "cache": self.cache.stats().to_payload(),
            }

    def __repr__(self) -> str:
        return (
            f"TranslationService({self.default_config.name!r}, "
            f"{self.requests} requests, {self.cache!r})"
        )
