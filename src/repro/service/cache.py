"""Content-addressed warm cache for completed translations.

The cache is keyed by ``(IR digest, engine fingerprint)``:

* the digest (:func:`repro.ir.digest.text_digest`) addresses the *program* —
  the same source text, however it reached the service, maps to the same
  entry;
* the fingerprint (:meth:`repro.outofssa.config.EngineConfig.fingerprint`)
  addresses the *semantics of the engine* — two differently-named configs
  with the same knobs share entries, two configs differing in any knob never
  do.

A hit returns the completed :class:`CachedTranslation` (output text + stats
snapshot) without parsing, analysing or translating anything.  Alongside the
result, the cache can retain the per-key :class:`WarmState`: the translated
:class:`~repro.ir.function.Function` object together with the
:class:`~repro.pipeline.analysis.AnalysisCache` the warm
:class:`~repro.pipeline.session.Session` drove through the pipeline.  That
cache left the run *patched* — the incremental liveness rows, the ``check``
backend's answer caches and the incremental interference matrix were fed the
passes' edit logs and re-stamped via the generation-stamp machinery — so a
JIT-style *edit and re-translate* of a hot function skips the cold
liveness/interference rebuilds entirely (see
``Session.apply_edits`` / ``TranslationService.retranslate``).

Eviction is LRU over completed results with the warm state evicted alongside
its entry; ``capacity=0`` disables caching (every request translates cold —
the baseline the throughput benchmark measures against).  All public methods
are thread-safe: one cache may be shared by every handler thread of a shard.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.ir.function import Function
from repro.pipeline.analysis import AnalysisCache

#: A cache key: ``(text digest of the source IR, engine fingerprint)``.
CacheKey = Tuple[str, str]


@dataclass
class CachedTranslation:
    """One completed translation, addressed by content."""

    digest: str
    fingerprint: str
    engine_name: str
    #: The translated function's canonical printed form (what a hit returns).
    ir_text: str
    #: Wall-clock seconds of the original cold translation (parse included).
    seconds: float
    #: JSON-safe snapshot of the run's :class:`~repro.outofssa.result.OutOfSSAStats`.
    stats: Dict[str, object] = field(default_factory=dict)
    #: Times this entry was served instead of re-translating.
    hits: int = 0

    @property
    def key(self) -> CacheKey:
        return (self.digest, self.fingerprint)


@dataclass
class WarmState:
    """The reusable per-function artifacts retained next to a result.

    ``function`` is the translated (out-of-SSA) function object and
    ``analyses`` the analysis cache that rode through its translation —
    patched, not recomputed, across isolation and materialization.  The
    ``session`` reference keeps the pair bound to the warm session that owns
    the cache, so a re-translation goes back through the same warm path.
    """

    function: Function
    analyses: AnalysisCache
    session: object = None  #: the owning warm Session (opaque here)


@dataclass
class CacheStats:
    """Counters describing one cache (all monotone except ``entries``)."""

    entries: int = 0
    warm_states: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    flushes: int = 0
    capacity: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_payload(self) -> Dict[str, object]:
        return {
            "entries": self.entries,
            "warm_states": self.warm_states,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "evictions": self.evictions,
            "flushes": self.flushes,
            "capacity": self.capacity,
        }


class TranslationCache:
    """LRU cache of completed translations plus their warm state."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._results: "OrderedDict[CacheKey, CachedTranslation]" = OrderedDict()
        self._warm: Dict[CacheKey, WarmState] = {}
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._flushes = 0

    # -- lookup / store --------------------------------------------------------
    def lookup(self, digest: str, fingerprint: str) -> Optional[CachedTranslation]:
        """The cached translation for this key, or ``None`` (counted as a miss)."""
        key = (digest, fingerprint)
        with self._lock:
            entry = self._results.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._results.move_to_end(key)
            entry.hits += 1
            self._hits += 1
            return entry

    def store(
        self,
        entry: CachedTranslation,
        warm_state: Optional[WarmState] = None,
    ) -> None:
        """Install a completed translation (and optionally its warm state).

        With ``capacity=0`` this is a no-op: the disabled cache never holds
        anything, which is what makes it the cold baseline.
        """
        if self.capacity == 0:
            return
        with self._lock:
            key = entry.key
            self._results[key] = entry
            self._results.move_to_end(key)
            if warm_state is not None:
                self._warm[key] = warm_state
            while len(self._results) > self.capacity:
                evicted_key, _ = self._results.popitem(last=False)
                self._drop_warm(evicted_key)
                self._evictions += 1

    def warm_state(self, digest: str, fingerprint: str) -> Optional[WarmState]:
        """The retained warm state for this key, if any (not a hit/miss event)."""
        with self._lock:
            return self._warm.get((digest, fingerprint))

    def detach_warm(self, digest: str, fingerprint: str) -> Optional[WarmState]:
        """Remove and return a warm state *without* releasing its session.

        Used by ``retranslate``: after in-place edits the function belongs to
        the edited program's digest, so the state moves keys — the old
        result entry stays valid (its stored text still answers the old
        program) but must no longer alias the mutated function, and evicting
        it must not drop the analysis cache the new key depends on.
        """
        with self._lock:
            return self._warm.pop((digest, fingerprint), None)

    def _drop_warm(self, key: CacheKey) -> None:
        state = self._warm.pop(key, None)
        if state is not None and state.session is not None:
            # Release the session's per-function analysis cache along with
            # the entry, or a long-lived warm session would leak functions.
            state.session.forget(state.function)

    # -- maintenance -----------------------------------------------------------
    def flush(self) -> int:
        """Drop every entry and warm state; returns how many entries held."""
        with self._lock:
            count = len(self._results)
            for key in list(self._warm):
                self._drop_warm(key)
            self._results.clear()
            self._flushes += 1
            return count

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                entries=len(self._results),
                warm_states=len(self._warm),
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                flushes=self._flushes,
                capacity=self.capacity,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._results)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._results

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"TranslationCache({stats.entries}/{self.capacity} entries, "
            f"{stats.hits} hits, {stats.misses} misses)"
        )
