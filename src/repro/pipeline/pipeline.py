"""Declarative pass pipeline over one function.

``Pipeline.for_engine("us_i")`` (or any :class:`EngineConfig` /
:class:`EngineConfigBuilder`) yields the paper's four out-of-SSA phases,
optionally preceded by the SSA front half, as one introspectable run::

    pipeline = Pipeline.for_engine("us_i", construct_ssa=True, optimize=True)
    result = pipeline.run(function)          # an OutOfSSAResult
    print(pipeline.describe())               # pass names + engine knobs
    print(result.pass_seconds)               # wall-clock per pass

The :class:`PassManager` executes the passes and enforces the analysis
contract: after every pass that is not marked ``PRESERVES_ALL``, the
:class:`~repro.pipeline.analysis.AnalysisCache` is invalidated down to the
pass's declared preserve-set, so no later pass can observe a stale dominator
tree, liveness row or value table.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Union

from repro.coalescing.variants import CoalescingVariant, variant_by_name
from repro.ir.function import Function
from repro.outofssa.config import DEFAULT_ENGINE, EngineConfig, EngineConfigBuilder, engine_by_name
from repro.outofssa.result import OutOfSSAResult, OutOfSSAStats
from repro.pipeline.analysis import AnalysisCache
from repro.pipeline.passes import (
    PRESERVES_ALL,
    CallingConventionPass,
    ConstructSSAPass,
    FoldCopiesPass,
    Pass,
    RemoveDeadCodePass,
    ValueNumberPass,
)
from repro.pipeline.phases import out_of_ssa_passes
from repro.utils.instrument import AllocationTracker, track_allocations

EngineLike = Union[EngineConfig, EngineConfigBuilder, str]


def resolve_engine(engine: EngineLike) -> EngineConfig:
    """Normalise a name / builder / config into an :class:`EngineConfig`."""
    if isinstance(engine, EngineConfig):
        return engine
    if isinstance(engine, EngineConfigBuilder):
        return engine.build()
    if isinstance(engine, str):
        return engine_by_name(engine)
    raise TypeError(f"cannot resolve engine from {type(engine).__name__}")


# --------------------------------------------------------------------------- context
@dataclass
class PipelineContext:
    """Everything a pass may read or write during one run."""

    function: Function
    config: EngineConfig
    analyses: AnalysisCache
    stats: OutOfSSAStats
    tracker: AllocationTracker
    variant: CoalescingVariant
    #: Explicit frequency override (profile data); the interference phase
    #: fills it from the cache when absent and later phases reuse it.
    frequencies: Optional[Dict[str, float]] = None
    # -- inter-pass scratch state (filled by the out-of-SSA phases) ----------
    insertion: Optional[object] = None      #: PhiCopyInsertion
    affinities: List = field(default_factory=list)
    universe: List = field(default_factory=list)
    test: Optional[object] = None           #: InterferenceOracle backend
    graph: Optional[object] = None          #: its InterferenceGraph, when built
    classes: Optional[object] = None        #: CongruenceClasses
    coalescing: Optional[object] = None     #: CoalescingStats
    rename_map: Dict = field(default_factory=dict)
    #: Analyses the *current* pass patched in place (rather than invalidated);
    #: the PassManager adds them to the pass's preserve-set, re-stamps their
    #: generation, and clears this list before the next pass runs.
    patched_analyses: List[type] = field(default_factory=list)
    #: Whether the analysis cache was handed in by the caller (who may keep
    #: querying it after the run) rather than created for this run.  Pure
    #: post-run conveniences — like patching the LivenessChecker's answer
    #: caches across materialization — are skipped for run-private caches,
    #: which nobody can observe afterwards.
    external_cache: bool = False
    #: Wall-clock seconds per pass name (accumulated by the PassManager).
    pass_seconds: Dict[str, float] = field(default_factory=dict)
    #: Set to a list by the verifier (full level) before materialization runs;
    #: materialize() then appends one ``(block label, pairs, copies)`` record
    #: per lowered parallel copy for the sequentialization check.
    lowered_pcopies: Optional[List] = None


# --------------------------------------------------------------------------- manager
class PassManager:
    """Runs a pass sequence and applies the analysis-invalidation contract."""

    def __init__(self, passes: Iterable[Pass] = ()) -> None:
        self._passes: List[Pass] = list(passes)

    @property
    def passes(self) -> List[Pass]:
        return list(self._passes)

    def add(self, pass_: Pass) -> "PassManager":
        self._passes.append(pass_)
        return self

    def run(self, ctx: PipelineContext, verifier=None) -> None:
        for pass_ in self._passes:
            if verifier is not None:
                # Checker time accrues to the verifier's report, never to the
                # per-pass timings below.
                verifier.before_pass(pass_.name, ctx)
            start = time.perf_counter()
            pass_.run(ctx)
            ctx.pass_seconds[pass_.name] = (
                ctx.pass_seconds.get(pass_.name, 0.0) + time.perf_counter() - start
            )
            if hasattr(pass_, "preserved"):
                preserves = pass_.preserved(ctx)
            else:
                preserves = getattr(pass_, "preserves", ())
            if preserves is not PRESERVES_ALL:
                ctx.analyses.invalidate_all(preserve=preserves)
            ctx.patched_analyses = []


# --------------------------------------------------------------------------- pipeline
class Pipeline:
    """A named pass sequence bound to one engine configuration."""

    def __init__(
        self,
        passes: Iterable[Pass],
        config: EngineLike = DEFAULT_ENGINE,
        name: Optional[str] = None,
    ) -> None:
        self.config = resolve_engine(config)
        self.manager = PassManager(passes)
        self.name = name if name is not None else self.config.name

    @property
    def passes(self) -> List[Pass]:
        return self.manager.passes

    def describe(self) -> str:
        """Pass names plus the engine knobs, for ``repro list`` style output."""
        chain = " -> ".join(pass_.name for pass_ in self.manager.passes)
        return f"{chain} ({self.config.describe()})"

    def __repr__(self) -> str:
        return f"Pipeline({self.name!r}, {len(self.manager.passes)} passes)"

    # -- construction ---------------------------------------------------------
    @classmethod
    def for_engine(
        cls,
        engine: EngineLike = DEFAULT_ENGINE,
        *,
        construct_ssa: bool = False,
        optimize: bool = False,
        abi: bool = False,
    ) -> "Pipeline":
        """The standard pipeline for one engine configuration.

        ``engine`` may be an engine name (``engine_by_name`` semantics, so an
        unknown name raises :class:`KeyError`), an :class:`EngineConfig`, or an
        :class:`EngineConfigBuilder` (built here).  The keyword flags prepend
        the SSA front half: construction, then the conventionality-breaking
        optimizations, then calling-convention pinning — the same order the
        CLI ``translate`` command always applied.
        """
        config = resolve_engine(engine)
        passes: List[Pass] = []
        if construct_ssa:
            passes.append(ConstructSSAPass())
        if optimize:
            passes.extend([ValueNumberPass(), FoldCopiesPass(), RemoveDeadCodePass()])
        if abi:
            passes.append(CallingConventionPass())
        passes.extend(out_of_ssa_passes())
        return cls(passes, config=config)

    # -- execution ------------------------------------------------------------
    def run(
        self,
        function: Function,
        frequencies: Optional[Dict[str, float]] = None,
        tracker: Optional[AllocationTracker] = None,
        cache: Optional[AnalysisCache] = None,
    ) -> OutOfSSAResult:
        """Run every pass over ``function`` (in place) and collect the result.

        ``cache`` lets callers pre-seed or observe the analysis layer; it must
        be a cache of this very function.
        """
        tracker = tracker if tracker is not None else AllocationTracker()
        stats = OutOfSSAStats()
        stats.core = self.config.core
        external_cache = cache is not None
        if cache is None:
            cache = AnalysisCache(function, self.config)
        elif cache.function is not function:
            raise ValueError("analysis cache belongs to a different function")
        elif cache.config != self.config:
            # A mismatched cache would silently build the *cache's* liveness
            # backend while the result claims this pipeline's engine ran.
            raise ValueError(
                f"analysis cache was built for engine {cache.config.name!r}, "
                f"not {self.config.name!r}"
            )
        ctx = PipelineContext(
            function=function,
            config=self.config,
            analyses=cache,
            stats=stats,
            tracker=tracker,
            variant=variant_by_name(self.config.coalescing),
            frequencies=dict(frequencies) if frequencies is not None else None,
            external_cache=external_cache,
        )
        verifier = None
        if self.config.verify_level != "off":
            # Lazy import: the verify package sits above the pipeline layer.
            from repro.verify.stages import PipelineVerifier

            verifier = PipelineVerifier(function, self.config.verify_level)
        start = time.perf_counter()
        with track_allocations(tracker):
            self.manager.run(ctx, verifier=verifier)
            if verifier is not None:
                verifier.after_run(ctx)
        stats.elapsed_seconds = time.perf_counter() - start
        report = None
        if verifier is not None:
            report = verifier.report
            stats.verify_ms = report.seconds * 1e3
            stats.verify_diagnostics = len(report.diagnostics)
            stats.verify_errors = len(report.errors)
            stats.verify_warnings = len(report.warnings)
        return OutOfSSAResult(
            function=function,
            config=self.config,
            stats=stats,
            tracker=tracker,
            rename_map=ctx.rename_map,
            pass_seconds=dict(ctx.pass_seconds),
            verify_report=report,
        )
