"""The paper's four out-of-SSA phases as pipeline passes (§III).

These are the phases the legacy monolithic ``destruct_ssa`` ran inline, now
split into pass objects over a shared :class:`~repro.pipeline.analysis.AnalysisCache`:

1. :class:`IsolationPass` — Method I parallel-copy insertion for every
   φ-function; φ congruence classes and register-pinned groups are
   pre-coalesced later, once the interference machinery exists.
2. :class:`InterferencePass` — liveness, live-range intersection, SSA values
   and the configured interference *backend* (``matrix`` / ``query`` /
   ``incremental``, see :mod:`repro.interference.base`), registered in the
   :class:`~repro.pipeline.analysis.AnalysisCache` over the run's restricted
   candidate universe and sharing the liveness backend's variable numbering.
3. :class:`CoalescingPass` — aggressive, weight-driven coalescing of all
   copy-related affinities (Figure 5 variants), optionally followed by the
   copy-sharing post-pass.
4. :class:`MaterializationPass` — rename to congruence-class representatives,
   drop φs, sequentialize surviving parallel copies (Algorithm 1).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.coalescing.engine import Affinity, AggressiveCoalescer, collect_affinities
from repro.coalescing.sharing import apply_copy_sharing
from repro.interference.congruence import CongruenceClasses
from repro.interference.graph import IncrementalMatrixInterference
from repro.ir.editlog import EditLog
from repro.ir.flat import FlatFunction
from repro.ir.function import Function
from repro.ir.instructions import Constant, Copy, ParallelCopy, Variable
from repro.liveness.bitsets import BitLivenessSets
from repro.liveness.dataflow import LivenessSets
from repro.liveness.incremental import IncrementalBitLiveness
from repro.liveness.livecheck import LivenessChecker
from repro.liveness.numbering import VariableNumbering
from repro.outofssa.method_i import PhiCopyInsertion, insert_phi_copies
from repro.outofssa.parallel_copy import sequentialize_parallel_copy
from repro.outofssa.pinning import pinned_register_groups
from repro.pipeline.analysis import (
    INTERFERENCE_CLASSES,
    BlockFrequencies,
    build_interference_backend,
)
from repro.pipeline.passes import PRESERVES_ALL, Pass


def candidate_universe(
    function: Function,
    insertion: PhiCopyInsertion,
    affinities: List[Affinity],
) -> List[Variable]:
    """The φ-related and copy-related variables (the paper's restricted universe)."""
    seen: Dict[Variable, None] = {}
    for members in insertion.phi_nodes:
        for var in members:
            seen.setdefault(var, None)
    for affinity in affinities:
        seen.setdefault(affinity.dst, None)
        seen.setdefault(affinity.src, None)
    for var in function.pinned:
        seen.setdefault(var, None)
    return list(seen)


def _patch_incremental_analyses(ctx, log: EditLog, include_checker: bool = True) -> None:
    """Feed one edit log to every cached analysis able to consume it.

    The order matters: the incremental liveness rows first (the matrix
    backend locates its dirty blocks through them), then the liveness
    checker's per-variable caches, then the incremental interference matrix.
    Every patched analysis is vouched for via ``ctx.patched_analyses`` so the
    :class:`~repro.pipeline.pipeline.PassManager` re-stamps instead of
    dropping it.
    """
    cache = ctx.analyses
    flat: Optional[FlatFunction] = cache.cached(FlatFunction)
    live: Optional[IncrementalBitLiveness] = cache.cached(IncrementalBitLiveness)
    checker: Optional[LivenessChecker] = (
        cache.cached(LivenessChecker) if include_checker else None
    )
    matrix: Optional[IncrementalMatrixInterference] = cache.cached(
        IncrementalMatrixInterference
    )
    if flat is not None:
        # The arena first: it is pure representation (nothing below reads it
        # on the warm path), and patching keeps it serveable for any later
        # cold rebuild instead of being dropped and re-lowered from scratch.
        flat.apply_edits(log)
        ctx.patched_analyses.append(FlatFunction)
    if live is not None:
        live.apply_edits(log)
        # The numbering only grew (append-only), so it is vouched for too;
        # dropping it would hand later consumers a second instance with
        # different indices than the preserved rows.
        ctx.patched_analyses.extend([IncrementalBitLiveness, VariableNumbering])
    if checker is not None:
        checker.apply_edits(log)
        ctx.patched_analyses.append(LivenessChecker)
    if matrix is not None:
        if matrix.oracle.liveness is not live:
            # The matrix rides on its own bit-liveness instance (the engine's
            # configured backend is a different one): patch it first.
            matrix.oracle.liveness.apply_edits(log)
        matrix.apply_edits(log)
        ctx.patched_analyses.extend([IncrementalMatrixInterference, VariableNumbering])


def _has_incremental_consumers(ctx, include_checker: bool = True) -> bool:
    cache = ctx.analyses
    return (
        cache.cached(IncrementalBitLiveness) is not None
        or (include_checker and cache.cached(LivenessChecker) is not None)
        or cache.cached(IncrementalMatrixInterference) is not None
    )


# --------------------------------------------------------------------------- phase 1
class IsolationPass(Pass):
    """Method I: isolate φ-functions behind parallel copies."""

    name = "isolate"
    preserves = ()  # inserts copies, may split blocks: everything is stale

    def run(self, ctx) -> None:
        # Warm-cache fast path (JIT re-translation): incremental liveness
        # rows, livecheck answer caches and the incremental interference
        # matrix all survive the insertion as a patch instead of a recompute.
        patchable = _has_incremental_consumers(ctx)

        insertion = insert_phi_copies(ctx.function, on_branch_def=ctx.config.on_branch_def)
        ctx.insertion = insertion
        ctx.stats.inserted_phi_copies = insertion.inserted_copy_count
        ctx.stats.split_blocks = len(insertion.split_blocks)

        if patchable:
            _patch_incremental_analyses(ctx, insertion.edit_log())


# --------------------------------------------------------------------------- phase 2
class InterferencePass(Pass):
    """Set up the analyses and the configured interference backend."""

    name = "interference"
    preserves = PRESERVES_ALL  # pure analysis: the function is not mutated

    def run(self, ctx) -> None:
        function = ctx.function
        config = ctx.config
        cache = ctx.analyses
        stats = ctx.stats

        # The explicit override (e.g. profile data handed to ``destruct_ssa``)
        # wins over the statically estimated frequencies.
        if ctx.frequencies is None:
            ctx.frequencies = cache.get(BlockFrequencies)

        liveness = cache.liveness()

        affinities = collect_affinities(function, ctx.insertion, ctx.frequencies)
        stats.affinities = len(affinities)

        universe = candidate_universe(function, ctx.insertion, affinities)
        stats.candidate_variables = len(universe)
        stats.num_blocks = len(function.blocks)
        if isinstance(liveness, (LivenessSets, BitLivenessSets)):
            stats.liveness_set_entries = sum(
                len(s) for s in liveness.live_in.values()
            ) + sum(len(s) for s in liveness.live_out.values())

        # The configured interference backend, registered in (and served from)
        # the analysis cache with the run's restricted candidate universe.
        # One dense numbering per run: the same instance backs the bit-set
        # liveness rows (when enabled) and the backend's half bit-matrix.
        backend_class = INTERFERENCE_CLASSES[config.interference]
        cached_backend = cache.cached(backend_class)
        if isinstance(cached_backend, IncrementalMatrixInterference):
            # Warm re-run: the matrix survived the previous run patched; only
            # candidates it has never seen need their edges scanned in.
            cached_backend.extend_universe(universe)
        else:
            cache.register(
                backend_class,
                lambda c, _cls=backend_class, _universe=universe: build_interference_backend(
                    c, universe=_universe, backend_class=_cls
                ),
            )
        test = cache.get(backend_class)
        stats.interference_backend = config.interference

        ctx.affinities = affinities
        ctx.universe = universe
        ctx.test = test
        ctx.graph = getattr(test, "graph", None)


# --------------------------------------------------------------------------- phase 3
class CoalescingPass(Pass):
    """Aggressive coalescing over congruence classes (+ optional sharing)."""

    name = "coalesce"
    # Classes and affinity marks are pipeline scratch state, not analyses; the
    # function itself is untouched until materialization.
    preserves = PRESERVES_ALL

    def run(self, ctx) -> None:
        config = ctx.config
        # The backend carries its own intersection oracle; the single-argument
        # form wires both sides of the congruence machinery to it.
        classes = CongruenceClasses(ctx.test, use_linear_check=config.linear_class_check)

        # Pre-coalesce φ-nodes and register-pinned groups.
        for members in ctx.insertion.phi_nodes:
            classes.make_class(members)
        for register, group in pinned_register_groups(ctx.function).items():
            classes.make_class(list(group), register=register)

        run_stats = self._coalesce(ctx, classes)
        ctx.stats.coalesced = run_stats.coalesced
        if ctx.variant.sharing:
            ctx.stats.shared = apply_copy_sharing(
                ctx.function, classes, ctx.test, run_stats.remaining_affinities
            )

        ctx.classes = classes
        ctx.coalescing = run_stats

    def _coalesce(self, ctx, classes: CongruenceClasses):
        """Run the coalescing loop itself — the seam subclasses override.

        The service's :class:`~repro.service.scheduler.ParallelCoalescingPass`
        replaces this with the class-row prefilter + serial confirmation
        sweep; everything around it (pre-coalescing, sharing, stats wiring)
        is shared so both spellings stay bit-identical by construction.
        """
        coalescer = AggressiveCoalescer(
            classes, skip_copy_pair=ctx.variant.skip_copy_pair, ordering=ctx.variant.ordering
        )
        return coalescer.run(ctx.affinities)


# --------------------------------------------------------------------------- phase 4
class MaterializationPass(Pass):
    """Rename to representatives, drop φs, sequentialize surviving copies."""

    name = "materialize"
    preserves = ()  # rewrites the whole function

    def run(self, ctx) -> None:
        function = ctx.function
        stats = ctx.stats

        # The backend's intersection oracle, fetched *before* mutating (the
        # generation-checked cache would rightly refuse to serve analyses
        # afterwards; the backend already holds its references).
        oracle = ctx.test.oracle
        # Patching the LivenessChecker across materialization only pays off
        # when someone can query the cache after the run (a caller-owned,
        # warm cache); for run-private caches it would be pure edit-logging
        # overhead on the hottest engines, so it is skipped.
        include_checker = ctx.external_cache
        edit_log = (
            EditLog() if _has_incremental_consumers(ctx, include_checker) else None
        )

        rename_map = build_rename_map(function, ctx.classes)
        shared_destinations = {
            affinity.dst
            for affinity in ctx.coalescing.remaining_affinities
            if affinity.shared
        }
        materialize(
            function, rename_map, shared_destinations, ctx.frequencies, stats,
            edit_log=edit_log, lowered=ctx.lowered_pcopies,
        )

        if edit_log is not None:
            if rename_map:
                edit_log.variables_renamed(rename_map)
            # The translated function's analyses are served patched, not
            # recomputed — e.g. to a register allocator running next.
            _patch_incremental_analyses(ctx, edit_log, include_checker)

        stats.pair_queries = ctx.classes.pair_queries
        stats.class_row_checks = ctx.classes.class_row_checks
        stats.intersection_queries = oracle.query_count
        stats.matrix_bytes = ctx.test.matrix_bytes()
        flat = ctx.analyses.cached(FlatFunction)
        if flat is not None:
            stats.lowering_ms = flat.lowering_seconds * 1e3
            stats.flat_bytes = flat.nbytes
        ctx.rename_map = rename_map


#: The out-of-SSA phase sequence every engine configuration runs.
def out_of_ssa_passes() -> List[Pass]:
    return [IsolationPass(), InterferencePass(), CoalescingPass(), MaterializationPass()]


# --------------------------------------------------------------------------- materialization helpers
def build_rename_map(
    function: Function, classes: CongruenceClasses
) -> Dict[Variable, Variable]:
    mapping: Dict[Variable, Variable] = {}
    for var in function.variables():
        representative = classes.representative(var) if classes.same_class(var, var) else var
        if representative != var:
            mapping[var] = representative
    return mapping


def _renamed(var: Variable, mapping: Dict[Variable, Variable]) -> Variable:
    return mapping.get(var, var)


def materialize(
    function: Function,
    mapping: Dict[Variable, Variable],
    shared_destinations,
    frequencies: Dict[str, float],
    stats,
    edit_log: Optional[EditLog] = None,
    lowered: Optional[List] = None,
) -> None:
    """Rename to representatives, drop φs, sequentialize surviving copies.

    When ``edit_log`` is given, every block whose instruction list changed is
    logged (with the φ/parallel-copy variables involved); the caller combines
    that with one ``variables_renamed`` entry for the rename map, which is
    what lets an incremental liveness patch itself over the materialized
    program.

    When ``lowered`` is given (a checked run), every lowered parallel copy
    appends a ``(block label, renamed pairs, emitted copies)`` record to it,
    which the verifier's sequentialization check replays.
    """

    def fresh() -> Variable:
        stats.sequentialization_temps += 1
        return function.new_variable("swap")

    def lower_pcopy(pcopy: ParallelCopy, block_label: str) -> List[Copy]:
        pairs = []
        seen_dsts = set()
        for dst, src in pcopy.pairs:
            if dst in shared_destinations:
                continue
            new_dst = _renamed(dst, mapping)
            new_src = _renamed(src, mapping) if isinstance(src, Variable) else src
            if isinstance(new_src, Variable) and new_dst == new_src:
                continue
            if new_dst in seen_dsts:
                # Duplicate destinations can only carry equal values (paper
                # §III-C); keep the first copy.
                continue
            seen_dsts.add(new_dst)
            pairs.append((new_dst, new_src))
        copies = sequentialize_parallel_copy(pairs, fresh)
        if lowered is not None:
            lowered.append((block_label, list(pairs), list(copies)))
        for copy in copies:
            if isinstance(copy.src, Constant):
                stats.constant_moves += 1
            else:
                stats.remaining_copies += 1
                stats.dynamic_copy_cost += frequencies.get(block_label, 1.0)
        return copies

    for block in function:
        label = block.label
        # Per-block edit accounting: whether the instruction list changed, and
        # which variables (beyond the globally-logged rename map) it involved.
        block_changed = False
        block_vars: List[Variable] = []

        def note_pcopy(pcopy: ParallelCopy, copies: List[Copy]) -> None:
            if edit_log is None:
                return
            for dst, src in pcopy.pairs:
                block_vars.append(dst)
                if isinstance(src, Variable):
                    block_vars.append(src)
            for copy in copies:
                block_vars.append(copy.dst)
                if isinstance(copy.src, Variable):
                    block_vars.append(copy.src)

        def renames_anything(instruction) -> bool:
            return any(var in mapping for var in instruction.uses()) or any(
                var in mapping for var in instruction.defs()
            )

        # φ-functions: after renaming every operand maps to the φ-node
        # representative, so they simply disappear.
        if block.phis:
            block_changed = True
            if edit_log is not None:
                for phi in block.phis:
                    block_vars.append(phi.dst)
                    block_vars.extend(phi.uses())
            block.phis = []

        prefix: List[Copy] = []
        if block.entry_pcopy is not None:
            prefix = lower_pcopy(block.entry_pcopy, label)
            note_pcopy(block.entry_pcopy, prefix)
            block_changed = True
            block.entry_pcopy = None

        new_body: List = []
        for instruction in block.body:
            if isinstance(instruction, ParallelCopy):
                copies = lower_pcopy(instruction, label)
                note_pcopy(instruction, copies)
                block_changed = True
                new_body.extend(copies)
                continue
            if edit_log is not None and renames_anything(instruction):
                block_changed = True
            instruction.replace_uses(mapping)  # type: ignore[arg-type]
            instruction.replace_defs(mapping)
            if isinstance(instruction, Copy):
                if isinstance(instruction.src, Variable) and instruction.src == instruction.dst:
                    # Dropped self-copy: the block changed even when the name
                    # was never renamed (an originally trivial copy).
                    block_changed = True
                    block_vars.append(instruction.dst)
                    continue
                if isinstance(instruction.src, Constant):
                    stats.constant_moves += 1
                else:
                    stats.remaining_copies += 1
                    stats.dynamic_copy_cost += frequencies.get(label, 1.0)
            new_body.append(instruction)

        suffix: List[Copy] = []
        if block.exit_pcopy is not None:
            suffix = lower_pcopy(block.exit_pcopy, label)
            note_pcopy(block.exit_pcopy, suffix)
            block_changed = True
            block.exit_pcopy = None

        block.body = prefix + new_body + suffix

        if block.terminator is not None:
            if edit_log is not None and renames_anything(block.terminator):
                block_changed = True
            block.terminator.replace_uses(mapping)  # type: ignore[arg-type]
            block.terminator.replace_defs(mapping)

        if edit_log is not None and block_changed:
            edit_log.block_rewritten(label, block_vars)

    function.invalidate_cfg()
