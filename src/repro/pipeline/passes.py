"""The ``Pass`` protocol and the SSA front-half passes.

A pass is an object with a ``name``, a ``run(ctx)`` method mutating the
:class:`~repro.pipeline.pipeline.PipelineContext`, and a ``preserves``
declaration consumed by the :class:`~repro.pipeline.pipeline.PassManager`:

* ``preserves = PRESERVES_ALL`` — the pass is a pure analysis / bookkeeping
  step; every cached analysis stays valid;
* ``preserves = (DominatorTree, ...)`` — the pass transforms the function but
  keeps the listed analyses valid; everything else is invalidated after it
  runs;
* ``preserves = ()`` (the default) — the pass invalidates every analysis.

The concrete passes here wrap the existing SSA front half (construction,
value numbering, copy folding, dead-code elimination, calling-convention
pinning); the four out-of-SSA phases live in :mod:`repro.pipeline.phases`.
"""

from __future__ import annotations

from repro.cfg.dominance import DominatorTree
from repro.outofssa.pinning import apply_calling_convention
from repro.pipeline.analysis import BlockFrequencies
from repro.ssa.cleanup import remove_dead_code
from repro.ssa.construction import construct_ssa
from repro.ssa.copy_folding import fold_copies, value_number

#: Sentinel ``preserves`` value: the pass keeps every analysis valid.
PRESERVES_ALL = "all"


class Pass:
    """Base class (and structural protocol) for pipeline passes."""

    #: Short kebab-case identifier shown by ``Pipeline.describe()``.
    name: str = "pass"
    #: Analyses kept valid across this pass: :data:`PRESERVES_ALL` or a tuple
    #: of analysis types; the default (empty tuple) invalidates everything.
    preserves = ()

    def run(self, ctx) -> None:
        raise NotImplementedError

    def preserved(self, ctx) -> object:
        """The preserve-set for *this* run (consumed by the ``PassManager``).

        Defaults to the static :attr:`preserves` declaration, widened by any
        analyses the pass body registered on ``ctx.patched_analyses`` — the
        in-place patching hook (e.g. a materialization that updated the
        incremental liveness rows instead of invalidating them).
        """
        patched = tuple(getattr(ctx, "patched_analyses", ()))
        if self.preserves is PRESERVES_ALL:
            return PRESERVES_ALL
        return tuple(self.preserves) + patched

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class FunctionPass(Pass):
    """Adapter turning a plain ``transform(function)`` callable into a pass."""

    def __init__(self, transform, name=None, preserves=()):
        self.transform = transform
        self.name = name if name is not None else transform.__name__.replace("_", "-")
        self.preserves = preserves

    def run(self, ctx) -> None:
        self.transform(ctx.function)


# --------------------------------------------------------------------------- front half
class ConstructSSAPass(Pass):
    """Bring a non-SSA function to strict (pruned) SSA form."""

    name = "construct-ssa"
    preserves = ()  # renames every variable and inserts φs

    def run(self, ctx) -> None:
        construct_ssa(ctx.function)


class ValueNumberPass(Pass):
    """Dominator-order value numbering (makes the SSA non-conventional)."""

    name = "value-number"
    # Rewrites instructions in place; the CFG (hence dominators and block
    # frequencies) survives, variable-level analyses do not.
    preserves = (DominatorTree, BlockFrequencies)

    def run(self, ctx) -> None:
        value_number(ctx.function)


class FoldCopiesPass(Pass):
    """SSA copy folding (the second conventionality breaker)."""

    name = "fold-copies"
    preserves = (DominatorTree, BlockFrequencies)

    def run(self, ctx) -> None:
        fold_copies(ctx.function)


class RemoveDeadCodePass(Pass):
    """Dead-code elimination over the SSA def-use structure."""

    name = "remove-dead-code"
    preserves = (DominatorTree, BlockFrequencies)

    def run(self, ctx) -> None:
        remove_dead_code(ctx.function)


class CallingConventionPass(Pass):
    """Apply register-renaming (ABI) constraints around calls."""

    name = "calling-convention"
    preserves = (DominatorTree, BlockFrequencies)

    def run(self, ctx) -> None:
        apply_calling_convention(ctx.function)
