"""Pass pipeline and shared analysis cache for the SSA → out-of-SSA stack.

The subsystem has four layers:

* :mod:`repro.pipeline.analysis` — :class:`AnalysisCache`, the shared analysis
  layer with explicit ``invalidate()`` / ``preserve()`` semantics;
* :mod:`repro.pipeline.passes` — the :class:`Pass` protocol and the SSA
  front-half passes;
* :mod:`repro.pipeline.phases` — the paper's four out-of-SSA phases as passes;
* :mod:`repro.pipeline.pipeline` / :mod:`repro.pipeline.session` —
  :class:`Pipeline` / :class:`PassManager` execution and the batch
  :class:`Session` entry point.

``destruct_ssa`` in :mod:`repro.outofssa.driver` is a thin wrapper over
``Pipeline.for_engine(config).run(function)``.
"""

from repro.pipeline.analysis import AnalysisCache, BlockFrequencies, LIVENESS_CLASSES
from repro.pipeline.passes import (
    PRESERVES_ALL,
    CallingConventionPass,
    ConstructSSAPass,
    FoldCopiesPass,
    FunctionPass,
    Pass,
    RemoveDeadCodePass,
    ValueNumberPass,
)
from repro.pipeline.phases import (
    CoalescingPass,
    InterferencePass,
    IsolationPass,
    MaterializationPass,
    out_of_ssa_passes,
)
from repro.pipeline.pipeline import (
    PassManager,
    Pipeline,
    PipelineContext,
    resolve_engine,
)
from repro.pipeline.session import Session

__all__ = [
    "AnalysisCache",
    "BlockFrequencies",
    "LIVENESS_CLASSES",
    "PRESERVES_ALL",
    "Pass",
    "FunctionPass",
    "ConstructSSAPass",
    "ValueNumberPass",
    "FoldCopiesPass",
    "RemoveDeadCodePass",
    "CallingConventionPass",
    "IsolationPass",
    "InterferencePass",
    "CoalescingPass",
    "MaterializationPass",
    "out_of_ssa_passes",
    "PassManager",
    "Pipeline",
    "PipelineContext",
    "resolve_engine",
    "Session",
]
