"""The shared analysis layer of the pass pipeline.

The out-of-SSA phases consume a small, fixed family of analyses — dominator
tree, dense variable numbering, a liveness oracle, live-range intersection,
SSA values, block frequencies.  The legacy driver constructed all of them
privately per run; the :class:`AnalysisCache` gives them ownership semantics:

* analyses are keyed by their *type* and built lazily on :meth:`get`;
* builders may request other analyses, and those requests are recorded as
  dependencies, so invalidating the dominator tree also drops everything
  computed from it (intersection oracle, value table, frequencies);
* transformation passes declare what they :attr:`~repro.pipeline.passes.Pass.preserves`
  and the :class:`~repro.pipeline.pipeline.PassManager` calls
  :meth:`invalidate_all` with that preserve-set after each pass, so a stale
  analysis is never served.

Sharing falls out of the keying: the bit-set liveness rows and the
interference bit-matrix both request :class:`~repro.liveness.numbering.VariableNumbering`
from the cache and therefore index their bits identically — one numbering
instance per engine run, the ROADMAP follow-up.

A worked example — build, share, mutate, get caught:

>>> from repro.ir.parser import parse_function
>>> from repro.liveness.numbering import VariableNumbering
>>> from repro.pipeline.analysis import AnalysisCache, StaleAnalysisError
>>> function = parse_function('''
... function double(a) {
...   entry:
...     b = add a, a
...     jump done
...   done:
...     ret b
... }''')
>>> cache = AnalysisCache(function)
>>> numbering = cache.get(VariableNumbering)      # built lazily...
>>> cache.get(VariableNumbering) is numbering     # ...then served cached
True
>>> cache.constructions[VariableNumbering]
1

Every analysis is stamped with the function's structural *generation*; a CFG
mutation nobody declared turns the next ``get`` into a loud error instead of
a silently-stale serve:

>>> _ = function.split_edge("entry", "done")      # mutation, no invalidation
>>> cache.get(VariableNumbering)  # doctest: +ELLIPSIS
Traceback (most recent call last):
    ...
repro.pipeline.analysis.StaleAnalysisError: VariableNumbering was computed at CFG generation ... a pass mutated the CFG without declaring an invalidation ...

Passes declare what survives; preserving *vouches* (re-stamps) and anything
else is dropped and lazily rebuilt:

>>> cache.preserve(VariableNumbering)             # "still valid, I promise"
>>> cache.get(VariableNumbering) is numbering
True
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Set, Type

from repro.cfg.dominance import DominatorTree
from repro.cfg.frequency import estimate_block_frequencies
from repro.coalescing.variants import variant_by_name
from repro.interference.base import InterferenceKind, InterferenceOracle, QueryInterference
from repro.interference.flatcore import (
    FlatIncrementalMatrixInterference,
    FlatMatrixInterference,
)
from repro.interference.graph import IncrementalMatrixInterference, MatrixInterference
from repro.ir.flat import FlatFunction
from repro.ir.function import Function
from repro.liveness.base import LivenessOracle
from repro.liveness.bitsets import BitLivenessSets
from repro.liveness.dataflow import LivenessSets
from repro.liveness.flatcore import FlatBitLiveness, FlatIncrementalBitLiveness
from repro.liveness.incremental import IncrementalBitLiveness
from repro.liveness.intersection import IntersectionOracle
from repro.liveness.livecheck import LivenessChecker
from repro.liveness.numbering import VariableNumbering
from repro.outofssa.config import (
    DEFAULT_ENGINE,
    INTERFERENCE_BACKENDS,
    LIVENESS_BACKENDS,
    EngineConfig,
)
from repro.ssa.values import ValueTable


class BlockFrequencies(dict):
    """Estimated execution frequency per block label, as an analysis result."""


class StaleAnalysisError(RuntimeError):
    """A cached analysis was requested after an undeclared CFG mutation.

    Raised by :meth:`AnalysisCache.get` when the function's structural
    generation advanced past the generation the analysis was stamped with:
    some code edited the CFG without going through a pass ``preserves``
    declaration (which re-stamps) or an explicit ``invalidate``/``preserve``
    call.  The old behaviour — silently serving the stale instance — is
    exactly the class of bug this guard exists to surface.
    """


#: The liveness oracle class backing each ``EngineConfig.liveness`` kind.
LIVENESS_CLASSES: Dict[str, Type[LivenessOracle]] = {
    "sets": LivenessSets,
    "bitsets": BitLivenessSets,
    "check": LivenessChecker,
    "incremental": IncrementalBitLiveness,
}
assert set(LIVENESS_CLASSES) == set(LIVENESS_BACKENDS)

#: The interference backend class behind each ``EngineConfig.interference``
#: kind — the same keying discipline as :data:`LIVENESS_CLASSES`.
INTERFERENCE_CLASSES: Dict[str, Type[InterferenceOracle]] = {
    "matrix": MatrixInterference,
    "query": QueryInterference,
    "incremental": IncrementalMatrixInterference,
}
assert set(INTERFERENCE_CLASSES) == set(INTERFERENCE_BACKENDS)


def build_interference_backend(
    cache: "AnalysisCache", universe=None, backend_class=None
) -> InterferenceOracle:
    """Construct the interference backend the cache's engine selects.

    ``universe`` restricts the matrix backends to the paper's candidate set
    (the :class:`~repro.pipeline.phases.InterferencePass` computes it and
    registers a closed-over builder); without it the universe defaults to
    every function variable — the right thing for direct/analysis use.

    The interference notion comes from the engine's coalescing variant; the
    :class:`~repro.ssa.values.ValueTable` is requested from the cache
    unconditionally, exactly as the pass always has (so the measured Figure 7
    footprints stay comparable across backends).  The ``incremental`` backend
    needs bit-set liveness rows underneath; when the engine's own liveness
    backend is not :class:`~repro.liveness.incremental.IncrementalBitLiveness`
    a dedicated instance is requested from the cache to back the matrix.

    Cache keys stay the *base* backend types regardless of the engine's
    ``core``: with ``core="flat"`` the matrix-backed entries are constructed
    as their flat-core subclasses (sharing the cached
    :class:`~repro.ir.flat.FlatFunction` arena), which every ``isinstance``
    check and patch hook downstream sees through unchanged.
    """
    function = cache.function
    kind: InterferenceKind = variant_by_name(cache.config.coalescing).interference
    values = cache.get(ValueTable)
    flat_core = cache.config.core == "flat"
    if backend_class is None:
        backend_class = cache.interference_class()
    if backend_class is IncrementalMatrixInterference:
        live = cache.get(IncrementalBitLiveness)
        if cache.liveness_class() is IncrementalBitLiveness:
            oracle = cache.get(IntersectionOracle)
        else:
            oracle = IntersectionOracle(function, live, cache.get(DominatorTree))
        if flat_core:
            return FlatIncrementalMatrixInterference(
                function, oracle, kind, values,
                universe=universe, numbering=cache.get(VariableNumbering),
                flat=cache.get(FlatFunction),
            )
        return IncrementalMatrixInterference(
            function, oracle, kind, values,
            universe=universe, numbering=cache.get(VariableNumbering),
        )
    oracle = cache.get(IntersectionOracle)
    if backend_class is MatrixInterference:
        if flat_core:
            return FlatMatrixInterference(
                function, oracle, kind, values,
                universe=universe, numbering=cache.get(VariableNumbering),
                flat=cache.get(FlatFunction),
            )
        return MatrixInterference(
            function, oracle, kind, values,
            universe=universe, numbering=cache.get(VariableNumbering),
        )
    return QueryInterference(function, oracle, kind, values)


AnalysisBuilder = Callable[["AnalysisCache"], object]

def _build_bit_liveness(cache: "AnalysisCache") -> BitLivenessSets:
    """Bit-set liveness under the `BitLivenessSets` cache key; the engine's
    ``core`` knob decides the construction (flat arena vs object walk) —
    the instances are behaviourally and bit-for-bit interchangeable."""
    if cache.config.core == "flat":
        return FlatBitLiveness(
            cache.function,
            numbering=cache.get(VariableNumbering),
            flat=cache.get(FlatFunction),
        )
    return BitLivenessSets(cache.function, numbering=cache.get(VariableNumbering))


def _build_incremental_liveness(cache: "AnalysisCache") -> IncrementalBitLiveness:
    """Same dispatch for the `IncrementalBitLiveness` cache key."""
    if cache.config.core == "flat":
        return FlatIncrementalBitLiveness(
            cache.function,
            numbering=cache.get(VariableNumbering),
            flat=cache.get(FlatFunction),
        )
    return IncrementalBitLiveness(
        cache.function, numbering=cache.get(VariableNumbering)
    )


_DEFAULT_BUILDERS: Dict[type, AnalysisBuilder] = {
    DominatorTree: lambda cache: DominatorTree(cache.function),
    VariableNumbering: lambda cache: VariableNumbering.of_function(cache.function),
    FlatFunction: lambda cache: FlatFunction(
        cache.function, cache.get(VariableNumbering)
    ),
    LivenessSets: lambda cache: LivenessSets(cache.function),
    BitLivenessSets: _build_bit_liveness,
    IncrementalBitLiveness: _build_incremental_liveness,
    LivenessChecker: lambda cache: LivenessChecker(cache.function),
    IntersectionOracle: lambda cache: IntersectionOracle(
        cache.function, cache.liveness(), cache.get(DominatorTree)
    ),
    ValueTable: lambda cache: ValueTable(cache.function, cache.get(DominatorTree)),
    BlockFrequencies: lambda cache: BlockFrequencies(
        estimate_block_frequencies(cache.function, domtree=cache.get(DominatorTree))
    ),
    QueryInterference: lambda cache: build_interference_backend(
        cache, backend_class=QueryInterference
    ),
    MatrixInterference: lambda cache: build_interference_backend(
        cache, backend_class=MatrixInterference
    ),
    IncrementalMatrixInterference: lambda cache: build_interference_backend(
        cache, backend_class=IncrementalMatrixInterference
    ),
}


class AnalysisCache:
    """Lazily-built, explicitly-invalidated analyses of one function."""

    def __init__(self, function: Function, config: EngineConfig = DEFAULT_ENGINE) -> None:
        self.function = function
        self.config = config
        self._builders: Dict[type, AnalysisBuilder] = dict(_DEFAULT_BUILDERS)
        self._instances: Dict[type, object] = {}
        #: Function generation each instance was computed at (or vouched for
        #: by a pass ``preserves`` declaration); checked on every serve.
        self._generations: Dict[type, int] = {}
        #: type -> analyses built *from* it (invalidated along with it).
        self._dependents: Dict[type, Set[type]] = {}
        self._build_stack: List[type] = []
        #: How many times each analysis type was constructed (introspection
        #: and the one-numbering-per-run acceptance test).
        self.constructions: Dict[type, int] = {}

    # -- registry ------------------------------------------------------------
    def register(self, analysis_type: type, builder: AnalysisBuilder) -> None:
        """Register (or replace) the builder for ``analysis_type``."""
        self._builders[analysis_type] = builder

    def known_types(self) -> List[type]:
        return list(self._builders)

    # -- construction / lookup -------------------------------------------------
    def get(self, analysis_type: type):
        """The (cached) analysis of ``analysis_type``, building it if needed.

        Raises :class:`StaleAnalysisError` when the cached instance predates a
        CFG mutation nobody declared; declaring one — a pass ``preserves``
        set, or an explicit :meth:`preserve` / :meth:`invalidate_all` —
        re-stamps the surviving analyses as valid at the new generation.
        """
        instance = self._instances.get(analysis_type)
        if instance is None:
            builder = self._builders.get(analysis_type)
            if builder is None:
                raise KeyError(
                    f"no builder registered for analysis {analysis_type.__name__!r}"
                )
            if self._build_stack:
                # The analysis being built depends on the one requested here.
                self._dependents.setdefault(analysis_type, set()).add(self._build_stack[-1])
            self._build_stack.append(analysis_type)
            try:
                instance = builder(self)
            finally:
                self._build_stack.pop()
            self._instances[analysis_type] = instance
            self._generations[analysis_type] = self.function.generation
            self.constructions[analysis_type] = self.constructions.get(analysis_type, 0) + 1
        else:
            stamped = self._generations.get(analysis_type)
            current = self.function.generation
            if stamped != current:
                raise StaleAnalysisError(
                    f"{analysis_type.__name__} was computed at CFG generation "
                    f"{stamped} but the function is now at generation {current}: "
                    f"a pass mutated the CFG without declaring an invalidation "
                    f"(declare it in ``preserves``, or call invalidate()/preserve())"
                )
            if self._build_stack:
                # Serving a cached analysis to a builder still creates a dependency.
                self._dependents.setdefault(analysis_type, set()).add(self._build_stack[-1])
        return instance

    def cached(self, analysis_type: type):
        """The cached instance, or ``None`` — never builds."""
        return self._instances.get(analysis_type)

    def put(self, analysis_type: type, instance) -> None:
        """Install a precomputed analysis (e.g. profile-derived frequencies)."""
        self._instances[analysis_type] = instance
        self._generations[analysis_type] = self.function.generation

    # -- liveness selection ----------------------------------------------------
    def liveness_class(self) -> Type[LivenessOracle]:
        """The oracle class selected by ``config.liveness``."""
        try:
            return LIVENESS_CLASSES[self.config.liveness]
        except KeyError:
            raise ValueError(
                f"unknown liveness oracle kind {self.config.liveness!r}"
            ) from None

    def liveness(self) -> LivenessOracle:
        """The liveness oracle selected by the engine configuration."""
        return self.get(self.liveness_class())

    # -- interference selection -------------------------------------------------
    def interference_class(self) -> Type[InterferenceOracle]:
        """The backend class selected by ``config.interference``."""
        try:
            return INTERFERENCE_CLASSES[self.config.interference]
        except KeyError:
            raise ValueError(
                f"unknown interference backend kind {self.config.interference!r}"
            ) from None

    def interference(self) -> InterferenceOracle:
        """The interference backend selected by the engine configuration."""
        return self.get(self.interference_class())

    # -- invalidation ----------------------------------------------------------
    def invalidate(self, *analysis_types: type) -> None:
        """Drop the given analyses *and* everything built from them."""
        worklist = list(analysis_types)
        while worklist:
            analysis_type = worklist.pop()
            if self._instances.pop(analysis_type, None) is not None:
                self._generations.pop(analysis_type, None)
                worklist.extend(self._dependents.pop(analysis_type, ()))

    def invalidate_all(self, preserve: Iterable[type] = ()) -> None:
        """Drop every cached analysis except the explicitly preserved ones.

        A preserved analysis keeps its dependency edges, so a later
        :meth:`invalidate` of one of its inputs still drops it.  Preserving is
        *vouching*: the survivors are re-stamped with the function's current
        generation, since whoever declared the preserve-set asserts they are
        still valid after whatever mutation just happened.
        """
        preserved = set(preserve)
        for analysis_type in list(self._instances):
            if analysis_type not in preserved:
                del self._instances[analysis_type]
                self._generations.pop(analysis_type, None)
            else:
                self._generations[analysis_type] = self.function.generation

    def preserve(self, *analysis_types: type) -> None:
        """Alias spelling ``invalidate_all(preserve=...)`` for pass bodies."""
        self.invalidate_all(preserve=analysis_types)

    def __contains__(self, analysis_type: type) -> bool:
        return analysis_type in self._instances

    def __repr__(self) -> str:
        cached = ", ".join(sorted(t.__name__ for t in self._instances)) or "empty"
        return f"AnalysisCache({cached})"
