"""Batch translation sessions.

A :class:`Session` owns one resolved :class:`~repro.pipeline.pipeline.Pipeline`
and reuses it — config resolution, variant lookup, pass objects — across many
functions, while keeping one :class:`~repro.utils.instrument.AllocationTracker`
per function so the Figure 7 per-function footprints stay observable.  This is
the entry point the CLI ``bench`` command and the ``benchmarks/`` harness run
on, and the shape a batch-serving deployment would wrap: one session per
engine, many functions through it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.ir.function import Function
from repro.outofssa.config import DEFAULT_ENGINE
from repro.outofssa.result import OutOfSSAResult
from repro.pipeline.pipeline import EngineLike, Pipeline
from repro.utils.instrument import AllocationTracker


class Session:
    """Translate many functions through one shared pipeline."""

    def __init__(
        self,
        engine: EngineLike = DEFAULT_ENGINE,
        *,
        construct_ssa: bool = False,
        optimize: bool = False,
        abi: bool = False,
    ) -> None:
        self.pipeline = Pipeline.for_engine(
            engine, construct_ssa=construct_ssa, optimize=optimize, abi=abi
        )
        # Running aggregates only: each result carries its own tracker, and
        # retaining them here would grow without bound in a long-lived session.
        self.functions_translated = 0
        self.total_seconds = 0.0
        self._total_allocated_bytes = 0
        self._max_peak_bytes = 0

    @property
    def config(self):
        return self.pipeline.config

    # -- translation ----------------------------------------------------------
    def translate(
        self,
        function: Function,
        frequencies: Optional[Dict[str, float]] = None,
    ) -> OutOfSSAResult:
        """Translate one function (in place, like ``destruct_ssa``)."""
        tracker = AllocationTracker()
        result = self.pipeline.run(function, frequencies=frequencies, tracker=tracker)
        self.functions_translated += 1
        self.total_seconds += result.stats.elapsed_seconds
        self._total_allocated_bytes += tracker.total()
        self._max_peak_bytes = max(self._max_peak_bytes, tracker.peak())
        return result

    def translate_many(self, functions: Iterable[Function]) -> List[OutOfSSAResult]:
        """Translate every function (each in place) through the shared pipeline."""
        return [self.translate(function) for function in functions]

    # -- aggregates -----------------------------------------------------------
    def total_memory_bytes(self) -> int:
        """Bytes allocated across all translations (running sum)."""
        return self._total_allocated_bytes

    def peak_memory_bytes(self) -> int:
        """Largest single-function peak footprint seen so far."""
        return self._max_peak_bytes

    def __repr__(self) -> str:
        return (
            f"Session({self.config.name!r}, "
            f"{self.functions_translated} functions translated)"
        )
