"""Batch translation sessions.

A :class:`Session` owns one resolved :class:`~repro.pipeline.pipeline.Pipeline`
and reuses it — config resolution, variant lookup, pass objects — across many
functions, while keeping one :class:`~repro.utils.instrument.AllocationTracker`
per function so the Figure 7 per-function footprints stay observable.  This is
the entry point the CLI ``bench`` command and the ``benchmarks/`` harness run
on, and the shape a batch-serving deployment would wrap: one session per
engine, many functions through it.

Warm mode (``Session(engine, warm=True)``) additionally retains one
:class:`~repro.pipeline.analysis.AnalysisCache` per *function object* and
hands it back to the pipeline on every translation of that function — the
JIT re-translation shape: the incremental liveness rows, the ``check``
backend's answer caches and the incremental interference matrix survive a
whole translation patched (the passes feed them their edit logs) and are
served warm on the next run instead of being rebuilt cold.  Between runs,
:meth:`Session.apply_edits` feeds externally-made structural edits (described
as an :class:`~repro.ir.editlog.EditLog`, exactly as the passes describe
their own) to every retained incremental analysis.  The translation *service*
(:mod:`repro.service`) runs entirely on this mode.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.interference.graph import IncrementalMatrixInterference
from repro.ir.editlog import EditLog
from repro.ir.function import Function
from repro.liveness.incremental import IncrementalBitLiveness
from repro.liveness.livecheck import LivenessChecker
from repro.liveness.numbering import VariableNumbering
from repro.outofssa.config import DEFAULT_ENGINE
from repro.outofssa.result import OutOfSSAResult
from repro.pipeline.analysis import AnalysisCache
from repro.pipeline.pipeline import EngineLike, Pipeline
from repro.utils.instrument import AllocationTracker


class Session:
    """Translate many functions through one shared pipeline."""

    def __init__(
        self,
        engine: EngineLike = DEFAULT_ENGINE,
        *,
        construct_ssa: bool = False,
        optimize: bool = False,
        abi: bool = False,
        warm: bool = False,
        pipeline: Optional[Pipeline] = None,
    ) -> None:
        """``pipeline`` overrides the standard ``Pipeline.for_engine``
        construction (the service uses it to swap in the parallel coalescing
        pass); ``engine`` is ignored when it is given."""
        if pipeline is not None:
            self.pipeline = pipeline
        else:
            self.pipeline = Pipeline.for_engine(
                engine, construct_ssa=construct_ssa, optimize=optimize, abi=abi
            )
        #: Warm mode: retain one analysis cache per function object and hand
        #: it to every re-translation of that function.
        self.warm = warm
        self._warm_caches: Dict[Function, AnalysisCache] = {}
        #: Translations that found a retained warm cache for their function.
        self.warm_reuses = 0
        # Running aggregates only: each result carries its own tracker, and
        # retaining them here would grow without bound in a long-lived session.
        self.functions_translated = 0
        self.total_seconds = 0.0
        self._total_allocated_bytes = 0
        self._max_peak_bytes = 0

    @property
    def config(self):
        return self.pipeline.config

    # -- translation ----------------------------------------------------------
    def translate(
        self,
        function: Function,
        frequencies: Optional[Dict[str, float]] = None,
    ) -> OutOfSSAResult:
        """Translate one function (in place, like ``destruct_ssa``)."""
        tracker = AllocationTracker()
        cache: Optional[AnalysisCache] = None
        if self.warm:
            cache = self._warm_caches.get(function)
            if cache is None:
                cache = AnalysisCache(function, self.config)
                self._warm_caches[function] = cache
            else:
                self.warm_reuses += 1
        result = self.pipeline.run(
            function, frequencies=frequencies, tracker=tracker, cache=cache
        )
        self.functions_translated += 1
        self.total_seconds += result.stats.elapsed_seconds
        self._total_allocated_bytes += tracker.total()
        self._max_peak_bytes = max(self._max_peak_bytes, tracker.peak())
        return result

    def translate_many(self, functions: Iterable[Function]) -> List[OutOfSSAResult]:
        """Translate every function (each in place) through the shared pipeline."""
        return [self.translate(function) for function in functions]

    # -- warm-cache management -------------------------------------------------
    def warm_cache(self, function: Function) -> Optional[AnalysisCache]:
        """The retained analysis cache of ``function`` (warm sessions only)."""
        return self._warm_caches.get(function)

    def forget(self, function: Function) -> bool:
        """Drop the retained analysis cache of one function (eviction hook)."""
        return self._warm_caches.pop(function, None) is not None

    def flush_warm(self) -> int:
        """Drop every retained analysis cache; returns how many were held."""
        count = len(self._warm_caches)
        self._warm_caches.clear()
        return count

    def apply_edits(self, function: Function, log: EditLog) -> None:
        """Patch the retained analyses of ``function`` from an edit log.

        Mirrors what the isolation/materialization passes do for their own
        edits: every cached analysis able to consume an edit log is patched
        in place (incremental liveness rows first — the matrix locates its
        dirty blocks through them — then the ``check`` backend's answer
        caches, then the incremental interference matrix) and re-stamped at
        the function's current generation; everything else is invalidated.
        The next :meth:`translate` of the function then starts warm instead
        of tripping the :class:`~repro.pipeline.analysis.StaleAnalysisError`
        guard or silently rebuilding cold.
        """
        cache = self._warm_caches.get(function)
        if cache is None:
            raise KeyError(
                f"no warm analysis cache retained for {function.name!r} "
                f"(is this a warm session that translated it?)"
            )
        patched: List[type] = []
        live = cache.cached(IncrementalBitLiveness)
        if live is not None:
            live.apply_edits(log)
            patched.extend([IncrementalBitLiveness, VariableNumbering])
        checker = cache.cached(LivenessChecker)
        if checker is not None:
            checker.apply_edits(log)
            patched.append(LivenessChecker)
        matrix = cache.cached(IncrementalMatrixInterference)
        if matrix is not None:
            if matrix.oracle.liveness is not live:
                matrix.oracle.liveness.apply_edits(log)
            matrix.apply_edits(log)
            patched.extend([IncrementalMatrixInterference, VariableNumbering])
        cache.invalidate_all(preserve=patched)

    # -- aggregates -----------------------------------------------------------
    def total_memory_bytes(self) -> int:
        """Bytes allocated across all translations (running sum)."""
        return self._total_allocated_bytes

    def peak_memory_bytes(self) -> int:
        """Largest single-function peak footprint seen so far."""
        return self._max_peak_bytes

    def __repr__(self) -> str:
        return (
            f"Session({self.config.name!r}, "
            f"{self.functions_translated} functions translated)"
        )
