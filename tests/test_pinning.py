"""Tests for register renaming constraints (pinned variables, §III-D)."""

import pytest

from repro.interp import run_function
from repro.ir.builder import FunctionBuilder
from repro.ir.instructions import Call, ParallelCopy, Variable
from repro.ir.validate import validate_ssa
from repro.outofssa.driver import destruct_ssa, engine_by_name
from repro.outofssa.pinning import apply_calling_convention, pinned_register_groups


def call_heavy_function():
    fb = FunctionBuilder("caller", params=("p", "q"))
    entry = fb.block("entry")
    with fb.at(entry):
        a = fb.op("add", "p", 1, name="a")
        r1 = fb.call("helper", a, "q", name="r1")
        r2 = fb.call("helper", r1, a, name="r2")
        total = fb.op("add", r1, r2, name="total")
        fb.print(total)
        fb.ret(total)
    return fb.finish()


class TestCallingConvention:
    def test_copies_inserted_and_pinned(self):
        function = call_heavy_function()
        result = apply_calling_convention(function)
        validate_ssa(function)
        # Two calls with two arguments and a result each.
        assert len(result.copies) == 6
        groups = pinned_register_groups(function)
        assert len(groups["R0"]) == 4      # two arg0 + two results
        assert len(groups["R1"]) == 2
        # Every call argument is now a pinned variable.
        for block in function:
            for instruction in block.body:
                if isinstance(instruction, Call):
                    assert all(arg in function.pinned for arg in instruction.uses())
                    assert instruction.dst in function.pinned

    def test_parallel_copies_surround_calls(self):
        function = call_heavy_function()
        apply_calling_convention(function)
        body = function.blocks["entry"].body
        call_positions = [i for i, instr in enumerate(body) if isinstance(instr, Call)]
        for position in call_positions:
            assert isinstance(body[position - 1], ParallelCopy)
            assert isinstance(body[position + 1], ParallelCopy)

    def test_semantics_preserved(self):
        args = [3, 4]
        expected = run_function(call_heavy_function(), args).observable()
        function = call_heavy_function()
        apply_calling_convention(function)
        assert run_function(function, args).observable() == expected

    def test_extra_arguments_left_unconstrained(self):
        fb = FunctionBuilder("many", params=("p",))
        entry = fb.block("entry")
        with fb.at(entry):
            r = fb.call("f", "p", 1, 2, 3, 4, 5, name="r")
            fb.ret(r)
        function = fb.finish()
        apply_calling_convention(function, argument_registers=("R0", "R1"))
        call = next(i for i in function.blocks["entry"].body if isinstance(i, Call))
        pinned_args = [arg for arg in call.args if arg in function.pinned]
        assert len(pinned_args) == 2


class TestDestructionWithConstraints:
    @pytest.mark.parametrize("engine", ["sreedhar_iii", "us_i", "us_i_linear_intercheck_livecheck"])
    def test_destruction_preserves_semantics(self, engine):
        args = [5, 2]
        expected = run_function(call_heavy_function(), args).observable()
        function = call_heavy_function()
        apply_calling_convention(function)
        destruct_ssa(function, engine_by_name(engine))
        assert run_function(function, args).observable() == expected

    def test_variables_pinned_to_different_registers_never_coalesce(self):
        function = call_heavy_function()
        apply_calling_convention(function)
        result = destruct_ssa(function, engine_by_name("us_i"))
        groups_by_register = {}
        for var, register in function.pinned.items():
            final_name = result.rename_map.get(var, var)
            groups_by_register.setdefault(register, set()).add(final_name)
        names_r0 = groups_by_register.get("R0", set())
        names_r1 = groups_by_register.get("R1", set())
        assert names_r0.isdisjoint(names_r1)

    def test_variables_pinned_to_same_register_share_a_name(self):
        function = call_heavy_function()
        apply_calling_convention(function)
        result = destruct_ssa(function, engine_by_name("us_i"))
        final_r0_names = {
            result.rename_map.get(var, var)
            for var, register in function.pinned.items()
            if register == "R0"
        }
        assert len(final_r0_names) == 1
