"""Wire-level tests of the pipelined ``repro-serve/2`` protocol.

Everything here speaks raw sockets against a live daemon — no client-library
help — so the frames asserted on are exactly the bytes a foreign client
would see: id echo on every response, out-of-order completion under
pipelining, streamed ``translate_batch`` frames, error responses (not dead
connections) for oversized/malformed frames, and explicit ``overloaded``
shedding under a tiny admission queue.
"""

import json
import socket

import pytest

from repro.bench.corpus import CorpusSpec, generate_stress_cfg
from repro.bench.generator import GeneratorConfig, generate_ssa_program
from repro.ir import format_function, parse_function
from repro.pipeline import Pipeline
from repro.service.server import TranslationServer

pytestmark = pytest.mark.filterwarnings("ignore::pytest.PytestUnhandledThreadExceptionWarning")


# --------------------------------------------------------------------------- plumbing
def _program(seed: int, size: int = 24) -> str:
    return format_function(generate_ssa_program(GeneratorConfig(seed=seed, size=size)))


def _big_program(seed: int = 7, blocks: int = 400) -> str:
    spec = CorpusSpec(name="wire", seed=seed, blocks=blocks, loop_depth=3, variables=8)
    return format_function(generate_stress_cfg(spec))


def _cold_reference(text: str, engine: str = "us_i") -> str:
    function = parse_function(text)
    Pipeline.for_engine(engine).run(function)
    return format_function(function)


class Wire:
    """A raw-socket protocol speaker: JSON lines out, JSON frames in."""

    def __init__(self, port: int, timeout: float = 30.0):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=timeout)
        self.file = self.sock.makefile("rwb")

    def send(self, **payload) -> None:
        self.file.write((json.dumps(payload) + "\n").encode("utf-8"))
        self.file.flush()

    def send_raw(self, data: bytes) -> None:
        self.file.write(data)
        self.file.flush()

    def read(self) -> dict:
        line = self.file.readline()
        assert line, "connection closed while a response was expected"
        return json.loads(line.decode("utf-8"))

    def read_until_id(self, wanted) -> dict:
        """Skip frames for other requests until ``wanted``'s arrives."""
        for _ in range(64):
            frame = self.read()
            if frame.get("id") == wanted:
                return frame
        raise AssertionError(f"no frame with id {wanted!r} within 64 frames")

    def close(self) -> None:
        try:
            self.file.close()
            self.sock.close()
        except OSError:
            pass


@pytest.fixture(scope="module")
def server():
    server = TranslationServer(("127.0.0.1", 0), engine="us_i", shards=2, workers=2)
    thread = server.serve_in_background()
    yield server
    server.shutdown()
    thread.join(timeout=10)
    server.server_close()


@pytest.fixture()
def wire(server):
    wire = Wire(server.port)
    yield wire
    wire.close()


# --------------------------------------------------------------------------- id routing & pipelining
class TestPipelining:
    def test_every_response_echoes_its_request_id(self, wire):
        wire.send(verb="ping", id="alpha")
        assert wire.read()["id"] == "alpha"
        wire.send(verb="stats", id=17)
        assert wire.read()["id"] == 17

    def test_idless_requests_answer_with_null_id(self, wire):
        wire.send(verb="ping")
        frame = wire.read()
        assert frame["ok"] and frame["id"] is None

    def test_light_verb_overtakes_inflight_translation(self, wire):
        """A ping pipelined behind a cold heavy translate answers first."""
        text = _big_program(seed=11)
        wire.send(verb="translate", ir=text, id="slow")
        wire.send(verb="ping", id="fast")
        first = wire.read()
        assert first["id"] == "fast", "inline verb should not queue behind heavy work"
        second = wire.read()
        assert second["id"] == "slow" and second["ok"]
        assert second["ir"] == _cold_reference(text)

    def test_pipelined_heavy_requests_complete_out_of_order(self, wire):
        """A tiny cold translate overtakes a much larger one on 2 workers.

        The programs must live on *different* shards: same-shard requests
        serialize on the shard's service lock, by design (digest affinity).
        """
        from repro.ir.digest import text_digest
        from repro.service.scheduler import shard_of

        big = _big_program(seed=12, blocks=600)
        big_shard = shard_of(text_digest(big), 2)
        small = next(
            text
            for text in (_program(seed=90 + n, size=6) for n in range(16))
            if shard_of(text_digest(text), 2) != big_shard
        )
        wire.send(verb="translate", ir=big, id="big")
        wire.send(verb="translate", ir=small, id="small")
        frames = [wire.read(), wire.read()]
        by_id = {frame["id"]: frame for frame in frames}
        assert set(by_id) == {"big", "small"} and all(f["ok"] for f in frames)
        assert by_id["small"]["ir"] == _cold_reference(small)
        assert by_id["big"]["ir"] == _cold_reference(big)
        assert frames[0]["id"] == "small", (
            "a 6-block translate behind a 600-block one should finish first "
            "when both are in flight"
        )

    def test_warm_repeat_is_served_inline_off_the_worker_pool(self, wire):
        """A warm translate skips the executor: the non-blocking probe hit
        shows up in ``inline_hits_total`` and the response still carries the
        full hit payload, bit-identical to the cold one."""
        text = _program(seed=77)
        wire.send(verb="translate", ir=text, id="cold")
        cold = wire.read_until_id("cold")
        assert cold["ok"] and cold["cached"] is False
        wire.send(verb="translate", ir=text, id="warm")
        warm = wire.read_until_id("warm")
        assert warm["ok"] and warm["cached"] is True
        assert warm["ir"] == cold["ir"] == _cold_reference(text)
        wire.send(verb="metrics", id="m")
        counters = wire.read_until_id("m")["metrics"]["counters"]
        assert counters.get("inline_hits_total", 0) >= 1

    def test_many_pipelined_requests_all_answered_once(self, wire):
        texts = [_program(seed=200 + index) for index in range(12)]
        for index, text in enumerate(texts):
            wire.send(verb="translate", ir=text, id=index)
        seen = {}
        for _ in texts:
            frame = wire.read()
            assert frame["id"] not in seen, "duplicate response id"
            seen[frame["id"]] = frame
        assert set(seen) == set(range(12))
        for index, text in enumerate(texts):
            assert seen[index]["ir"] == _cold_reference(text)


# --------------------------------------------------------------------------- streamed batches
class TestStreamedBatch:
    def test_batch_streams_item_frames_then_terminal(self, wire):
        texts = [_program(seed=300 + index) for index in range(6)]
        wire.send(verb="translate_batch", irs=texts, id="batch")
        items, terminal = {}, None
        while terminal is None:
            frame = wire.read()
            assert frame["id"] == "batch"
            if frame.get("done"):
                terminal = frame
            else:
                assert frame["ok"] and frame["done"] is False
                assert frame["item"] not in items, "item streamed twice"
                items[frame["item"]] = frame
        assert terminal["ok"] and terminal["count"] == 6 and terminal["errors"] == 0
        assert set(items) == set(range(6))
        for index, text in enumerate(texts):
            assert items[index]["ir"] == _cold_reference(text)

    def test_batch_item_failures_stream_without_aborting_the_rest(self, wire):
        texts = [_program(seed=310), "function broken(", _program(seed=311)]
        wire.send(verb="translate_batch", irs=texts, id="mixed")
        frames = [wire.read() for _ in range(4)]
        terminal = frames[-1]
        assert terminal["done"] and terminal["ok"] and terminal["errors"] == 1
        by_item = {f["item"]: f for f in frames[:-1]}
        assert not by_item[1]["ok"] and "error" in by_item[1]
        assert by_item[0]["ok"] and by_item[2]["ok"]

    def test_batch_with_bad_irs_field_is_one_error_frame(self, wire):
        wire.send(verb="translate_batch", irs="not-a-list", id="bad")
        frame = wire.read()
        assert frame["id"] == "bad" and not frame["ok"]
        assert "irs" in frame["error"]

    def test_batch_with_unknown_engine_fails_fast(self, wire):
        wire.send(verb="translate_batch", irs=[_program(seed=320)],
                  engine="nonsense", id="eng")
        frame = wire.read()
        assert frame["id"] == "eng" and not frame["ok"]
        assert "unknown engine" in frame["error"]

    def test_interleaved_batches_route_frames_by_id(self, wire):
        """Two pipelined batches: every frame labels its batch and item."""
        a = [_program(seed=330 + i) for i in range(4)]
        b = [_program(seed=340 + i) for i in range(4)]
        wire.send(verb="translate_batch", irs=a, id="A")
        wire.send(verb="translate_batch", irs=b, id="B")
        done, got = set(), {"A": {}, "B": {}}
        while len(done) < 2:
            frame = wire.read()
            assert frame["id"] in ("A", "B")
            if frame.get("done"):
                done.add(frame["id"])
            else:
                got[frame["id"]][frame["item"]] = frame["ir"]
        for texts, key in ((a, "A"), (b, "B")):
            assert set(got[key]) == set(range(4))
            for index, text in enumerate(texts):
                assert got[key][index] == _cold_reference(text)


# --------------------------------------------------------------------------- malformed input
class TestMalformedFrames:
    def test_malformed_json_gets_error_and_connection_survives(self, wire):
        wire.send_raw(b"this is not json\n")
        frame = wire.read()
        assert not frame["ok"] and "malformed" in frame["error"]
        wire.send(verb="ping", id="after")
        assert wire.read_until_id("after")["ok"]

    def test_non_object_json_gets_error(self, wire):
        wire.send_raw(b"42\n")
        frame = wire.read()
        assert not frame["ok"] and frame["id"] is None

    def test_unknown_verb_echoes_id_in_error(self, wire):
        wire.send(verb="frobnicate", id="u1")
        frame = wire.read()
        assert frame["id"] == "u1" and not frame["ok"]
        assert "unknown verb" in frame["error"]

    def test_translate_without_ir_is_an_error_response(self, wire):
        wire.send(verb="translate", id="noir")
        frame = wire.read_until_id("noir")
        assert not frame["ok"] and "ir" in frame["error"]

    def test_oversized_frame_rejected_without_killing_connection(self):
        server = TranslationServer(
            ("127.0.0.1", 0), engine="us_i", shards=1, max_frame=64 * 1024
        )
        thread = server.serve_in_background()
        wire = Wire(server.port)
        try:
            huge = json.dumps({"verb": "translate", "ir": "x" * (128 * 1024)})
            wire.send_raw(huge.encode("utf-8") + b"\n")
            frame = wire.read()
            assert not frame["ok"]
            # The dropped buffer's tail may surface as extra malformed-frame
            # errors; a tagged ping must still come back on this connection.
            wire.send(verb="ping", id="survivor")
            assert wire.read_until_id("survivor")["ok"]
        finally:
            wire.close()
            server.shutdown()
            thread.join(timeout=10)
            server.server_close()

    def test_truncated_frame_does_not_kill_the_daemon(self, server):
        first = Wire(server.port)
        first.send_raw(b'{"verb": "ping", "id": "half')  # no newline, then vanish
        first.close()
        second = Wire(server.port)
        try:
            second.send(verb="ping", id="alive")
            assert second.read_until_id("alive")["ok"]
        finally:
            second.close()


# --------------------------------------------------------------------------- admission control
class TestOverload:
    def test_zero_queue_sheds_every_heavy_request(self):
        server = TranslationServer(("127.0.0.1", 0), engine="us_i", shards=1,
                                   max_pending=0)
        thread = server.serve_in_background()
        wire = Wire(server.port)
        try:
            wire.send(verb="translate", ir=_program(seed=400), id="shed")
            frame = wire.read_until_id("shed")
            assert not frame["ok"] and frame["overloaded"] is True
            # Light verbs are never shed.
            wire.send(verb="ping", id="p")
            assert wire.read_until_id("p")["ok"]
            wire.send(verb="metrics", id="m")
            metrics = wire.read_until_id("m")
            assert metrics["metrics"]["counters"]["overloaded_total"] >= 1
        finally:
            wire.close()
            server.shutdown()
            thread.join(timeout=10)
            server.server_close()

    def test_tiny_queue_sheds_the_pileup_but_serves_the_admitted(self):
        """One slot, one worker: the first request runs, the pileup sheds."""
        server = TranslationServer(("127.0.0.1", 0), engine="us_i", shards=1,
                                   workers=1, max_pending=1)
        thread = server.serve_in_background()
        wire = Wire(server.port)
        try:
            slow = _big_program(seed=401, blocks=500)
            # One write for the whole pileup: the daemon reads all six
            # requests back-to-back while the slow one still occupies the
            # queue's only slot, so the shed count is deterministic.
            lines = [json.dumps({"verb": "translate", "ir": slow, "id": 0})]
            lines += [
                json.dumps({"verb": "translate",
                            "ir": _program(seed=410 + index), "id": index})
                for index in range(1, 6)
            ]
            wire.send_raw(("\n".join(lines) + "\n").encode("utf-8"))
            frames = {}
            for _ in range(6):
                frame = wire.read()
                frames[frame["id"]] = frame
            assert frames[0]["ok"], "the admitted request must still be served"
            assert frames[0]["ir"] == _cold_reference(slow)
            shed = [f for f in frames.values() if f.get("overloaded")]
            assert len(shed) == 5, "every request beyond the queue limit sheds"
        finally:
            wire.close()
            server.shutdown()
            thread.join(timeout=10)
            server.server_close()

    def test_batch_cost_counts_items_against_the_queue(self):
        server = TranslationServer(("127.0.0.1", 0), engine="us_i", shards=1,
                                   max_pending=2)
        thread = server.serve_in_background()
        wire = Wire(server.port)
        try:
            texts = [_program(seed=420 + index) for index in range(4)]
            wire.send(verb="translate_batch", irs=texts, id="toolarge")
            frame = wire.read_until_id("toolarge")
            assert not frame["ok"] and frame["overloaded"] is True
        finally:
            wire.close()
            server.shutdown()
            thread.join(timeout=10)
            server.server_close()


# --------------------------------------------------------------------------- shutdown drain
class TestShutdownDrain:
    def test_shutdown_drains_inflight_pipelined_requests(self):
        server = TranslationServer(("127.0.0.1", 0), engine="us_i", shards=1)
        thread = server.serve_in_background()
        wire = Wire(server.port)
        try:
            text = _big_program(seed=430, blocks=400)
            wire.send(verb="translate", ir=text, id="inflight")
            wire.send(verb="shutdown", id="stop")
            ack = wire.read()
            assert ack["id"] == "stop" and ack["ok"] and ack["stopping"]
            drained = wire.read()
            assert drained["id"] == "inflight" and drained["ok"], (
                "shutdown must drain the in-flight translation, not drop it"
            )
            assert drained["ir"] == _cold_reference(text)
        finally:
            wire.close()
            thread.join(timeout=15)
            assert not thread.is_alive()
            server.server_close()
