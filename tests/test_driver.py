"""Integration tests for the out-of-SSA driver and its engine configurations."""

import pytest

from repro.interp import run_function
from repro.ir.instructions import ParallelCopy, Phi
from repro.ir.validate import validate_function
from repro.outofssa.boissinot import translate_us_i, translate_us_iii
from repro.outofssa.sreedhar import translate_sreedhar_iii
from repro.outofssa.driver import (
    DEFAULT_ENGINE,
    ENGINE_CONFIGURATIONS,
    EngineConfig,
    destruct_ssa,
    engine_by_name,
)
from tests.helpers import GALLERY_PROGRAMS, generated_programs


def assert_fully_lowered(function):
    """No φ-functions and no parallel copies may remain after translation."""
    for block in function:
        assert not block.phis
        assert block.entry_pcopy is None
        assert block.exit_pcopy is None
        assert not any(isinstance(instr, ParallelCopy) for instr in block.body)
        assert not any(isinstance(instr, Phi) for instr in block.body)


class TestEngineConfigurations:
    def test_the_seven_paper_configurations_exist(self):
        names = [config.name for config in ENGINE_CONFIGURATIONS]
        assert names == [
            "sreedhar_iii",
            "us_iii",
            "us_iii_intercheck",
            "us_iii_intercheck_livecheck",
            "us_iii_linear_intercheck_livecheck",
            "us_i",
            "us_i_linear_intercheck_livecheck",
        ]
        assert engine_by_name("us_i").use_interference_graph
        assert not engine_by_name("us_i_linear_intercheck_livecheck").use_interference_graph
        assert engine_by_name("us_iii_intercheck_livecheck").liveness == "check"
        with pytest.raises(KeyError):
            engine_by_name("does_not_exist")
        assert "LiveCheck" in DEFAULT_ENGINE.describe()

    @pytest.mark.parametrize("config", ENGINE_CONFIGURATIONS, ids=lambda c: c.name)
    @pytest.mark.parametrize("name,maker,args", GALLERY_PROGRAMS)
    def test_gallery_programs_translate_correctly(self, config, name, maker, args):
        expected = run_function(maker(), args).observable()
        function = maker()
        result = destruct_ssa(function, config)
        validate_function(function)
        assert_fully_lowered(function)
        assert run_function(function, args).observable() == expected
        assert result.stats.elapsed_seconds >= 0.0

    @pytest.mark.parametrize("config", ENGINE_CONFIGURATIONS, ids=lambda c: c.name)
    def test_generated_programs_translate_correctly(self, config):
        for function in generated_programs(count=3, size=32):
            for args in ([1, 2], [0, 7]):
                expected = run_function(function.copy(), args).observable()
                copy = function.copy()
                destruct_ssa(copy, config)
                validate_function(copy)
                assert_fully_lowered(copy)
                assert run_function(copy, args).observable() == expected


class TestLivenessBackendPluggability:
    def test_all_backends_translate_identically(self):
        """The liveness backend is an implementation detail: swapping it must
        not change a single instruction of the translated output."""
        import dataclasses

        from repro.ir.printer import format_function

        for function in generated_programs(count=3, size=30):
            outputs = {}
            for backend in ("sets", "bitsets", "check"):
                config = dataclasses.replace(
                    engine_by_name("us_i"), name=f"us_i_{backend}", liveness=backend
                )
                copy = function.copy()
                destruct_ssa(copy, config)
                outputs[backend] = format_function(copy)
            assert outputs["sets"] == outputs["bitsets"] == outputs["check"]

    def test_unknown_backend_is_rejected(self):
        import dataclasses

        config = dataclasses.replace(engine_by_name("us_i"), name="bogus", liveness="bogus")
        with pytest.raises(ValueError):
            destruct_ssa(next(iter(generated_programs(count=1, size=15))).copy(), config)

    def test_set_based_engines_use_the_bitset_backend(self):
        for name in ("sreedhar_iii", "us_iii", "us_iii_intercheck", "us_i"):
            assert engine_by_name(name).liveness == "bitsets"


class TestStatsAndResults:
    def test_stats_are_populated(self):
        from repro.gallery import figure4_lost_copy_problem

        function = figure4_lost_copy_problem()
        result = destruct_ssa(function, engine_by_name("us_i"))
        stats = result.stats
        assert stats.inserted_phi_copies == 3
        assert stats.affinities >= 3
        assert stats.coalesced >= 2
        assert stats.remaining_copies == 1        # the x2 copy in the loop
        assert stats.candidate_variables > 0
        assert stats.num_blocks == 3
        assert stats.liveness_set_entries > 0
        # Matrix-backed engines answer class-vs-class checks from merged
        # matrix rows; every check shows up in exactly one of the counters.
        assert stats.pair_queries + stats.class_row_checks > 0
        assert stats.interference_backend == "matrix"
        assert result.memory_total_bytes > 0
        assert result.memory_peak_bytes > 0

    def test_livecheck_engines_report_no_liveness_set_entries(self):
        from repro.gallery import figure4_lost_copy_problem

        function = figure4_lost_copy_problem()
        result = destruct_ssa(function, engine_by_name("us_i_linear_intercheck_livecheck"))
        assert result.stats.liveness_set_entries == 0
        assert "interference_graph" not in result.tracker.by_category()

    def test_swap_needs_a_sequentialization_temporary(self):
        from repro.gallery import figure3_swap_problem

        function = figure3_swap_problem()
        result = destruct_ssa(function, DEFAULT_ENGINE)
        assert result.stats.sequentialization_temps == 1
        assert result.stats.remaining_copies == 3

    def test_rename_map_targets_class_representatives(self):
        from repro.gallery import figure4_lost_copy_problem

        function = figure4_lost_copy_problem()
        result = destruct_ssa(function, DEFAULT_ENGINE)
        # x1 and x3 end up coalesced with the φ-node, x2 stays separate.
        assert result.rename_map  # non-empty
        targets = set(result.rename_map.values())
        assert all(var not in result.rename_map for var in targets)

    def test_dynamic_copy_cost_weighs_loops(self):
        from repro.gallery import figure4_lost_copy_problem

        function = figure4_lost_copy_problem()
        result = destruct_ssa(function, DEFAULT_ENGINE)
        # The single remaining copy sits in the loop: its dynamic cost exceeds
        # its static count.
        assert result.stats.dynamic_copy_cost > result.stats.remaining_copies


class TestConvenienceWrappers:
    def test_translate_us_i_and_us_iii_and_sreedhar(self):
        from repro.gallery import figure3_swap_problem

        args = (4, 3, 8)
        expected = run_function(figure3_swap_problem(), args).observable()
        for translate, fast in [
            (translate_us_i, True),
            (translate_us_i, False),
            (translate_us_iii, True),
            (translate_us_iii, False),
        ]:
            function = figure3_swap_problem()
            result = translate(function, fast=fast)
            assert run_function(function, args).observable() == expected
            assert ("LiveCheck" in result.config.describe()) == fast

        function = figure3_swap_problem()
        result = translate_sreedhar_iii(function)
        assert result.config.name == "sreedhar_iii"
        assert run_function(function, args).observable() == expected
