"""Tests for the linear-scan register allocator (the JIT back-end consumer)."""

import pytest

from repro.bench.generator import GeneratorConfig, generate_ssa_program
from repro.ir.builder import FunctionBuilder
from repro.ir.instructions import Variable
from repro.outofssa.driver import DEFAULT_ENGINE, destruct_ssa
from repro.outofssa.pinning import apply_calling_convention
from repro.regalloc.intervals import build_live_intervals, linearize_blocks
from repro.regalloc.linear_scan import (
    AllocationError,
    allocate_registers,
    verify_allocation,
)
from repro.gallery import figure3_swap_problem, figure4_lost_copy_problem
from tests.helpers import loop_function


def v(name: str) -> Variable:
    return Variable(name)


class TestIntervals:
    def test_linearization_starts_at_entry(self):
        function = loop_function()
        order = linearize_blocks(function)
        assert order[0] == "entry"
        assert set(order) == set(function.blocks)

    def test_interval_endpoints_reflect_defs_and_uses(self):
        fb = FunctionBuilder("straight", params=("p",))
        entry = fb.block("entry")
        with fb.at(entry):
            a = fb.op("add", "p", 1, name="a")
            b = fb.op("mul", a, 2, name="b")
            fb.print(b)
            fb.ret(b)
        intervals = {i.variable.name: i for i in build_live_intervals(fb.finish())}
        assert intervals["p"].start == 0
        assert intervals["a"].start < intervals["b"].start
        assert intervals["a"].end <= intervals["b"].start + 1
        assert intervals["b"].end > intervals["b"].start

    def test_loop_carried_values_cover_the_loop(self):
        function = loop_function()
        intervals = {i.variable.name: i for i in build_live_intervals(function)}
        # The loop-carried sum is live across the whole loop body.
        body_intervals = intervals["s1"]
        i2 = intervals["i2"]
        assert body_intervals.overlaps(i2)

    def test_pinned_flag_propagates(self):
        function = loop_function()
        function.pin(v("s1"), "R3")
        intervals = {i.variable.name: i for i in build_live_intervals(function)}
        assert intervals["s1"].pinned == "R3"

    def test_overlap_predicate(self):
        from repro.regalloc.intervals import LiveInterval

        a = LiveInterval(v("a"), 0, 5)
        b = LiveInterval(v("b"), 4, 9)
        c = LiveInterval(v("c"), 5, 6)
        assert a.overlaps(b)
        assert not a.overlaps(c)


class TestLinearScan:
    def test_no_overlapping_intervals_share_a_register(self):
        for maker in (loop_function, figure3_swap_problem, figure4_lost_copy_problem):
            function = maker()
            destruct_ssa(function, DEFAULT_ENGINE)
            allocation = allocate_registers(function)
            verify_allocation(allocation)

    def test_allocation_covers_every_variable(self):
        function = figure3_swap_problem()
        destruct_ssa(function, DEFAULT_ENGINE)
        allocation = allocate_registers(function)
        for var in function.variables():
            assert allocation.location_of(var) is not None

    def test_spilling_under_register_pressure(self):
        fb = FunctionBuilder("pressure", params=("p",))
        entry = fb.block("entry")
        with fb.at(entry):
            values = [fb.op("add", "p", i, name=f"x{i}") for i in range(6)]
            total = values[0]
            for value in values[1:]:
                total = fb.op("add", total, value, name=fb.fresh("sum").name)
            fb.ret(total)
        function = fb.finish()
        allocation = allocate_registers(function, registers=("R0", "R1", "R2"))
        verify_allocation(allocation)
        assert allocation.spill_count > 0
        assert len(allocation.used_registers()) <= 3

    def test_enough_registers_means_no_spills(self):
        function = figure4_lost_copy_problem()
        destruct_ssa(function, DEFAULT_ENGINE)
        allocation = allocate_registers(function)
        assert allocation.spill_count == 0

    def test_pinned_variables_get_their_register(self):
        function = loop_function()
        destruct_ssa(function, DEFAULT_ENGINE)
        target = function.variables()[1]
        function.pin(target, "R5")
        allocation = allocate_registers(function)
        verify_allocation(allocation)
        assert allocation.register_of(target) == "R5"

    def test_unknown_pinned_register_rejected(self):
        function = loop_function()
        function.pin(v("s1"), "R99")
        with pytest.raises(AllocationError):
            allocate_registers(function, registers=("R0", "R1"))

    def test_full_jit_pipeline_allocation(self):
        """SSA program with calls -> ABI pinning -> out-of-SSA -> allocation."""
        program = generate_ssa_program(
            GeneratorConfig(seed=21, size=35, call_probability=0.15, apply_abi=True)
        )
        destruct_ssa(program, DEFAULT_ENGINE)
        allocation = allocate_registers(program)
        verify_allocation(allocation)
        # Calling-convention pins are honoured.
        for var, register in program.pinned.items():
            location = allocation.location_of(var)
            if location is not None and location.is_register:
                assert location.name == register

    def test_eviction_keeps_allocation_valid(self):
        """A pinned interval arriving while its register is busy evicts the holder."""
        fb = FunctionBuilder("evict", params=("p",))
        entry = fb.block("entry")
        with fb.at(entry):
            a = fb.op("add", "p", 1, name="a")       # will grab R0 first
            b = fb.op("add", "p", 2, name="pinned_b")
            r = fb.op("add", a, b, name="r")
            fb.print(a)
            fb.print(b)
            fb.ret(r)
        function = fb.finish()
        function.pin(v("pinned_b"), "R0")
        allocation = allocate_registers(function, registers=("R0", "R1", "R2"))
        verify_allocation(allocation)
        assert allocation.register_of(v("pinned_b")) == "R0"
