"""Unit tests for SCC condensation (Tarjan) over the CFG."""

from repro.cfg.scc import (
    condensation_order,
    is_trivial_component,
    scc_block_order,
    strongly_connected_components,
)
from repro.ir.builder import FunctionBuilder


def build_nested_loops():
    """entry -> outer(header1 -> inner(header2 <-> body2) -> latch1) -> exit"""
    fb = FunctionBuilder("nested")
    entry, h1, h2, b2, l1, done = fb.blocks("entry", "h1", "h2", "b2", "l1", "done")
    x = fb.var("x")
    with fb.at(entry):
        fb.op("const", 1, name="x")
        fb.jump(h1)
    with fb.at(h1):
        fb.jump(h2)
    with fb.at(h2):
        cond = fb.op("cmp_lt", x, 10)
        fb.branch(cond, b2, l1)
    with fb.at(b2):
        fb.op("add", x, 1, name="x")
        fb.jump(h2)
    with fb.at(l1):
        cond = fb.op("cmp_lt", x, 100)
        fb.branch(cond, h1, done)
    with fb.at(done):
        fb.ret(x)
    return fb.finish()


def test_nested_loops_collapse_to_one_component():
    function = build_nested_loops()
    components = strongly_connected_components(function)
    as_sets = [frozenset(component) for component in components]
    # The inner loop is nested in the outer one: h1, h2, b2, l1 form ONE SCC.
    assert frozenset({"h1", "h2", "b2", "l1"}) in as_sets
    assert frozenset({"entry"}) in as_sets
    assert frozenset({"done"}) in as_sets
    assert len(components) == 3


def test_emission_is_reverse_topological():
    """Every component appears before every component that can reach it."""
    function = build_nested_loops()
    components = strongly_connected_components(function)
    position = {}
    for index, component in enumerate(components):
        for label in component:
            position[label] = index
    for source, target in function.edges():
        if position[source] != position[target]:
            # Edge source -> target: target's component must be emitted first.
            assert position[target] < position[source]


def test_condensation_order_is_the_reverse():
    function = build_nested_loops()
    assert condensation_order(function) == list(
        reversed(strongly_connected_components(function))
    )


def test_unreachable_blocks_are_covered():
    fb = FunctionBuilder("unreachable")
    entry, island = fb.blocks("entry", "island")
    with fb.at(entry):
        fb.ret(0)
    with fb.at(island):
        fb.ret(1)
    function = fb.finish()
    components = strongly_connected_components(function)
    covered = {label for component in components for label in component}
    assert covered == {"entry", "island"}


def test_trivial_component_detection():
    fb = FunctionBuilder("selfloop")
    entry, spin, done = fb.blocks("entry", "spin", "done")
    x = fb.var("x")
    with fb.at(entry):
        fb.op("const", 3, name="x")
        fb.jump(spin)
    with fb.at(spin):
        cond = fb.op("cmp_lt", x, 5)
        fb.branch(cond, spin, done)
    with fb.at(done):
        fb.ret(x)
    function = fb.finish()
    by_head = {component[0]: component for component in strongly_connected_components(function)}
    assert not is_trivial_component(function, by_head["spin"])  # self-loop
    assert is_trivial_component(function, by_head["entry"])
    assert is_trivial_component(function, by_head["done"])


def test_scc_block_order_covers_all_blocks_once():
    function = build_nested_loops()
    order = scc_block_order(function)
    assert sorted(order) == sorted(function.blocks)
