"""Tests for affinity collection, the coalescing loop, variants and sharing."""

import pytest

from repro.bench.metrics import copy_counts
from repro.cfg.frequency import estimate_block_frequencies
from repro.coalescing.engine import AggressiveCoalescer, collect_affinities
from repro.coalescing.variants import VARIANTS, variant_by_name
from repro.interference.congruence import CongruenceClasses
from repro.interference.definitions import InterferenceKind, make_interference_test
from repro.interp import run_function
from repro.ir.builder import FunctionBuilder
from repro.ir.instructions import Variable
from repro.liveness.dataflow import LivenessSets
from repro.liveness.intersection import IntersectionOracle
from repro.outofssa.driver import EngineConfig, destruct_ssa
from repro.outofssa.method_i import insert_phi_copies
from tests.helpers import loop_function, straight_line_copies


def v(name: str) -> Variable:
    return Variable(name)


def figure5_config(variant_name: str) -> EngineConfig:
    return EngineConfig(
        name=f"test_{variant_name}", label=variant_name, coalescing=variant_name,
        liveness="check", use_interference_graph=False, linear_class_check=False,
    )


class TestAffinityCollection:
    def test_phi_copies_and_weights(self):
        function = loop_function()
        insertion = insert_phi_copies(function)
        frequencies = estimate_block_frequencies(function)
        affinities = collect_affinities(function, insertion, frequencies)
        # Two φs with two arguments each: 2 results + 4 arguments.
        assert len(affinities) == 6
        # Copies sitting in the loop weigh more than the ones in the entry.
        in_loop = [a for a in affinities if a.block in ("header", "body")]
        in_entry = [a for a in affinities if a.block == "entry"]
        assert min(a.weight for a in in_loop) > max(a.weight for a in in_entry)

    def test_constant_sources_are_not_affinities(self):
        fb = FunctionBuilder("consts")
        entry = fb.block("entry")
        with fb.at(entry):
            fb.copy("x", 3)
            fb.copy("y", "x")
            fb.ret("y")
        affinities = collect_affinities(fb.finish())
        assert [(a.dst.name, a.src.name) for a in affinities] == [("y", "x")]

    def test_no_duplicates(self):
        function = loop_function()
        insertion = insert_phi_copies(function)
        affinities = collect_affinities(function, insertion)
        keys = [(a.dst, a.src, a.block) for a in affinities]
        assert len(keys) == len(set(keys))


class TestVariants:
    def test_variant_table(self):
        assert [variant.name for variant in VARIANTS] == [
            "intersect", "sreedhar_i", "chaitin", "value",
            "sreedhar_iii", "value_is", "sharing",
        ]
        assert variant_by_name("value").interference is InterferenceKind.VALUE
        assert variant_by_name("sreedhar_iii").ordering == "per_phi"
        assert variant_by_name("sharing").sharing
        with pytest.raises(KeyError):
            variant_by_name("nonsense")

    def test_paper_example_separation(self):
        """b = a; c = a with everything live: 2 / 1 / 1 / 0 remaining copies."""
        expected = {
            "intersect": 2,
            "sreedhar_i": 1,
            "chaitin": 1,
            "value": 0,
            "sreedhar_iii": 1,
            "value_is": 0,
            "sharing": 0,
        }
        for variant_name, remaining in expected.items():
            function = straight_line_copies()
            destruct_ssa(function, figure5_config(variant_name))
            assert copy_counts(function).static_copies == remaining, variant_name

    def test_variants_never_change_semantics(self):
        for variant in VARIANTS:
            function = straight_line_copies()
            expected = run_function(straight_line_copies(), [4]).observable()
            destruct_ssa(function, figure5_config(variant.name))
            assert run_function(function, [4]).observable() == expected, variant.name

    def test_quality_ordering_on_gallery(self):
        """More precise interference never leaves more copies."""
        from repro.gallery import figure3_swap_problem, figure4_lost_copy_problem

        for maker in (figure3_swap_problem, figure4_lost_copy_problem):
            remaining = {}
            for variant in VARIANTS:
                function = maker()
                destruct_ssa(function, figure5_config(variant.name))
                remaining[variant.name] = copy_counts(function).static_copies
            assert remaining["value"] <= remaining["chaitin"] <= remaining["intersect"]
            assert remaining["value_is"] <= remaining["value"]
            assert remaining["sharing"] <= remaining["value_is"]


class TestCoalescerMechanics:
    def test_weight_priority_prefers_inner_loop_copies(self):
        """When two affinities conflict, the heavier (inner-loop) one must win."""
        fb = FunctionBuilder("weights", params=("n",))
        entry, header, body, exit_block = fb.blocks("entry", "header", "body", "exit")
        with fb.at(entry):
            a = fb.op("add", "n", 1, name="a")
            fb.copy("cold", a)          # low weight copy of a (entry block)
            fb.jump(header)
        with fb.at(header):
            i1 = fb.phi("i1", entry=0, body="i2")
            c = fb.op("cmp_lt", i1, "n", name="c")
            fb.branch(c, body, exit_block)
        with fb.at(body):
            fb.copy("hot", a)           # high weight copy of a (inner loop)
            fb.print("hot")
            i2 = fb.op("add", i1, 1, name="i2")
            fb.jump(header)
        with fb.at(exit_block):
            fb.print("cold")
            fb.print(a)
            fb.ret(a)
        function = fb.finish()

        # Under Chaitin's rule each copy alone could be coalesced with a, but
        # cold and hot cannot both join a's class (cold is live at hot's
        # definition, which is not a copy between the two).  Weight ordering
        # decides the winner: the inner-loop copy.
        oracle = IntersectionOracle(function, LivenessSets(function))
        test = make_interference_test(function, oracle, InterferenceKind.CHAITIN)
        classes = CongruenceClasses(oracle, test, use_linear_check=False)
        affinities = collect_affinities(function)
        coalescer = AggressiveCoalescer(classes, ordering="global")
        stats = coalescer.run(affinities)
        hot = next(a for a in affinities if a.dst.name == "hot")
        cold = next(a for a in affinities if a.dst.name == "cold")
        assert hot.weight > cold.weight
        assert hot.coalesced
        assert not cold.coalesced
        assert stats.coalesced >= 1 and stats.remaining >= 1

    def test_invalid_ordering_rejected(self):
        function = straight_line_copies()
        oracle = IntersectionOracle(function, LivenessSets(function))
        test = make_interference_test(function, oracle, InterferenceKind.VALUE)
        classes = CongruenceClasses(oracle, test)
        with pytest.raises(ValueError):
            AggressiveCoalescer(classes, ordering="sideways")


class TestSharing:
    def test_sharing_removes_copy_that_value_alone_cannot(self):
        """Paper §III-B: a (after some other coalescing) interferes with b and
        c; neither copy can be removed by plain value-based coalescing, but b
        and c can share the copied value, saving one copy."""
        from repro.coalescing.sharing import apply_copy_sharing

        fb = FunctionBuilder("share", params=("p",))
        entry = fb.block("entry")
        with fb.at(entry):
            a = fb.op("add", "p", 1, name="a")
            fb.copy("c", a)                    # c = a
            fb.copy("b", a)                    # b = a (a dead from here on)
            blocker = fb.op("mul", "p", 3, name="blocker")
            fb.print("c")
            fb.print("b")
            fb.print(blocker)
            fb.ret("b")
        function = fb.finish()
        oracle = IntersectionOracle(function, LivenessSets(function))
        test = make_interference_test(function, oracle, InterferenceKind.VALUE)
        classes = CongruenceClasses(oracle, test)

        # "After some other coalescing": a's congruence class also contains
        # blocker, whose live range overlaps b and c with a different value.
        classes.make_class([v("a"), v("blocker")])
        affinities = collect_affinities(function)
        coalescer = AggressiveCoalescer(classes)
        stats = coalescer.run(affinities)
        assert {x.dst.name for x in stats.remaining_affinities} == {"b", "c"}

        removed = apply_copy_sharing(function, classes, test, stats.remaining_affinities)
        assert removed == 1
        b_affinity = next(x for x in stats.remaining_affinities if x.dst.name == "b")
        assert b_affinity.shared
        assert classes.same_class(v("b"), v("c"))
