"""Property-based end-to-end tests: translation preserves program behaviour.

The master invariant of the whole library — for any generated SSA program and
any inputs, the observable behaviour (return value + print trace) before and
after out-of-SSA translation is identical — is checked here over randomly
drawn generator seeds, shapes and arguments, for several engine
configurations.
"""

from hypothesis import given, settings, strategies as st

from repro.bench.generator import GeneratorConfig, generate_ssa_program
from repro.interp import run_function
from repro.ir.validate import validate_function
from repro.outofssa.driver import destruct_ssa, engine_by_name
from repro.ssa.cssa import is_conventional
from repro.outofssa.method_i import insert_phi_copies


ENGINES = [
    "sreedhar_iii",
    "us_i",
    "us_i_linear_intercheck_livecheck",
    "us_iii_linear_intercheck_livecheck",
]


def build_program(seed: int, size: int, abi: bool):
    config = GeneratorConfig(
        seed=seed,
        name=f"prop{seed}",
        size=size,
        apply_abi=abi,
        dup_copy_probability=0.15,
    )
    return generate_ssa_program(config)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    size=st.integers(min_value=12, max_value=45),
    abi=st.booleans(),
    engine=st.sampled_from(ENGINES),
    args=st.tuples(st.integers(-5, 10), st.integers(-5, 10)),
)
@settings(max_examples=40, deadline=None)
def test_destruction_preserves_observable_behaviour(seed, size, abi, engine, args):
    program = build_program(seed, size, abi)
    expected = run_function(program.copy(), list(args)).observable()
    translated = program.copy()
    destruct_ssa(translated, engine_by_name(engine))
    validate_function(translated)
    assert not translated.has_phis()
    assert run_function(translated, list(args)).observable() == expected


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    size=st.integers(min_value=12, max_value=40),
)
@settings(max_examples=30, deadline=None)
def test_method_i_always_yields_conventional_ssa(seed, size):
    """Lemma 1: after φ-isolation the program is in CSSA."""
    program = build_program(seed, size, abi=False)
    insert_phi_copies(program)
    assert is_conventional(program)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    size=st.integers(min_value=12, max_value=40),
    args=st.tuples(st.integers(-3, 8), st.integers(-3, 8)),
)
@settings(max_examples=30, deadline=None)
def test_copy_insertion_alone_preserves_behaviour(seed, size, args):
    program = build_program(seed, size, abi=False)
    expected = run_function(program.copy(), list(args)).observable()
    insert_phi_copies(program)
    assert run_function(program, list(args)).observable() == expected
