"""Property-based consistency checks between independent analysis implementations."""

from hypothesis import given, settings, strategies as st

from repro.bench.generator import GeneratorConfig, generate_ssa_program
from repro.interference.congruence import CongruenceClasses
from repro.interference.definitions import InterferenceKind, make_interference_test
from repro.interference.graph import InterferenceGraph
from repro.coalescing.engine import collect_affinities
from repro.ir.parser import parse_function
from repro.ir.printer import format_function
from repro.liveness.dataflow import LivenessSets
from repro.liveness.livecheck import LivenessChecker
from repro.liveness.intersection import IntersectionOracle
from repro.outofssa.method_i import insert_phi_copies


def build_program(seed: int, size: int):
    return generate_ssa_program(GeneratorConfig(seed=seed, name=f"an{seed}", size=size))


@given(seed=st.integers(0, 5000), size=st.integers(12, 40))
@settings(max_examples=25, deadline=None)
def test_printer_parser_round_trip(seed, size):
    program = build_program(seed, size)
    text = format_function(program)
    assert format_function(parse_function(text)) == text


@given(seed=st.integers(0, 5000), size=st.integers(12, 38))
@settings(max_examples=20, deadline=None)
def test_liveness_checker_agrees_with_dataflow_sets(seed, size):
    program = build_program(seed, size)
    sets = LivenessSets(program)
    checker = LivenessChecker(program)
    for block in program.blocks:
        for var in program.variables():
            assert sets.is_live_in(block, var) == checker.is_live_in(block, var)
            assert sets.is_live_out(block, var) == checker.is_live_out(block, var)


@given(seed=st.integers(0, 5000), size=st.integers(12, 34))
@settings(max_examples=15, deadline=None)
def test_scan_graph_equals_all_pairs_graph(seed, size):
    program = build_program(seed, size)
    oracle = IntersectionOracle(program, LivenessSets(program))
    test = make_interference_test(program, oracle, InterferenceKind.VALUE)
    universe = program.variables()
    scan = InterferenceGraph.build(program, test, universe)
    reference = InterferenceGraph.build_all_pairs(program, test, universe)
    for i, a in enumerate(universe):
        for b in universe[i + 1:]:
            assert scan.interferes(a, b) == reference.interferes(a, b)


@given(
    seed=st.integers(0, 5000),
    size=st.integers(12, 34),
    kind=st.sampled_from([InterferenceKind.INTERSECT, InterferenceKind.VALUE]),
)
@settings(max_examples=20, deadline=None)
def test_linear_class_check_equals_quadratic(seed, size, kind):
    """Grow congruence classes exactly as the coalescer would, checking that
    the linear sweep and the quadratic reference always agree."""
    program = build_program(seed, size)
    insertion = insert_phi_copies(program)
    oracle = IntersectionOracle(program, LivenessSets(program))
    test = make_interference_test(program, oracle, kind)
    linear = CongruenceClasses(oracle, test, use_linear_check=True)
    quadratic = CongruenceClasses(oracle, test, use_linear_check=False)
    for members in insertion.phi_nodes:
        linear.make_class(members)
        quadratic.make_class(members)
    for affinity in collect_affinities(program, insertion):
        lin_left, lin_right = linear.class_of(affinity.dst), linear.class_of(affinity.src)
        quad_left, quad_right = quadratic.class_of(affinity.dst), quadratic.class_of(affinity.src)
        if lin_left is lin_right:
            continue
        lin_answer, equal_anc_out = linear.interfere(lin_left, lin_right)
        quad_answer = quadratic.interfere_quadratic(quad_left, quad_right)
        assert lin_answer == quad_answer
        if not lin_answer:
            linear.merge(lin_left, lin_right, equal_anc_out)
            quadratic.merge(quad_left, quad_right)
