"""Property tests: concurrency never changes a served byte.

Seeded random storms of concurrent pipelined clients — mixed verbs
(translate, repeat translations, batches, flushes, stats/metrics probes)
with connections dropped mid-pipeline and reopened — against one live
daemon.  Two claims, in the spirit of ``test_service_cache_props.py``:

1. *Bit-identity under concurrency* — every request the daemon answers
   successfully carries exactly the cold ``Session``/pipeline output for
   its program, no matter how many clients were in flight, how often the
   cache was flushed under them, or how many neighbours vanished mid-batch.
2. *Stats stay consistent* — after the storm, every shard's accounting
   satisfies ``requests == hits + cold``, the scheduler totals agree with
   the shard rows, and the daemon's metric counters never exceed what the
   scheduler actually served.
"""

import asyncio
import random

import pytest

from repro.bench.generator import GeneratorConfig, generate_ssa_program
from repro.ir import format_function, parse_function
from repro.pipeline import Pipeline
from repro.service.client import AsyncServiceClient, ServiceClient, ServiceError
from repro.service.server import TranslationServer

pytestmark = pytest.mark.filterwarnings("ignore::pytest.PytestUnhandledThreadExceptionWarning")

ENGINE = "us_i"


def _pool(count: int = 6, size: int = 22):
    texts = [
        format_function(generate_ssa_program(GeneratorConfig(seed=seed, size=size)))
        for seed in range(count)
    ]
    references = {}
    for text in texts:
        function = parse_function(text)
        Pipeline.for_engine(ENGINE).run(function)
        references[text] = format_function(function)
    return texts, references


POOL, REFERENCES = _pool()

ACTIONS = (
    "translate", "translate", "translate", "translate",
    "batch", "batch", "metrics", "stats", "flush", "drop",
)


async def _client_storm(port: int, rng: random.Random, outcome: dict) -> None:
    """One client's random script: pipelined verbs, sometimes vanishing."""

    client = AsyncServiceClient(port)
    await client.connect()
    pending = []

    async def settle() -> None:
        nonlocal pending
        tasks, pending = pending, []
        for kind, expected, task in tasks:
            try:
                response = await task
            except (ServiceError, ConnectionError, OSError):
                outcome["dropped"] += 1  # a vanished connection loses answers
                continue
            if kind == "translate":
                assert response["ir"] == REFERENCES[expected], (
                    "concurrent translate diverged from the cold reference"
                )
                outcome["answered"] += 1
            elif kind == "batch":
                assert len(response) == len(expected)
                for text, payload in zip(expected, response):
                    assert payload["ir"] == REFERENCES[text], (
                        "concurrent batch item diverged from the cold reference"
                    )
                outcome["answered"] += len(expected)

    try:
        for _ in range(rng.randint(6, 14)):
            action = rng.choice(ACTIONS)
            if action == "translate":
                text = rng.choice(POOL)
                pending.append(
                    ("translate", text, asyncio.ensure_future(client.translate(text)))
                )
            elif action == "batch":
                texts = [rng.choice(POOL) for _ in range(rng.randint(2, 5))]
                pending.append(
                    ("batch", texts, asyncio.ensure_future(client.translate_batch(texts)))
                )
            elif action == "metrics":
                pending.append(("metrics", None, asyncio.ensure_future(client.metrics())))
            elif action == "stats":
                pending.append(("stats", None, asyncio.ensure_future(client.stats())))
            elif action == "flush":
                pending.append(("flush", None, asyncio.ensure_future(client.flush())))
            elif action == "drop":
                # Vanish mid-pipeline: whatever is in flight is abandoned,
                # then a new connection picks the script back up.
                for _kind, _expected, task in pending:
                    task.cancel()
                await client.close()
                await asyncio.gather(
                    *(task for _k, _e, task in pending), return_exceptions=True
                )
                pending = []
                outcome["drops"] += 1
                client = AsyncServiceClient(port)
                await client.connect()
            if len(pending) >= 8 or rng.random() < 0.2:
                await settle()
        await settle()
    finally:
        await client.close()


@pytest.mark.parametrize("seed", range(5))
def test_concurrent_random_streams_are_bit_identical(seed):
    server = TranslationServer(
        ("127.0.0.1", 0), engine=ENGINE, shards=2, workers=4, max_pending=256
    )
    thread = server.serve_in_background()
    rng = random.Random(seed)
    outcome = {"answered": 0, "dropped": 0, "drops": 0}
    clients = 6

    async def storm():
        seeds = [rng.randint(0, 2**31) for _ in range(clients)]
        await asyncio.gather(
            *(_client_storm(server.port, random.Random(s), outcome) for s in seeds)
        )

    try:
        asyncio.run(storm())
        assert outcome["answered"] > 0, "the storm never exercised a translation"

        # Stats consistency after the dust settles.
        with ServiceClient(port=server.port) as client:
            stats = client.stats()["stats"]
            metrics = client.metrics()
        for row in stats["shards"]:
            assert row["requests"] == row["hits"] + row["cold"], (
                f"shard {row['shard']} accounting drifted: {row}"
            )
        assert stats["requests"] == sum(r["requests"] for r in stats["shards"])
        assert stats["hits"] == sum(r["hits"] for r in stats["shards"])
        counters = metrics["metrics"]["counters"]
        served = counters.get("hits_total", 0) + counters.get("cold_total", 0)
        assert served <= stats["requests"], (
            "daemon metrics claim more served translations than the scheduler saw"
        )
        # Every item a client saw answered was served and counted exactly
        # once (abandoned work may add to served, never subtract).
        assert served >= outcome["answered"]
    finally:
        server.shutdown()
        thread.join(timeout=10)
        server.server_close()


def test_storm_survivors_see_flushed_cache_refill():
    """Flush mid-storm only costs re-translations, never wrong answers —
    and the cache ends populated (every pool program warm again)."""
    server = TranslationServer(("127.0.0.1", 0), engine=ENGINE, shards=2, workers=4)
    thread = server.serve_in_background()
    try:
        async def churn():
            client = AsyncServiceClient(server.port)
            await client.connect()
            try:
                for round_index in range(3):
                    responses = await asyncio.gather(
                        *(client.translate(text) for text in POOL)
                    )
                    for text, response in zip(POOL, responses):
                        assert response["ir"] == REFERENCES[text]
                    if round_index < 2:
                        await client.flush()
            finally:
                await client.close()

        asyncio.run(churn())
        with ServiceClient(port=server.port) as client:
            for text in POOL:
                assert client.translate(text)["cached"] is True
    finally:
        server.shutdown()
        thread.join(timeout=10)
        server.server_close()
