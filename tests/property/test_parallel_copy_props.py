"""Property-based tests for parallel-copy sequentialization (Algorithm 1)."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.ir.instructions import Constant, Variable
from repro.outofssa.parallel_copy import sequentialize_parallel_copy


NAMES = [f"v{i}" for i in range(8)]


@st.composite
def parallel_copies(draw):
    """Random parallel copies: distinct destinations, arbitrary var/const sources."""
    destinations = draw(
        st.lists(st.sampled_from(NAMES), unique=True, min_size=0, max_size=len(NAMES))
    )
    pairs = []
    for dst in destinations:
        if draw(st.booleans()):
            src = Variable(draw(st.sampled_from(NAMES)))
        else:
            src = Constant(draw(st.integers(min_value=-10, max_value=10)))
        pairs.append((Variable(dst), src))
    return pairs


def fresh_factory():
    counter = itertools.count()
    return lambda: Variable(f"fresh{next(counter)}")


def parallel_semantics(pairs, env):
    values = {
        dst: (src.value if isinstance(src, Constant) else env[src]) for dst, src in pairs
    }
    out = dict(env)
    out.update(values)
    return out


def sequential_semantics(copies, env):
    out = dict(env)
    for copy in copies:
        out[copy.dst] = copy.src.value if isinstance(copy.src, Constant) else out[copy.src]
    return out


@given(parallel_copies())
@settings(max_examples=300, deadline=None)
def test_sequentialization_preserves_parallel_semantics(pairs):
    env = {Variable(name): index + 100 for index, name in enumerate(NAMES)}
    copies = sequentialize_parallel_copy(pairs, fresh_factory())
    expected = parallel_semantics(pairs, env)
    actual = sequential_semantics(copies, env)
    for dst, _ in pairs:
        assert actual[dst] == expected[dst]
    for name in NAMES:
        var = Variable(name)
        if var not in {dst for dst, _ in pairs}:
            assert actual[var] == env[var]


@given(parallel_copies())
@settings(max_examples=300, deadline=None)
def test_copy_count_is_minimal(pairs):
    """#copies = #non-trivial components + #cycles without duplication."""
    effective = [(dst, src) for dst, src in pairs if dst != src]
    copies = sequentialize_parallel_copy(pairs, fresh_factory())

    # Count cyclic permutation components with no extra outgoing tree edge
    # ("no duplication of variable"): these are exactly the components that
    # need one extra copy through a temporary.
    source_of = {dst: src for dst, src in effective}
    destinations = set(source_of)
    sources = [src for src in source_of.values() if isinstance(src, Variable)]
    cycles_needing_temp = 0
    visited = set()
    for start in destinations:
        if start in visited:
            continue
        # Follow the unique-source chain while it stays within destinations.
        chain = []
        current = start
        while (
            isinstance(current, Variable)
            and current in source_of
            and current not in chain
        ):
            chain.append(current)
            current = source_of[current]
        if isinstance(current, Variable) and current in chain:
            cycle = chain[chain.index(current):]
            if any(var in visited for var in cycle):
                continue
            visited.update(cycle)
            # A cycle needs a temp only if none of its members' values is also
            # copied into a variable outside the cycle.
            duplicated = any(
                src == member and dst not in cycle
                for member in cycle
                for dst, src in effective
            )
            if not duplicated:
                cycles_needing_temp += 1
        visited.update(chain)

    assert len(copies) == len(effective) + cycles_needing_temp


@given(parallel_copies())
@settings(max_examples=200, deadline=None)
def test_each_destination_written_exactly_once(pairs):
    copies = sequentialize_parallel_copy(pairs, fresh_factory())
    effective_dsts = [dst for dst, src in pairs if dst != src]
    written = [copy.dst for copy in copies if not copy.dst.name.startswith("fresh")]
    assert sorted(var.name for var in written) == sorted(var.name for var in effective_dsts)
