"""Property tests for the incremental liveness subsystem.

Two claims are checked over randomized inputs:

1. *Bit-identity* — after an arbitrary sequence of logged edit batches
   (copies inserted, edges split, variables renamed) the patched rows of
   ``IncrementalBitLiveness`` equal a cold ``BitLivenessSets`` solve of the
   edited function, variable for variable, block for block.  Both on the
   stress corpus and on the φ-carrying generator programs run through the
   real isolation pass emission.
2. *SCC convergence* — condensation-ordered seeding never needs more block
   evaluations than plain reverse-postorder seeding on the stress corpus.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.corpus import CorpusSpec, generate_stress_cfg, random_edit_batch
from repro.bench.generator import GeneratorConfig, generate_ssa_program
from repro.liveness.bitsets import BitLivenessSets
from repro.liveness.incremental import IncrementalBitLiveness
from repro.outofssa.method_i import insert_phi_copies


def assert_rows_match_cold(live, function):
    cold = BitLivenessSets(function)
    variables = function.variables()
    for label in function.blocks:
        for var in variables:
            assert live.is_live_in(label, var) == cold.is_live_in(label, var), (
                f"live-in mismatch for {var} at {label} in {function.name}"
            )
            assert live.is_live_out(label, var) == cold.is_live_out(label, var), (
                f"live-out mismatch for {var} at {label} in {function.name}"
            )
        assert set(live.live_in_variables(label)) == set(cold.live_in_variables(label))
        assert set(live.live_out_variables(label)) == set(cold.live_out_variables(label))


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    blocks=st.integers(min_value=8, max_value=120),
    depth=st.integers(min_value=1, max_value=6),
    batches=st.integers(min_value=1, max_value=4),
)
def test_incremental_resolve_is_bit_identical_on_random_edit_sequences(
    seed, blocks, depth, batches
):
    function = generate_stress_cfg(
        CorpusSpec(seed=seed, blocks=blocks, loop_depth=depth, variables=6)
    )
    live = IncrementalBitLiveness(function)
    for batch in range(batches):
        log = random_edit_batch(function, seed=seed ^ (batch + 1))
        live.apply_edits(log)
        assert_rows_match_cold(live, function)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    size=st.integers(min_value=10, max_value=60),
)
def test_incremental_resolve_matches_cold_after_phi_isolation(seed, size):
    """The real pass emission: Method I edits patched over a warm solver."""
    function = generate_ssa_program(GeneratorConfig(seed=seed, size=size))
    live = IncrementalBitLiveness(function)
    insertion = insert_phi_copies(function)
    live.apply_edits(insertion.edit_log())
    assert_rows_match_cold(live, function)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    blocks=st.integers(min_value=16, max_value=200),
    depth=st.integers(min_value=1, max_value=7),
)
def test_scc_seeding_converges_no_slower_than_rpo(seed, blocks, depth):
    function = generate_stress_cfg(
        CorpusSpec(seed=seed, blocks=blocks, loop_depth=depth, variables=8)
    )
    rpo = BitLivenessSets(function, seed="rpo")
    scc = BitLivenessSets(function, seed="scc")
    assert scc.solver_iterations <= rpo.solver_iterations
    for label in function.blocks:
        assert scc.live_in[label].bits == rpo.live_in[label].bits
        assert scc.live_out[label].bits == rpo.live_out[label].bits
