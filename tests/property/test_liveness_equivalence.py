"""Property tests: the bit-set liveness backend is *exactly* the reference one.

``BitLivenessSets`` (variable numbering + bit rows + reverse-postorder
worklist) must answer every block-level liveness query identically to the
round-robin ordered-set oracle ``LivenessSets``, on arbitrary CFGs from the
workload generator — both on raw SSA functions and after Method I φ-copy
insertion (the shape the engines actually analyse).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generator import GeneratorConfig, generate_ssa_program
from repro.bench.suite import build_suite
from repro.liveness.bitsets import BitLivenessSets
from repro.liveness.dataflow import LivenessSets
from repro.outofssa.method_i import insert_phi_copies


def assert_same_liveness(function):
    reference = LivenessSets(function)
    bits = BitLivenessSets(function)
    variables = function.variables()
    for label in function.blocks:
        for var in variables:
            assert bits.is_live_in(label, var) == reference.is_live_in(label, var), (
                f"live-in mismatch for {var} at {label} in {function.name}"
            )
            assert bits.is_live_out(label, var) == reference.is_live_out(label, var), (
                f"live-out mismatch for {var} at {label} in {function.name}"
            )
        # The decoded rows carry exactly the live variables, no extras.
        assert set(bits.live_in_variables(label)) == {
            var for var in variables if reference.is_live_in(label, var)
        }
        assert set(bits.live_out_variables(label)) == {
            var for var in variables if reference.is_live_out(label, var)
        }


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    size=st.integers(min_value=10, max_value=60),
    after_phi_copies=st.booleans(),
)
def test_bitset_liveness_matches_reference_on_random_cfgs(seed, size, after_phi_copies):
    function = generate_ssa_program(GeneratorConfig(seed=seed, size=size))
    if after_phi_copies:
        insert_phi_copies(function)
    assert_same_liveness(function)


@pytest.mark.bench
def test_bitset_liveness_matches_reference_on_generator_suite():
    """Exact agreement over the full synthetic benchmark suite."""
    suite = build_suite(scale=0.3)
    checked = 0
    for functions in suite.values():
        for function in functions:
            assert_same_liveness(function)
            copy = function.copy()
            insert_phi_copies(copy)
            assert_same_liveness(copy)
            checked += 1
    assert checked > 0
