"""Property tests: the three interference backends are *exactly* equivalent.

The pluggable stack (``matrix`` / ``query`` / ``incremental``) is only a
representation choice — the paper's point is that the graph can be dropped
without changing a single verdict.  Three claims are checked over randomized
inputs (mirroring ``tests/property/test_liveness_equivalence.py`` for the
liveness stack):

1. *Verdict equality* — on arbitrary generator programs, all three backends
   answer every pairwise ``interferes`` query identically, under every
   interference notion.
2. *Bit-identical translations* — every Figure 6/7 engine configuration
   produces byte-for-byte the same out-of-SSA output whichever backend it
   runs on.
3. *Incremental bit-identity* — after an arbitrary sequence of logged edit
   batches, the patched matrix of ``IncrementalMatrixInterference`` equals a
   cold ``matrix`` rebuild of the edited function, row for row over the same
   slot assignment.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.corpus import CorpusSpec, generate_stress_cfg, random_edit_batch
from repro.bench.generator import GeneratorConfig, generate_ssa_program
from repro.cfg.dominance import DominatorTree
from repro.interference.base import InterferenceKind, QueryInterference
from repro.interference.graph import IncrementalMatrixInterference, MatrixInterference
from repro.ir.printer import format_function
from repro.liveness.bitsets import BitLivenessSets
from repro.liveness.dataflow import LivenessSets
from repro.liveness.incremental import IncrementalBitLiveness
from repro.liveness.intersection import IntersectionOracle
from repro.outofssa.config import ENGINE_CONFIGURATIONS, EngineConfig
from repro.outofssa.method_i import insert_phi_copies
from repro.pipeline import Pipeline
from repro.ssa.values import ValueTable

BACKEND_NAMES = ("matrix", "query", "incremental")


def _backends(function, kind):
    """One instance of every backend over the same function and notion."""
    domtree = DominatorTree(function)
    values = ValueTable(function, domtree) if kind is InterferenceKind.VALUE else None
    query = QueryInterference(
        function, IntersectionOracle(function, LivenessSets(function), domtree),
        kind, values,
    )
    matrix = MatrixInterference(
        function, IntersectionOracle(function, BitLivenessSets(function), domtree),
        kind, values,
    )
    incremental = IncrementalMatrixInterference(
        function, IntersectionOracle(function, IncrementalBitLiveness(function), domtree),
        kind, values,
    )
    return {"query": query, "matrix": matrix, "incremental": incremental}


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    size=st.integers(min_value=10, max_value=40),
    kind=st.sampled_from(list(InterferenceKind)),
    after_phi_copies=st.booleans(),
)
def test_backends_agree_on_every_pairwise_verdict(seed, size, kind, after_phi_copies):
    function = generate_ssa_program(GeneratorConfig(seed=seed, size=size))
    if after_phi_copies:
        insert_phi_copies(function)
    backends = _backends(function, kind)
    variables = function.variables()
    for a, b in itertools.combinations(variables, 2):
        verdicts = {name: backend.interferes(a, b) for name, backend in backends.items()}
        assert len(set(verdicts.values())) == 1, (
            f"backends disagree on ({a}, {b}) under {kind}: {verdicts}"
        )


@pytest.mark.parametrize("config", ENGINE_CONFIGURATIONS, ids=lambda c: c.name)
def test_every_engine_translates_bit_identically_under_all_backends(config):
    """All seven Figure 6/7 engines x all three backends: same final program."""
    for seed in (3, 11, 29):
        program = generate_ssa_program(GeneratorConfig(seed=seed, size=30))
        outputs = {}
        for backend in BACKEND_NAMES:
            function = program.copy()
            derived = EngineConfig.builder(config).interference(backend).build()
            Pipeline.for_engine(derived).run(function)
            outputs[backend] = format_function(function)
        assert outputs["matrix"] == outputs["query"] == outputs["incremental"], (
            f"{config.name} diverged across backends on seed {seed}"
        )


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    blocks=st.integers(min_value=8, max_value=100),
    depth=st.integers(min_value=1, max_value=5),
    batches=st.integers(min_value=1, max_value=4),
)
def test_incremental_matrix_is_bit_identical_on_random_edit_sequences(
    seed, blocks, depth, batches
):
    function = generate_stress_cfg(
        CorpusSpec(seed=seed, blocks=blocks, loop_depth=depth, variables=6)
    )
    live = IncrementalBitLiveness(function)
    warm = IncrementalMatrixInterference(
        function, IntersectionOracle(function, live), InterferenceKind.INTERSECT
    )
    for batch in range(batches):
        log = random_edit_batch(function, seed=seed ^ (batch + 1))
        live.apply_edits(log)
        warm.apply_edits(log)
        cold = MatrixInterference(
            function,
            IntersectionOracle(function, BitLivenessSets(function)),
            InterferenceKind.INTERSECT,
            universe=warm.graph.variables(),
        )
        assert warm.graph.row_bits() == cold.graph.row_bits(), (
            f"matrix diverged from cold rebuild after batch {batch} "
            f"(seed {seed}, {blocks} blocks)"
        )
