"""Property tests: every printed function re-parses structurally equal.

The service protocol ships IR as *text*, so the printer/parser pair is the
wire format: any program the system can hold must survive
``parse(format(f))`` with identical structure, and the canonical text must be
a fixpoint (``format(parse(format(f))) == format(f)``) — that fixpoint is
what the content-addressed cache digests.

Checked over every program family the repository generates (SSA generator
programs at all shapes, stress-corpus CFGs, gallery figures, translated
outputs with parallel copies and sequentialized swaps), plus targeted
regressions for the grammar corners the hardening fixed: destination
variables shadowing instruction keywords, callees using the function-name
grammar (leading digits), empty parallel copies, and pin-order canonicality.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.corpus import CorpusSpec, generate_stress_cfg
from repro.bench.generator import GeneratorConfig, generate_ssa_program
from repro.gallery import (
    figure1_branch_use,
    figure2_branch_with_decrement,
    figure3_swap_problem,
    figure4_lost_copy_problem,
)
from repro.ir import (
    Call,
    Constant,
    Copy,
    Function,
    Op,
    ParallelCopy,
    Print,
    Return,
    Variable,
    format_function,
    function_digest,
    parse_function,
    structurally_equal,
    text_digest,
)
from repro.outofssa.driver import destruct_ssa


def assert_roundtrip(function: Function) -> None:
    text = format_function(function)
    reparsed = parse_function(text)
    assert structurally_equal(reparsed, function), (
        f"round-trip changed structure:\n{text}\nvs\n{format_function(reparsed)}"
    )
    # The canonical text is a fixpoint — the digest contract of the cache.
    assert format_function(reparsed) == text
    assert function_digest(reparsed) == function_digest(function)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    size=st.integers(min_value=8, max_value=45),
    abi=st.booleans(),
    translated=st.booleans(),
)
def test_generator_programs_roundtrip(seed, size, abi, translated):
    function = generate_ssa_program(
        GeneratorConfig(seed=seed, size=size, apply_abi=abi)
    )
    if translated:
        destruct_ssa(function)
    assert_roundtrip(function)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    blocks=st.integers(min_value=8, max_value=120),
    irreducible=st.sampled_from([0.0, 0.5]),
)
def test_stress_corpus_roundtrips(seed, blocks, irreducible):
    function = generate_stress_cfg(
        CorpusSpec(seed=seed, blocks=blocks, loop_depth=3, variables=6,
                   irreducible=irreducible)
    )
    assert_roundtrip(function)


@pytest.mark.parametrize(
    "build",
    [figure1_branch_use, figure2_branch_with_decrement,
     figure3_swap_problem, figure4_lost_copy_problem],
)
def test_gallery_figures_roundtrip(build):
    assert_roundtrip(build())


# --------------------------------------------------------------------------- grammar corners
def test_keyword_named_destinations_roundtrip():
    """Variables shadowing instruction keywords parse as assignments."""
    function = Function("keywords")
    block = function.add_block("entry")
    for name in ("print", "jump", "ret", "br", "brdec", "pcopy", "pin", "call"):
        block.append(Op(function.register_variable(Variable(name)), "const", [Constant(1)]))
    block.append(Copy(Variable("x"), Variable("print")))
    block.append(Print(Variable("jump")))
    block.set_terminator(Return(Variable("ret")))
    assert_roundtrip(function)


def test_callee_uses_function_name_grammar():
    """Callees admit what headers admit — including leading digits."""
    function = Function("164.gzip'helper")
    block = function.add_block("entry")
    dst = function.register_variable(Variable("r"))
    block.append(Call(dst, "164.gzip'helper", [Constant(3)]))
    block.append(Call(None, "2nd.callee", [dst]))
    block.set_terminator(Return(dst))
    assert_roundtrip(function)


def test_empty_parallel_copy_roundtrips():
    function = Function("empties")
    block = function.add_block("entry")
    block.body.append(ParallelCopy())
    block.set_terminator(Return(None))
    assert_roundtrip(function)


def test_entry_exit_pcopy_placement_roundtrips():
    function = Function("placed")
    block = function.add_block("entry")
    entry_pcopy = ParallelCopy()
    entry_pcopy.add(function.register_variable(Variable("a")), Constant(1))
    exit_pcopy = ParallelCopy()
    exit_pcopy.add(function.register_variable(Variable("b")), Variable("a"))
    block.entry_pcopy = entry_pcopy
    block.exit_pcopy = exit_pcopy
    block.set_terminator(Return(Variable("b")))
    assert_roundtrip(function)


def test_pin_order_is_canonical():
    """The printed text (and so the digest) is independent of pin order."""
    def build(order):
        function = Function("pinned")
        block = function.add_block("entry")
        block.set_terminator(Return(None))
        for name, register in order:
            function.pin(function.register_variable(Variable(name)), register)
        return function

    forward = build([("a", "R0"), ("b", "R1")])
    backward = build([("b", "R1"), ("a", "R0")])
    assert format_function(forward) == format_function(backward)
    assert function_digest(forward) == function_digest(backward)
    assert_roundtrip(forward)


def test_digest_ignores_comments_and_trailing_whitespace():
    text = format_function(figure4_lost_copy_problem())
    noisy = "\n".join(
        line + "   # a client comment" if line.strip() else line
        for line in text.splitlines()
    ) + "\n\n\n"
    assert text_digest(noisy) == text_digest(text)
    # ...but any structural difference forks the digest.
    assert text_digest(text.replace("lost_copy", "other_name")) != text_digest(text)
