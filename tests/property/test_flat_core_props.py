"""Property tests for the flat arena IR core (``--core flat``).

Three claims are checked over randomized inputs:

1. *Lowering round-trip* — every table of a :class:`FlatFunction` decodes
   back to exactly the object graph it was lowered from: CFG edges (order
   included), per-instruction def/use rows, the liveness transfer masks and
   φ-edge masks (diffed against ``BitLivenessSets`` over the same
   numbering), and the SCC partition (diffed against the object-graph
   Tarjan) — on the stress corpus, the φ-carrying generator programs, and
   the paper's gallery figures.
2. *EditLog patching* — after an arbitrary sequence of materialization-shaped
   edit batches, :meth:`FlatFunction.apply_edits` leaves the arena
   table-for-table equal to a fresh lowering of the edited function over the
   same numbering (the PR 3–4 incremental seam contract).
3. *Cross-core bit-identity* — the full out-of-SSA pipeline produces the
   same output IR text and the same stats counters (timing and
   representation-provenance fields excepted) under ``core="flat"`` and
   ``core="objects"``, for every engine configuration, on pristine and on
   randomly edited functions — and a ``verify_level="full"`` flat-core run
   stays diagnostic-free.
"""

from dataclasses import asdict, replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.corpus import CorpusSpec, generate_stress_cfg, random_edit_batch
from repro.bench.generator import GeneratorConfig, generate_ssa_program
from repro.bench.harness import _CORE_TIMING_FIELDS
from repro.cfg.scc import strongly_connected_components
from repro.gallery import (
    figure1_branch_use,
    figure2_branch_with_decrement,
    figure3_swap_problem,
    figure4_lost_copy_problem,
)
from repro.ir.flat import FlatFunction
from repro.ir.instructions import Copy, ParallelCopy, Variable
from repro.ir.printer import format_function
from repro.liveness.bitsets import BitLivenessSets
from repro.outofssa.config import ENGINE_CONFIGURATIONS
from repro.pipeline.pipeline import Pipeline

GALLERY = (
    figure1_branch_use,
    figure2_branch_with_decrement,
    figure3_swap_problem,
    figure4_lost_copy_problem,
)

#: The arena's data tables (everything except the back-reference, the
#: numbering, and the lowering timing).
_TABLES = (
    "labels", "ids", "entry", "decl", "params",
    "succ_off", "succ_ids", "pred_off", "pred_ids",
    "edge_phi", "phi_edge",
    "defs_mask", "upward_mask", "phi_defs_mask",
    "instr_off", "use_masks", "def_off", "def_ids", "def_src",
    "generation", "nbytes",
)


def assert_roundtrip(function):
    flat = FlatFunction(function)
    numbering = flat.numbering
    index = numbering.index_of

    # Block order: RPO prefix, ids are positions, every block present once.
    assert sorted(flat.labels) == sorted(function.blocks)
    assert flat.ids == {label: i for i, label in enumerate(flat.labels)}
    if function.entry_label is not None:
        assert flat.labels[flat.entry] == function.entry_label

    for label in function.blocks:
        # CFG edges, order included (terminator order / declaration order).
        assert flat.successors_of(label) == function.successors(label), label
        assert flat.predecessors_of(label) == function.predecessors(label), label

        # Instruction rows: φ rows first, then the schedule; defs, copy
        # sources and use masks decode to the object instructions.
        block = function.blocks[label]
        rows = flat.instruction_rows(label)
        expected = list(block.phis) + list(block.instructions(include_phis=False))
        assert len(rows) == len(expected), label
        for (def_ids, def_src, use_mask), instruction in zip(rows, expected):
            assert list(def_ids) == [index(var) for var in instruction.defs()]
            in_phis = instruction in block.phis
            mask = 0
            if not in_phis:
                for var in instruction.uses():
                    mask |= 1 << index(var)
            assert use_mask == mask, (label, instruction)
            if isinstance(instruction, ParallelCopy):
                sources = [
                    index(src) if isinstance(src, Variable) else -1
                    for _, src in instruction.pairs
                ]
            elif isinstance(instruction, Copy):
                src = instruction.src
                sources = [index(src) if isinstance(src, Variable) else -1]
            else:
                sources = [-1] * len(instruction.defs())
            assert list(def_src) == sources, (label, instruction)

    # Liveness transfer masks and φ-edge masks: exactly what the object
    # solver computes over the same numbering.
    bits = BitLivenessSets(function, numbering=numbering)
    for label in function.blocks:
        assert flat.block_masks(label) == bits._masks[label], label
    assert flat.phi_edge == bits._phi_edge

    # SCC partition over the arena's edge table == the object-graph Tarjan
    # (same component emission order, same member order).
    labels = flat.labels
    from_flat = [[labels[member] for member in comp] for comp in flat.components()]
    assert from_flat == strongly_connected_components(function)
    return flat


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    blocks=st.integers(min_value=8, max_value=150),
    depth=st.integers(min_value=1, max_value=6),
    irreducible=st.sampled_from([0.0, 0.5]),
)
def test_lowering_roundtrip_on_stress_corpus(seed, blocks, depth, irreducible):
    function = generate_stress_cfg(
        CorpusSpec(
            seed=seed, blocks=blocks, loop_depth=depth, variables=6,
            irreducible=irreducible,
        )
    )
    assert_roundtrip(function)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    size=st.integers(min_value=10, max_value=60),
)
def test_lowering_roundtrip_on_generator_programs(seed, size):
    """φ-carrying SSA programs: the φ-edge tables round-trip too."""
    assert_roundtrip(generate_ssa_program(GeneratorConfig(seed=seed, size=size)))


def test_lowering_roundtrip_on_gallery():
    for make in GALLERY:
        assert_roundtrip(make())


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    blocks=st.integers(min_value=8, max_value=120),
    depth=st.integers(min_value=1, max_value=6),
    batches=st.integers(min_value=1, max_value=4),
)
def test_apply_edits_equals_fresh_lowering(seed, blocks, depth, batches):
    """The EditLog seam: a patched arena is table-for-table a fresh lowering."""
    function = generate_stress_cfg(
        CorpusSpec(seed=seed, blocks=blocks, loop_depth=depth, variables=6)
    )
    flat = FlatFunction(function)
    for batch in range(batches):
        log = random_edit_batch(function, seed=seed ^ (batch + 1))
        flat.apply_edits(log)
        fresh = FlatFunction(function, flat.numbering)
        for name in _TABLES:
            assert getattr(flat, name) == getattr(fresh, name), name


def translate(function, engine, core):
    result = Pipeline.for_engine(replace(engine, core=core)).run(function)
    stats = asdict(result.stats)
    for name in _CORE_TIMING_FIELDS:
        stats.pop(name, None)
    return format_function(result.function), stats


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    size=st.integers(min_value=10, max_value=50),
)
def test_cores_bit_identical_across_all_engines(seed, size):
    """Output IR text and stats counters agree between the cores, for every
    engine configuration (all liveness and interference backends)."""
    prototype = generate_ssa_program(GeneratorConfig(seed=seed, size=size))
    for engine in ENGINE_CONFIGURATIONS:
        assert translate(prototype.copy(), engine, "objects") == translate(
            prototype.copy(), engine, "flat"
        ), engine.name


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    blocks=st.integers(min_value=8, max_value=100),
    batches=st.integers(min_value=1, max_value=3),
)
def test_cores_bit_identical_after_random_edit_batches(seed, blocks, batches):
    """Cross-core identity survives arbitrary pre-translation edit batches —
    the edited CFG shapes (spliced blocks, rewired edges, fresh variables)
    exercise lowerings no pristine corpus function produces."""
    engine = next(e for e in ENGINE_CONFIGURATIONS if e.name == "us_i")
    prototype = generate_stress_cfg(
        CorpusSpec(seed=seed, blocks=blocks, loop_depth=4, variables=6)
    )
    for batch in range(batches):
        random_edit_batch(prototype, seed=seed ^ (batch + 1))
    assert translate(prototype.copy(), engine, "objects") == translate(
        prototype.copy(), engine, "flat"
    )


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    size=st.integers(min_value=10, max_value=40),
)
def test_flat_core_full_verification_stays_clean(seed, size):
    """A ``verify_level="full"`` flat-core translation raises no diagnostics:
    every stage checker (φ-isolation, liveness, interference, coalescing,
    materialization, sequentialization) passes over the arena-backed run."""
    function = generate_ssa_program(GeneratorConfig(seed=seed, size=size))
    engine = replace(ENGINE_CONFIGURATIONS[0], core="flat", verify_level="full")
    result = Pipeline.for_engine(engine).run(function)
    assert result.stats.verify_diagnostics == 0, result.verify_report
    assert result.stats.verify_errors == 0


def test_flat_core_full_verification_clean_on_gallery():
    for make in GALLERY:
        engine = replace(ENGINE_CONFIGURATIONS[0], core="flat", verify_level="full")
        result = Pipeline.for_engine(engine).run(make())
        assert result.stats.verify_diagnostics == 0, result.verify_report
