"""Property tests: the warm service cache never changes a single bit.

The content-addressed cache and the warm machinery behind it are pure
representation choices — a served translation must be indistinguishable from
a cold one.  Four claims:

1. *Warm ≡ cold for every engine* — for all seven Figure 6/7 engine
   configurations × all three interference backends, the service's cold
   response equals a direct cold pipeline run of the same text, and the
   subsequent cache hit returns byte-identical text.
2. *Randomized streams* — under arbitrary interleavings of programs,
   repeats and flushes, every response equals the cold reference for its
   program (Hypothesis-driven).
3. *The parallel coalescing prefilter is invisible* — service shards with
   ``parallel_coalescing`` enabled translate bit-identically to the serial
   pipeline (the monotonicity argument of
   :func:`repro.service.scheduler.parallel_coalesce`, checked end to end).
4. *Behavioural differential* — interpreting cached vs freshly translated
   outputs on corpus samples yields the same observable behaviour (return
   value + print trace), under every engine.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.generator import GeneratorConfig, generate_ssa_program
from repro.interp import run_function
from repro.ir import format_function, parse_function
from repro.outofssa.config import ENGINE_CONFIGURATIONS, EngineConfig, INTERFERENCE_BACKENDS
from repro.pipeline import Pipeline
from repro.service import TranslationService

ENGINE_BACKEND_MATRIX = [
    pytest.param(config, backend, id=f"{config.name}-{backend}")
    for config, backend in itertools.product(
        ENGINE_CONFIGURATIONS, sorted(INTERFERENCE_BACKENDS)
    )
]


def _program_text(seed: int, size: int = 28) -> str:
    return format_function(generate_ssa_program(GeneratorConfig(seed=seed, size=size)))


def _cold_reference(text: str, config: EngineConfig) -> str:
    function = parse_function(text)
    Pipeline.for_engine(config).run(function)
    return format_function(function)


@pytest.mark.parametrize("config, backend", ENGINE_BACKEND_MATRIX)
def test_warm_cache_is_bit_identical_to_cold_for_every_engine(config, backend):
    """All 7 engines × all 3 interference backends: cold response == direct
    pipeline output, hit response == cold response, byte for byte."""
    derived = EngineConfig.builder(config).interference(backend).build()
    service = TranslationService(derived)
    for seed in (2, 17):
        text = _program_text(seed)
        reference = _cold_reference(text, derived)
        cold = service.translate_text(text)
        assert cold.kind == "cold"
        assert cold.ir_text == reference, f"{derived.name}: cold response diverged"
        hit = service.translate_text(text)
        assert hit.kind == "hit"
        assert hit.ir_text == reference, f"{derived.name}: cached response diverged"
        assert hit.digest == cold.digest and hit.fingerprint == cold.fingerprint


@settings(max_examples=15, deadline=None)
@given(
    seeds=st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=5),
    repeats=st.integers(min_value=1, max_value=3),
    flush_at=st.integers(min_value=0, max_value=10),
)
def test_random_request_streams_always_match_cold(seeds, repeats, flush_at):
    service = TranslationService("us_i")
    references = {}
    stream = [seed for seed in seeds for _ in range(repeats)]
    for index, seed in enumerate(stream):
        text = _program_text(seed, size=20)
        if seed not in references:
            references[seed] = _cold_reference(text, service.default_config)
        if index == flush_at:
            service.flush()
        result = service.translate_text(text)
        assert result.ir_text == references[seed], (
            f"request {index} (seed {seed}, {result.kind}) diverged after "
            f"{'a flush' if index >= flush_at else 'no flush'}"
        )


@pytest.mark.parametrize(
    "engine", ["us_i", "us_iii", "sreedhar_iii", "us_i_linear_intercheck_livecheck"]
)
def test_parallel_coalescing_is_bit_identical(engine):
    """Shards with the class-row prefilter translate exactly like the serial
    pipeline — including engines where the prefilter must disable itself
    (Sreedhar's skip-pair rule, the linear class check)."""
    serial = TranslationService(engine, capacity=0)
    parallel = TranslationService(engine, capacity=0, parallel_coalescing=4)
    for seed in (5, 23, 71):
        text = _program_text(seed, size=32)
        assert (
            parallel.translate_text(text).ir_text
            == serial.translate_text(text).ir_text
        ), f"{engine} diverged under parallel coalescing (seed {seed})"


@pytest.mark.parametrize("config", ENGINE_CONFIGURATIONS, ids=lambda c: c.name)
def test_cached_outputs_behave_like_fresh_outputs(config):
    """Differential check: run the interpreter on the served (cached) output
    and on a freshly translated copy — observable behaviour must agree."""
    service = TranslationService(config)
    for seed in (4, 31):
        program = generate_ssa_program(GeneratorConfig(seed=seed, size=24))
        text = format_function(program)
        expected = run_function(parse_function(text), [3, 5]).observable()

        service.translate_text(text)            # prime the cache
        served = service.translate_text(text)   # the cached response
        assert served.cached

        fresh = parse_function(text)
        Pipeline.for_engine(config).run(fresh)

        cached_behaviour = run_function(parse_function(served.ir_text), [3, 5]).observable()
        fresh_behaviour = run_function(fresh, [3, 5]).observable()
        assert cached_behaviour == fresh_behaviour == expected, (
            f"{config.name}: cached and fresh outputs behave differently (seed {seed})"
        )
